"""§3 deduplication index merge: ~2 hours on Berkeley-DB vs under 2 minutes on a CLAM.

Merging a branch-office backup index into the main index costs one lookup per
fingerprint plus one insert per new fingerprint.  The experiment merges a
scaled-down index into both a CLAM and a disk-based BDB-style index, then
extrapolates the per-fingerprint cost to the paper's 20 GB-index scenario
(~100 million fingerprints of new data being merged).
"""

from __future__ import annotations

from benchmarks.common import print_table, standard_config
from repro.baselines import ExternalHashIndex
from repro.core import CLAM
from repro.dedup import merge_indexes
from repro.dedup.merge import scale_merge_time
from repro.flashsim import MagneticDisk, SimulationClock
from repro.wanopt.fingerprint import fingerprint_bytes

EXISTING_FINGERPRINTS = 3_000
MERGE_FINGERPRINTS = 2_000
OVERLAP_FRACTION = 0.3
#: Fingerprint count for the paper-scale extrapolation.  The paper's "~2 hours
#: with Berkeley-DB" estimate corresponds to roughly a million fingerprints
#: being merged at ~7 ms of random disk I/O each.
TARGET_FINGERPRINTS = 1_000_000


def _entries(count, prefix):
    return [(fingerprint_bytes(b"%s-%d" % (prefix, i)), b"addr") for i in range(count)]


def _populate(index, entries):
    for fingerprint, value in entries:
        index.insert(fingerprint, value)


def _merge_set(existing):
    overlap = int(MERGE_FINGERPRINTS * OVERLAP_FRACTION)
    return existing[:overlap] + _entries(MERGE_FINGERPRINTS - overlap, b"incoming")


def run_dedup_merge():
    existing = _entries(EXISTING_FINGERPRINTS, b"existing")
    incoming = _merge_set(existing)

    clam = CLAM(standard_config(), storage="intel-ssd")
    _populate(clam, existing)
    clam_report = merge_indexes(clam, incoming)

    bdb = ExternalHashIndex(MagneticDisk(clock=SimulationClock()), cache_pages=32)
    _populate(bdb, existing)
    bdb_report = merge_indexes(bdb, incoming)

    return {"clam": clam_report, "bdb": bdb_report}


def test_dedup_index_merge(benchmark):
    results = benchmark.pedantic(run_dedup_merge, rounds=1, iterations=1)
    clam_report = results["clam"]
    bdb_report = results["bdb"]

    clam_extrapolated_min = scale_merge_time(
        clam_report, MERGE_FINGERPRINTS, TARGET_FINGERPRINTS
    )
    bdb_extrapolated_min = scale_merge_time(bdb_report, MERGE_FINGERPRINTS, TARGET_FINGERPRINTS)

    print_table(
        "Deduplication index merge (scaled run + paper-scale extrapolation)",
        [
            "index",
            "fingerprints",
            "merge time (sim ms)",
            "per-fp (ms)",
            "extrapolated @1M fps",
        ],
        [
            (
                "CLAM (Intel SSD)",
                clam_report.fingerprints_processed,
                clam_report.total_time_ms,
                clam_report.total_time_ms / MERGE_FINGERPRINTS,
                "%.1f min" % clam_extrapolated_min,
            ),
            (
                "BerkeleyDB (disk)",
                bdb_report.fingerprints_processed,
                bdb_report.total_time_ms,
                bdb_report.total_time_ms / MERGE_FINGERPRINTS,
                "%.1f hours" % (bdb_extrapolated_min / 60.0),
            ),
        ],
    )

    # The CLAM merge is orders of magnitude faster than the BDB merge.
    assert clam_report.total_time_ms * 20 < bdb_report.total_time_ms
    # Extrapolated to paper scale the qualitative claim holds: hours for BDB,
    # a couple of minutes for the CLAM.
    assert bdb_extrapolated_min > 60.0
    assert clam_extrapolated_min < 5.0
    assert clam_extrapolated_min < bdb_extrapolated_min / 20.0
    # Merge correctness: everything that was merged is now present.
    assert clam_report.new_fingerprints + clam_report.already_present == MERGE_FINGERPRINTS
