"""Multi-branch WAN optimization over the replicated cluster (branches × shards × RF).

The paper's §8 WAN optimizer is a single box with a private CLAM.  The
multi-branch deployment (:mod:`repro.wanopt.topology`) runs N branch offices
against **one** data-center fingerprint index — a sharded, replicated
:class:`~repro.service.cluster.ClusterService` reached with one batched
round trip per object — so branches deduplicate against each other's
uploads.  This benchmark sweeps branches × shards × replication factor and
enforces the contracts that make the composition trustworthy:

* **parity** — with 1 branch, 1 shard and RF=1 the cluster-backed optimizer's
  aggregate bandwidth-improvement factor is within 10 % of the classic
  single-CLAM path on the same trace (the service layer costs almost
  nothing when it degenerates);
* **cross-branch dedup** — branches sharing one index beat the same branches
  running private indexes, and the cross-branch hit rate is strictly
  positive (a single branch's is zero by definition);
* **failure drill** — a shard crash-stopped mid-transfer at RF=2 is failed
  over with availability 1.0, every object reconstructs byte-exactly on the
  far side (zero lost chunks) and the scheduled recovery pass re-replicates
  with zero lost keys;
* **mode parity** — the benchmark runs on **real payloads by default**
  (actual bytes cut by the optimized Rabin chunker and SHA-1-fingerprinted
  end to end); the pre-computed chunk-descriptor path of the paper's §8
  evaluation is kept behind ``--descriptors``, and the real-byte run's dedup
  hit rate must stay within noise of descriptor mode's on the same trace
  shape (chunks straddling redundancy-block edges dilute it slightly).

Headline numbers land in ``BENCH_wanopt_cluster.json``.
"""

from __future__ import annotations

import argparse
import time

from benchmarks.common import (
    add_telemetry_arg,
    dump_telemetry,
    print_table,
    standard_config,
    write_bench_json,
)
from repro.core import CLAM
from repro.flashsim import SSD, SimulationClock
from repro.service import FailureEvent
from repro.telemetry import Tracer, tracing
from repro.wanopt import (
    BranchTraceGenerator,
    CompressionEngine,
    Link,
    MultiBranchThroughputTest,
    MultiBranchTopology,
    WANOptimizer,
)

LINK_MBPS = 100.0

#: (num_branches, num_shards, replication_factor) sweep points.
SWEEP = [
    (1, 1, 1),
    (1, 4, 2),
    (2, 1, 1),
    (2, 4, 2),
    (4, 2, 1),
    (4, 4, 2),
]

TRACE = dict(
    objects_per_branch=16,
    mean_object_size=192 * 1024,
    mean_chunk_size=8 * 1024,
    shared_fraction=0.3,
    local_redundancy=0.2,
    shared_pool_size=400,
    seed=41,
)

#: Whether the sweep runs on real payloads (the default) or descriptors.
REAL_PAYLOADS = True

#: Lower bound on the real/descriptor dedup hit-rate ratio.  The full trace
#: shape measures ~0.90; the smaller --quick shape has proportionally larger
#: block-edge dilution (~0.78), so it gets a wider deterministic band.
MODE_PARITY_FLOOR = 0.75

FAIL_AT_OBJECT = 8
RECOVER_AT_OBJECT = 20
#: Second act of the drill: after the recovery pass has taken the first
#: victim off the ring, a *different* shard is crash-stopped and then healed
#: (hinted writes replayed) rather than recovered — so the event log tells
#: apart a shard that was downed-and-healed from one that never failed.
SECOND_FAIL_AT_OBJECT = 24
HEAL_AT_OBJECT = 28
SECOND_VICTIM = "shard-2"
DRILL = dict(num_branches=2, num_shards=4, replication_factor=2)

#: Generated streams, cached per (num_branches, real_payloads): real-payload
#: generation chunks and fingerprints megabytes of actual bytes, so each
#: shape is materialised once and reused across sweep/parity/drill runs.
#: _GENERATION_SECONDS records how long each cache entry took to build —
#: for real payloads that is the chunk+SHA-1 pipeline cost, reported
#: separately by mode_parity().
_STREAM_CACHE: dict = {}
_GENERATION_SECONDS: dict = {}


def streams_for(num_branches: int, real_payloads: bool | None = None):
    if real_payloads is None:
        real_payloads = REAL_PAYLOADS
    key = (num_branches, real_payloads)
    if key not in _STREAM_CACHE:
        started = time.perf_counter()
        _STREAM_CACHE[key] = BranchTraceGenerator(
            num_branches=num_branches, real_payloads=real_payloads, **TRACE
        ).generate()
        _GENERATION_SECONDS[key] = time.perf_counter() - started
    return _STREAM_CACHE[key]


def run_topology(
    num_branches: int,
    num_shards: int,
    replication_factor: int,
    schedule=(),
    real_payloads: bool | None = None,
    telemetry: bool = False,
    **config_overrides,
):
    topology = MultiBranchTopology(
        num_branches=num_branches,
        link_mbps=LINK_MBPS,
        num_shards=num_shards,
        replication_factor=replication_factor,
        config=standard_config(telemetry_enabled=telemetry, **config_overrides),
        with_content_cache=False,
    )
    result = MultiBranchThroughputTest(topology).run(
        streams_for(num_branches, real_payloads), schedule=schedule
    )
    return topology, result


def outcome_for(num_branches: int, num_shards: int, replication_factor: int):
    _, result = run_topology(num_branches, num_shards, replication_factor)
    return {
        "branches": num_branches,
        "shards": num_shards,
        "replication_factor": replication_factor,
        "objects": result.objects_total,
        "aggregate_bandwidth_improvement": result.aggregate_bandwidth_improvement,
        "dedup_hit_rate": result.dedup_hit_rate,
        "cross_branch_hit_rate": result.cross_branch_hit_rate,
        "availability": result.availability,
        "objects_reconstructed_exactly": result.objects_reconstructed_exactly,
        "chunks_lost": result.chunks_lost,
        "per_branch_improvement": [
            branch.effective_bandwidth_improvement for branch in result.branches
        ],
    }


def classic_single_clam_improvement():
    """The pre-existing single-box Scenario 1 on the 1-branch trace."""
    objects = streams_for(1)[0]
    clock = SimulationClock()
    clam = CLAM(standard_config(), storage=SSD(clock=clock))
    optimizer = WANOptimizer(
        engine=CompressionEngine(index=clam),
        link=Link(bandwidth_mbps=LINK_MBPS, clock=clock),
        clock=clock,
    )
    return optimizer.run_throughput_test(objects).effective_bandwidth_improvement


def private_index_hit_rate(num_branches: int) -> float:
    """The same branch streams, each branch on its own single-CLAM index."""
    matched = 0
    total = 0
    for stream in streams_for(num_branches):
        engine = CompressionEngine(
            index=CLAM(standard_config(), storage=SSD(clock=SimulationClock()))
        )
        for obj in stream:
            result = engine.process_object_batched(obj)
            matched += result.chunks_matched
            total += result.chunks_total
    return matched / total if total else 0.0


def mode_parity(num_branches: int, num_shards: int, replication_factor: int):
    """Real-byte vs descriptor dedup on the same trace shape and cluster.

    Content-defined chunks that straddle a redundancy-block edge mix
    repeated and fresh bytes, so real-byte hit rates sit slightly below
    descriptor mode's asserted-by-construction matches; the ratio must stay
    within noise of 1 (the band :func:`check_invariants` enforces).

    The ``*_cluster_objects_per_second`` fields time the **cluster
    simulation only** (streams come pre-generated from the cache); real
    mode's other cost — generating, chunking and SHA-1-fingerprinting the
    actual bytes — is reported separately as
    ``real_generation_seconds`` / ``descriptor_generation_seconds``.
    """
    timings = {}
    rates = {}
    for label, real in (("real", True), ("descriptors", False)):
        streams_for(num_branches, real)  # generation timed by streams_for
        started = time.perf_counter()
        _, result = run_topology(
            num_branches, num_shards, replication_factor, real_payloads=real
        )
        timings[label] = time.perf_counter() - started
        rates[label] = result
    real, desc = rates["real"], rates["descriptors"]
    ratio = real.dedup_hit_rate / desc.dedup_hit_rate if desc.dedup_hit_rate else 0.0
    return {
        "branches": num_branches,
        "shards": num_shards,
        "replication_factor": replication_factor,
        "real_dedup_hit_rate": real.dedup_hit_rate,
        "descriptor_dedup_hit_rate": desc.dedup_hit_rate,
        "hit_rate_ratio": ratio,
        "real_cross_branch_hit_rate": real.cross_branch_hit_rate,
        "descriptor_cross_branch_hit_rate": desc.cross_branch_hit_rate,
        "real_chunks": real.chunks_total,
        "descriptor_chunks": desc.chunks_total,
        "real_cluster_objects_per_second": real.objects_total / timings["real"],
        "descriptor_cluster_objects_per_second": desc.objects_total / timings["descriptors"],
        "real_cluster_run_seconds": timings["real"],
        "descriptor_cluster_run_seconds": timings["descriptors"],
        "real_generation_seconds": _GENERATION_SECONDS[(num_branches, True)],
        "descriptor_generation_seconds": _GENERATION_SECONDS[(num_branches, False)],
    }


def _best_trace_tree(tracer: Tracer):
    """The richest ``branch.transfer`` trace: most distinct shards, then spans.

    The acceptance bar for the telemetry plane is one *complete* causal tree —
    branch transfer → cluster batch → at least two shard sub-batches → device
    I/O — captured from a real run, so this scans every root and summarises
    the best one.
    """
    best = None
    for root in tracer.roots():
        if root.name != "branch.transfer":
            continue
        below = tracer.descendants(root)
        names = [span.name for span in below]
        shards = {
            span.attributes.get("shard") for span in below if span.name == "shard.batch"
        }
        shards.discard(None)
        summary = {
            "trace_id": root.trace_id,
            "root": root.name,
            "branch": root.attributes.get("branch"),
            "object_id": root.attributes.get("object_id"),
            "spans": 1 + len(below),
            "cluster_batches": names.count("cluster.batch"),
            "distinct_shards": sorted(shards),
            "device_events": sum(1 for name in names if name.startswith("device.")),
            "clam_operations": sum(
                1 for name in names if name in ("clam.lookup", "clam.insert")
            ),
        }
        key = (
            len(summary["distinct_shards"]) >= 2 and summary["device_events"] >= 1,
            len(summary["distinct_shards"]),
            summary["device_events"],
            summary["spans"],
        )
        if best is None or key > best[0]:
            best = (key, summary)
    return best[1] if best is not None else None


def failure_drill():
    """Kill/heal drill at RF=2, traced and telemetry-audited end to end.

    Act one is the original crash-stop: ``shard-1`` dies mid-transfer and a
    scheduled :class:`RecoveryCoordinator` pass re-replicates its ranges and
    removes it from the ring.  Act two downs a *second* shard and then heals
    it in place (hinted writes replayed) — so the run's event log replays
    the full kill → detect → recover → kill → heal sequence in order, and
    :meth:`ClusterStats.health` can tell the healed shard from the ones that
    never failed.  The whole drill runs with telemetry enabled and a tracer
    installed; the caller gets the outcome dict plus the topology for
    snapshot extraction.
    """
    tracer = Tracer()
    with tracing(tracer):
        topology, result = run_topology(
            DRILL["num_branches"],
            DRILL["num_shards"],
            DRILL["replication_factor"],
            schedule=[
                FailureEvent(at_request=FAIL_AT_OBJECT, action="fail", shard_id="shard-1"),
                FailureEvent(at_request=RECOVER_AT_OBJECT, action="recover"),
                FailureEvent(
                    at_request=SECOND_FAIL_AT_OBJECT, action="fail", shard_id=SECOND_VICTIM
                ),
                FailureEvent(at_request=HEAL_AT_OBJECT, action="heal", shard_id=SECOND_VICTIM),
            ],
            telemetry=True,
            # Small DRAM buffers so the drill exercises the full storage
            # hierarchy: buffers fill mid-transfer, flushes write incarnations
            # to flash and lookups read them back — the device I/O leaves the
            # trace trees need to reach all the way down.
            buffer_capacity_items=16,
        )
    recovery = result.recovery_reports[0] if result.recovery_reports else None
    cluster = topology.cluster
    health = cluster.stats.health()
    outcome = {
        **DRILL,
        "fail_at_object": FAIL_AT_OBJECT,
        "recover_at_object": RECOVER_AT_OBJECT,
        "second_fail_at_object": SECOND_FAIL_AT_OBJECT,
        "heal_at_object": HEAL_AT_OBJECT,
        "second_victim": SECOND_VICTIM,
        "availability": result.availability,
        "objects_total": result.objects_total,
        "objects_pass_through": result.objects_pass_through,
        "objects_reconstructed_exactly": result.objects_reconstructed_exactly,
        "chunks_lost": result.chunks_lost,
        "recovery_keys_lost": recovery.keys_lost if recovery else -1,
        "recovery_keys_re_replicated": recovery.keys_re_replicated if recovery else 0,
        "post_recovery_live_shards": list(cluster.live_shard_ids),
        "shards_ever_down": health["shards_ever_down"],
        "healed_shards": health["healed_shards"],
        "shards_never_failed": health["shards_never_failed"],
        "event_kinds": [event.kind for event in cluster.events],
        "trace_roots": len(tracer.roots()),
        "trace_spans": len(tracer.spans),
        "best_trace": _best_trace_tree(tracer),
    }
    return outcome, topology, tracer


def check_invariants(payload, drill_snapshot=None) -> None:
    """The contracts this benchmark exists to enforce."""
    parity = payload["parity"]
    assert abs(parity["ratio"] - 1.0) <= 0.10, parity

    dedup = payload["shared_vs_private"]
    assert dedup["shared_hit_rate"] > dedup["private_hit_rate"], dedup
    multi = next(o for o in payload["sweep"] if o["branches"] > 1)
    single = next(o for o in payload["sweep"] if o["branches"] == 1)
    assert multi["cross_branch_hit_rate"] > single["cross_branch_hit_rate"], (multi, single)
    assert single["cross_branch_hit_rate"] == 0.0, single

    drill = payload["failure_drill"]
    assert drill["availability"] == 1.0, drill
    assert drill["objects_reconstructed_exactly"] == drill["objects_total"], drill
    assert drill["chunks_lost"] == 0, drill
    assert drill["recovery_keys_lost"] == 0, drill

    # The event log must replay the two-act drill in causal order:
    # kill -> detect -> recover, then the second kill -> detect -> heal.
    kinds = drill["event_kinds"]
    for kind in ("schedule_fired", "failure_injected", "shard_down", "recovery", "shard_healed"):
        assert kind in kinds, (kind, kinds)
    assert kinds.index("schedule_fired") < kinds.index("failure_injected"), kinds
    assert kinds.index("failure_injected") < kinds.index("shard_down"), kinds
    assert kinds.index("shard_down") < kinds.index("recovery"), kinds
    assert kinds.index("recovery") < kinds.index("shard_healed"), kinds
    second_kill = len(kinds) - 1 - kinds[::-1].index("failure_injected")
    assert kinds.index("recovery") < second_kill < kinds.index("shard_healed"), kinds

    # health() must tell the healed shard from the never-failed ones.
    assert drill["second_victim"] in drill["healed_shards"], drill
    assert "shard-1" in drill["shards_ever_down"], drill
    assert "shard-1" not in drill["healed_shards"], drill
    assert drill["shards_never_failed"], drill
    assert drill["second_victim"] not in drill["shards_never_failed"], drill

    # One complete causal tree: branch transfer -> cluster batch -> >=2 shard
    # sub-batches -> device I/O events.
    best = drill["best_trace"]
    assert best is not None, drill
    assert best["cluster_batches"] >= 1, best
    assert len(best["distinct_shards"]) >= 2, best
    assert best["device_events"] >= 1, best
    assert best["clam_operations"] >= 1, best

    if drill_snapshot is not None:
        per_shard = drill_snapshot["per_shard"]
        assert len(per_shard) >= 2, sorted(per_shard)
        for shard_id, registry in per_shard.items():
            histograms = registry["histograms"]
            for name in ("lookup_latency_ms", "insert_latency_ms"):
                assert name in histograms, (shard_id, sorted(histograms))
                hist = histograms[name]
                assert hist["count"] > 0, (shard_id, name, hist)
                pct = hist["percentiles_ms"]
                assert pct["p50"] <= pct["p99"] <= pct["p999"], (shard_id, name, pct)

    modes = payload["mode_parity"]
    if modes is not None:
        assert MODE_PARITY_FLOOR <= modes["hit_rate_ratio"] <= 1.15, modes
        assert modes["real_cross_branch_hit_rate"] > 0.0, modes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweep for CI smoke runs"
    )
    parser.add_argument(
        "--descriptors",
        action="store_true",
        help="sweep on pre-computed chunk descriptors (the paper's §8 dodge) "
        "instead of real payloads",
    )
    add_telemetry_arg(parser)
    args = parser.parse_args()
    global SWEEP, TRACE, FAIL_AT_OBJECT, RECOVER_AT_OBJECT, DRILL
    global SECOND_FAIL_AT_OBJECT, HEAL_AT_OBJECT
    global REAL_PAYLOADS, MODE_PARITY_FLOOR
    REAL_PAYLOADS = not args.descriptors
    if args.quick:
        SWEEP = [(1, 1, 1), (2, 2, 1), (2, 3, 2)]
        TRACE = dict(TRACE, objects_per_branch=8, mean_object_size=128 * 1024)
        FAIL_AT_OBJECT, RECOVER_AT_OBJECT = 5, 12
        SECOND_FAIL_AT_OBJECT, HEAL_AT_OBJECT = 13, 15
        DRILL = dict(num_branches=2, num_shards=3, replication_factor=2)
        MODE_PARITY_FLOOR = 0.65

    started = time.perf_counter()
    sweep = [outcome_for(*point) for point in SWEEP]
    classic = classic_single_clam_improvement()
    degenerate = next(
        o for o in sweep if (o["branches"], o["shards"], o["replication_factor"]) == (1, 1, 1)
    )
    parity = {
        "classic_single_clam": classic,
        "cluster_one_shard": degenerate["aggregate_bandwidth_improvement"],
        "ratio": degenerate["aggregate_bandwidth_improvement"] / classic,
    }
    shared_branches = max(point[0] for point in SWEEP)
    shared_point = next(point for point in SWEEP if point[0] == shared_branches)
    shared = next(o for o in sweep if o["branches"] == shared_branches)
    dedup = {
        "branches": shared_branches,
        "private_hit_rate": private_index_hit_rate(shared_branches),
        "shared_hit_rate": shared["dedup_hit_rate"],
    }
    # --descriptors exists to avoid materialising bytes, so the real-vs-
    # descriptor comparison (which must run both) only happens on the
    # default real-payload runs.
    modes = mode_parity(*shared_point) if REAL_PAYLOADS else None
    drill, drill_topology, drill_tracer = failure_drill()
    drill_snapshot = drill_topology.cluster.telemetry_snapshot(tracer=drill_tracer)

    mode_label = "real payloads" if REAL_PAYLOADS else "descriptors"
    print_table(
        "Multi-branch WAN optimization: branches x shards x RF "
        f"(link {LINK_MBPS:.0f} Mbps, {mode_label})",
        [
            "branches",
            "shards",
            "RF",
            "agg improvement",
            "dedup hit rate",
            "cross-branch rate",
            "availability",
        ],
        [
            (
                o["branches"],
                o["shards"],
                o["replication_factor"],
                o["aggregate_bandwidth_improvement"],
                o["dedup_hit_rate"],
                o["cross_branch_hit_rate"],
                o["availability"],
            )
            for o in sweep
        ],
    )
    print(
        "parity (1 branch, 1 shard, RF=1 vs classic single CLAM): "
        f"{parity['cluster_one_shard']:.3f} vs {parity['classic_single_clam']:.3f} "
        f"(ratio {parity['ratio']:.3f})"
    )
    print(
        f"dedup with {shared_branches} branches: shared index {dedup['shared_hit_rate']:.3f} "
        f"vs private indexes {dedup['private_hit_rate']:.3f}"
    )
    if modes is not None:
        print(
            "mode parity (real bytes vs descriptors, same trace shape): "
            f"hit rate {modes['real_dedup_hit_rate']:.3f} vs "
            f"{modes['descriptor_dedup_hit_rate']:.3f} "
            f"(ratio {modes['hit_rate_ratio']:.3f}); cluster sim "
            f"{modes['real_cluster_objects_per_second']:.1f} vs "
            f"{modes['descriptor_cluster_objects_per_second']:.1f} objects/s, "
            f"real generation (chunk+SHA-1) {modes['real_generation_seconds']:.2f}s"
        )
    print(
        "failure drill (RF=2, kill shard-1 mid-transfer): "
        f"availability {drill['availability']:.3f}, "
        f"{drill['objects_reconstructed_exactly']}/{drill['objects_total']} objects byte-exact, "
        f"{drill['chunks_lost']} chunks lost, "
        f"{drill['recovery_keys_re_replicated']} keys re-replicated"
    )
    best = drill["best_trace"]
    print(
        f"telemetry: {drill['trace_spans']} spans in {drill['trace_roots']} traces; "
        f"richest tree touches {len(best['distinct_shards'])} shards with "
        f"{best['device_events']} device I/O events; "
        f"healed={drill['healed_shards']}, never failed={drill['shards_never_failed']}"
    )

    payload = {
        "spec": {
            "link_mbps": LINK_MBPS,
            "mode": "real_payloads" if REAL_PAYLOADS else "descriptors",
            "trace": {key: value for key, value in TRACE.items()},
            "sweep": [list(point) for point in SWEEP],
        },
        "sweep": sweep,
        "parity": parity,
        "shared_vs_private": dedup,
        "mode_parity": modes,
        "failure_drill": drill,
    }
    check_invariants(payload, drill_snapshot)
    elapsed = time.perf_counter() - started
    path = write_bench_json(
        "wanopt_cluster",
        payload,
        elapsed_seconds=elapsed,
        telemetry=drill_topology.cluster.telemetry_snapshot(include_buckets=False),
    )
    print(f"wrote {path}")
    dump_telemetry(args.telemetry_out, drill_snapshot)


if __name__ == "__main__":
    main()
