"""Table 2: distribution of flash I/Os per lookup and the resulting latencies.

The paper reports, for 0 % and 40 % lookup-success-rate workloads, the
probability that a lookup needs 0, 1, 2 or 3 flash reads, plus the latency of
that many reads on a flash chip and the Intel SSD.  The headline: more than
99 % of lookups need at most one flash read, and lookups for absent keys
almost never touch flash at all.
"""

from __future__ import annotations

from benchmarks.common import print_table, retention_window, standard_clam, standard_config
from repro.analysis.cost_model import FLASH_CHIP_COSTS, INTEL_SSD_COSTS
from repro.workloads import WorkloadRunner, WorkloadSpec, build_lookup_then_insert_workload

NUM_KEYS = 12_000


def _io_distribution(target_lsr: float):
    config = standard_config()
    clam = standard_clam("intel-ssd")
    spec = WorkloadSpec(
        num_keys=NUM_KEYS,
        target_lsr=target_lsr,
        recency_window=retention_window(config),
        seed=17,
    )
    operations = build_lookup_then_insert_workload(spec)
    report = WorkloadRunner(clam).run(operations)
    return report.flash_reads_histogram(), report


def run_table2():
    histogram_0, report_0 = _io_distribution(0.0)
    histogram_40, report_40 = _io_distribution(0.4)
    return {
        "lsr0": {"histogram": histogram_0, "report": report_0},
        "lsr40": {"histogram": histogram_40, "report": report_40},
    }


def test_table2_flash_ios_per_lookup(benchmark):
    results = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    histogram_0 = results["lsr0"]["histogram"]
    histogram_40 = results["lsr40"]["histogram"]

    rows = []
    for num_ios in range(0, 4):
        chip_latency = num_ios * FLASH_CHIP_COSTS.page_read_cost_ms()
        ssd_latency = num_ios * INTEL_SSD_COSTS.page_read_cost_ms()
        rows.append(
            (
                num_ios,
                histogram_0.get(num_ios, 0.0),
                histogram_40.get(num_ios, 0.0),
                chip_latency,
                ssd_latency,
            )
        )
    print_table(
        "Table 2: flash I/Os per lookup",
        ["# flash I/O", "P(0% LSR)", "P(40% LSR)", "flash chip (ms)", "Intel SSD (ms)"],
        rows,
    )
    print(
        "mean lookup latency: 0%% LSR = %.4f ms, 40%% LSR = %.4f ms"
        % (
            results["lsr0"]["report"].mean_lookup_latency_ms,
            results["lsr40"]["report"].mean_lookup_latency_ms,
        )
    )

    # At 0% LSR, almost every lookup is filtered by the Bloom filters: no flash I/O.
    assert histogram_0.get(0, 0.0) > 0.97
    # At 40% LSR, the no-I/O fraction drops towards the miss fraction (the
    # paper measures ~60%; hits served straight from the DRAM buffer keep the
    # measured value somewhat above that).
    assert 0.5 < histogram_40.get(0, 0.0) < 0.85
    # The overwhelming majority of lookups need at most one flash read.
    at_most_one_0 = histogram_0.get(0, 0.0) + histogram_0.get(1, 0.0)
    at_most_one_40 = histogram_40.get(0, 0.0) + histogram_40.get(1, 0.0)
    assert at_most_one_0 > 0.99
    assert at_most_one_40 > 0.9
    # Mean lookup latency at 40% LSR lands in the paper's ~0.06 ms regime.
    assert results["lsr40"]["report"].mean_lookup_latency_ms < 0.2
