"""Chaos drill for the hardened RPC plane: faults in, no acknowledged loss out.

The process-per-shard cluster claims its RPC plane survives gray network
failures: per-request deadlines, bounded idempotent retries, hedged reads at
RF>=2, CRC-checked frames and a per-shard circuit breaker.  This benchmark
drives those claims end to end under :class:`~repro.service.chaos.
ChaosTransport` fault injection and freezes them into ratchetable numbers:

* **Chaos drill** — a seeded randomized schedule (drops, duplicates, CRC
  corruption, delays) on every worker link at RF=2 while acknowledged writes
  and lookups flow.  Contract: **zero acknowledged writes lost**,
  availability >= 0.99, and every single-key operation bounded by the
  deadline/retry budget (``max_op_latency_ms``).
* **Stall drill** — one worker frozen with SIGSTOP.  Batched lookups must
  hedge around it inside the hedge window *without* marking it down (slow is
  not dead); single-key reads must then trip the deadline, open the circuit,
  fail over, and the supervisor restart must rejoin the shard with zero
  lost keys.
* **Parity** — with chaos disabled, the exact deadline/retry/hedging
  configuration must reproduce the in-process cluster bit for bit (results,
  merged counters, ensemble clocks) and emit **no** RPC-resilience events:
  the hardening is free until a fault actually happens.

``--quick`` shrinks the chaos workload (the stall drill and parity run at
fixed sizes), writes ``BENCH_chaos_quick.json`` and ratchets it against the
committed ``BENCH_chaos.json`` via :mod:`benchmarks.ratchet`.
"""

from __future__ import annotations

import argparse
import os
import signal
import time

from benchmarks.common import (
    add_telemetry_arg,
    dump_telemetry,
    print_table,
    standard_config,
    write_bench_json,
)
from benchmarks.ratchet import REGISTRY, check_spec
from repro.core.errors import DeviceFailedError, ShardUnavailableError
from repro.service import ChaosSchedule, ClusterService, ParallelClusterService
from repro.telemetry.schema import validate_snapshot
from repro.workloads.keygen import fingerprint_for
from repro.workloads.workload import Operation, OpKind

SHARDS = 4
RF = 2

# The resilience budget under test.  Healthy workers answer in microseconds,
# so the deadline only prices genuine faults; the bound below is the whole
# point — a worst-case single-key write burns every retry on both replicas
# and still completes inside it.
DEADLINE_MS = 150.0
RETRY_LIMIT = 3
BACKOFF_MS = 2.0
HEDGE_MS = 50.0
OP_LATENCY_BOUND_MS = 2_500.0

CHAOS_SEED = 2026
CHAOS_KEYS = 360
CHAOS_SCHEDULE = dict(
    drop_rate=0.015,
    duplicate_rate=0.05,
    corrupt_rate=0.015,
    delay_rate=0.05,
    delay_ms=2.0,
)

STALL_KEYS = 120
PARITY_OPS = 240


def build_cluster(telemetry: bool = False, hedge: bool = False) -> ParallelClusterService:
    return ParallelClusterService(
        num_shards=SHARDS,
        config=standard_config(telemetry_enabled=telemetry),
        replication_factor=RF,
        request_deadline_ms=DEADLINE_MS,
        retry_limit=RETRY_LIMIT,
        retry_backoff_ms=BACKOFF_MS,
        hedge_delay_ms=HEDGE_MS if hedge else None,
    )


def event_counts(cluster) -> dict:
    counts: dict = {}
    for event in cluster.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def run_chaos_drill():
    """Acknowledged writes under a randomized fault schedule at RF=2."""
    cluster = build_cluster(telemetry=True)
    try:
        cluster.install_chaos(ChaosSchedule(**CHAOS_SCHEDULE), seed=CHAOS_SEED)
        keys = [fingerprint_for(index, namespace=b"chaos") for index in range(CHAOS_KEYS)]
        acked, refused = [], 0
        max_latency_ms = 0.0
        for key in keys:
            started = time.monotonic()
            try:
                cluster.insert(key, b"chaos-value")
                acked.append(key)
            except (ShardUnavailableError, DeviceFailedError):
                refused += 1
            max_latency_ms = max(max_latency_ms, (time.monotonic() - started) * 1000.0)
        # Reads continue under the same chaos: batched (the scatter/gather
        # path) and a single-key sample (the deadline/retry path).
        found_in_batch = sum(
            1
            for result in cluster.execute_batch(
                [Operation(OpKind.LOOKUP, key) for key in acked]
            ).results
            if result is not None and result.found
        )
        sample = acked[:: max(1, len(acked) // 48)]
        lookup_failures = 0
        for key in sample:
            started = time.monotonic()
            try:
                if not cluster.lookup(key).found:
                    lookup_failures += 1
            except (ShardUnavailableError, DeviceFailedError):
                lookup_failures += 1
            max_latency_ms = max(max_latency_ms, (time.monotonic() - started) * 1000.0)
        counts = event_counts(cluster)
        # Chaos off, every circuit closed again: each acknowledged write must
        # still be readable — the zero-lost-acked-writes contract.
        cluster.clear_chaos()
        for shard_id in sorted(cluster.down_shard_ids):
            cluster.restart_worker(shard_id)
        lost = sum(
            1
            for key in acked
            if not (result := cluster.lookup(key)).found or result.value != b"chaos-value"
        )
        attempts = len(keys) + len(acked) + len(sample)
        successes = len(acked) + found_in_batch + (len(sample) - lookup_failures)
        snapshot = cluster.telemetry_snapshot(include_buckets=False)
        validate_snapshot(snapshot)
    finally:
        cluster.close()
    return {
        "seeded_keys": CHAOS_KEYS,
        "acked_writes": len(acked),
        "refused_writes": refused,
        "lost_acked_writes": lost,
        "availability": round(successes / attempts, 5),
        "injected_faults": counts.get("chaos_injected", 0),
        "rpc_timeouts": counts.get("rpc_timeout", 0),
        "rpc_retries": counts.get("rpc_retry", 0),
        "workers_stalled": counts.get("worker_stalled", 0),
        "max_op_latency_ms": round(max_latency_ms, 2),
        "op_latency_bound_ms": OP_LATENCY_BOUND_MS,
    }, snapshot


def run_stall_drill():
    """One SIGSTOP-frozen worker: hedge around it, then circuit-break it."""
    cluster = build_cluster(hedge=True)
    try:
        keys = [fingerprint_for(index, namespace=b"stall") for index in range(STALL_KEYS)]
        for key in keys:
            cluster.insert(key, b"stall-value")
        victim = cluster.shard_for(keys[0])
        os.kill(cluster.shards[victim].pid, signal.SIGSTOP)
        try:
            # Hedged phase: batched lookups abandon the frozen primary after
            # the hedge window and reroute — without declaring it dead.
            hedged_found = sum(
                1
                for result in cluster.execute_batch(
                    [Operation(OpKind.LOOKUP, key) for key in keys]
                ).results
                if result is not None and result.found
            )
            down_during_hedge = int(victim in cluster.down_shard_ids)
            # Deadline phase: single-key reads have no hedge, so the frozen
            # worker burns its full retry budget, opens the circuit and joins
            # the down set; every read still answers from the replica.
            deadline_found = sum(1 for key in keys if cluster.lookup(key).found)
            down_after_deadline = int(victim in cluster.down_shard_ids)
        finally:
            os.kill(cluster.shards[victim].pid, signal.SIGCONT)
        counts = event_counts(cluster)
        cluster.restart_worker(victim)
        lost = sum(1 for key in keys if not cluster.lookup(key).found)
    finally:
        cluster.close()
    return {
        "seeded_keys": STALL_KEYS,
        "victim": victim,
        "hedged_lookups_found": hedged_found,
        "hedge_fired": counts.get("hedge_fired", 0),
        "victim_down_during_hedge": down_during_hedge,
        "deadline_lookups_found": deadline_found,
        "workers_stalled": counts.get("worker_stalled", 0),
        "victim_down_after_deadline": down_after_deadline,
        "lost_keys": lost,
    }


def run_parity():
    """Chaos off: the resilience configuration must be bit-invisible."""

    def drive(cluster):
        records = []
        for index in range(PARITY_OPS // 2):
            records.append(cluster.insert(b"parity-%d" % index, b"value-%d" % index))
        records.extend(
            cluster.execute_batch(
                [
                    Operation(OpKind.LOOKUP, b"parity-%d" % index)
                    if index % 3
                    else Operation(OpKind.UPDATE, b"parity-%d" % index, b"update")
                    for index in range(PARITY_OPS // 2)
                ]
            ).results
        )
        return records

    reference = ClusterService(
        num_shards=SHARDS, config=standard_config(), replication_factor=RF
    )
    expected = drive(reference)
    cluster = build_cluster(hedge=True)
    try:
        actual = drive(cluster)
        mismatches = sum(1 for got, want in zip(actual, expected) if got != want)
        mismatches += abs(len(actual) - len(expected))
        counters_identical = cluster.stats.combined() == reference.stats.combined()
        clock_identical = cluster.clock.now_ms == reference.clock.now_ms
        rpc_kinds = {
            "chaos_injected",
            "rpc_timeout",
            "rpc_retry",
            "hedge_fired",
            "worker_stalled",
        }
        rpc_events_absent = rpc_kinds.isdisjoint(cluster.events.kinds())
    finally:
        cluster.close()
    return {
        "operations": len(expected),
        "mismatches": mismatches,
        "results_identical": int(mismatches == 0),
        "counters_identical": int(counters_identical),
        "clock_identical": int(clock_identical),
        "rpc_events_absent": int(rpc_events_absent),
    }


def check_invariants(chaos, stall, parity) -> None:
    """The contracts the chaos-hardened RPC plane ships under."""
    assert chaos["lost_acked_writes"] == 0, chaos
    assert chaos["availability"] >= 0.99, chaos
    assert chaos["injected_faults"] > 0, chaos
    assert chaos["max_op_latency_ms"] <= OP_LATENCY_BOUND_MS, chaos
    assert stall["hedged_lookups_found"] == STALL_KEYS, stall
    assert stall["hedge_fired"] >= 1, stall
    assert stall["victim_down_during_hedge"] == 0, stall
    assert stall["deadline_lookups_found"] == STALL_KEYS, stall
    assert stall["workers_stalled"] >= 1, stall
    assert stall["victim_down_after_deadline"] == 1, stall
    assert stall["lost_keys"] == 0, stall
    assert parity["results_identical"] == 1, parity
    assert parity["counters_identical"] == 1, parity
    assert parity["clock_identical"] == 1, parity
    assert parity["rpc_events_absent"] == 1, parity


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller chaos workload for CI smoke runs"
    )
    add_telemetry_arg(parser)
    args = parser.parse_args()
    global CHAOS_KEYS
    if args.quick:
        CHAOS_KEYS = 120

    chaos, telemetry = run_chaos_drill()
    stall = run_stall_drill()
    parity = run_parity()
    check_invariants(chaos, stall, parity)

    print_table(
        "Chaos drill (randomized faults on every link, RF=2)",
        ["check", "value"],
        [
            ("acked writes", chaos["acked_writes"]),
            ("lost acked writes", chaos["lost_acked_writes"]),
            ("availability", chaos["availability"]),
            ("faults injected", chaos["injected_faults"]),
            ("rpc timeouts / retries", f"{chaos['rpc_timeouts']} / {chaos['rpc_retries']}"),
            ("max op latency (ms)", chaos["max_op_latency_ms"]),
            ("latency bound (ms)", chaos["op_latency_bound_ms"]),
        ],
    )
    print_table(
        "Stall drill (SIGSTOP-frozen worker)",
        ["check", "value"],
        [
            ("hedges fired", stall["hedge_fired"]),
            ("victim down during hedging", stall["victim_down_during_hedge"]),
            ("circuit opened on deadline", stall["victim_down_after_deadline"]),
            ("lost keys", stall["lost_keys"]),
        ],
    )
    print_table(
        "Chaos-off parity (deadlines + retries + hedging enabled)",
        ["check", "value"],
        [
            ("operations", parity["operations"]),
            ("mismatches", parity["mismatches"]),
            ("rpc events absent", parity["rpc_events_absent"]),
        ],
    )

    name = "chaos_quick" if args.quick else "chaos"
    path = write_bench_json(
        name,
        {
            "spec": {
                "shards": SHARDS,
                "replication_factor": RF,
                "request_deadline_ms": DEADLINE_MS,
                "retry_limit": RETRY_LIMIT,
                "retry_backoff_ms": BACKOFF_MS,
                "hedge_delay_ms": HEDGE_MS,
                "chaos_seed": CHAOS_SEED,
                "chaos_schedule": CHAOS_SCHEDULE,
                "chaos_keys": CHAOS_KEYS,
                "stall_keys": STALL_KEYS,
                "parity_operations": PARITY_OPS,
                "cores_available": os.cpu_count(),
            },
            "chaos": chaos,
            "stall": stall,
            "parity": parity,
        },
        telemetry=telemetry,
    )
    print(f"wrote {path}")
    dump_telemetry(args.telemetry_out, telemetry)
    if args.quick:
        checks = check_spec(REGISTRY["chaos"])
        if checks:
            print(f"ratchet ok: {len(checks)} metric checks against BENCH_chaos.json")
        else:
            print("ratchet skipped: no committed BENCH_chaos.json yet")


if __name__ == "__main__":
    main()
