"""Process-per-shard parallel cluster: multi-core scaling + parity + kill drill.

The in-process :class:`ClusterService` is deterministic but single-core; the
:class:`ParallelClusterService` puts every shard's CLAM in its own worker
process behind the length-prefixed wire protocol.  This benchmark enforces
the deployment's three contracts end to end:

* **Scaling** — the Zipf and WAN-optimizer-style batched workloads at 1, 2
  and 4 worker processes.  Two throughput numbers are reported honestly:
  ``wall_ops_per_sec`` (bounded by ``cores_available`` on the runner — a
  one-core CI box cannot show wall-clock speedup) and
  ``aggregate_ops_per_sec`` — total operations divided by the **busiest
  worker's CPU seconds**, i.e. the rate the fleet sustains when every worker
  has a core of its own.  The full run asserts the 4-worker aggregate beats
  the 1-worker aggregate by at least 2x on the same workload.
* **Parity** — the bit-identical results contract: the same deterministic
  mixed workload (single ops + batches at RF=2) through both deployments
  must produce exactly equal result records, merged counters and ensemble
  clock readings.
* **Kill drill** — SIGKILL a worker at RF=2 under acknowledged writes: zero
  lost keys while down, supervisor detection, a clean ``restart_worker``
  rejoin with hint replay, zero lost keys after restart.

``--quick`` shrinks the scaling workloads (parity and drill run at full,
fixed sizes — they are the machine-invariant ratchet surface), writes
``BENCH_parallel_cluster_quick.json`` and ratchets it against the committed
``BENCH_parallel_cluster.json`` via :mod:`benchmarks.ratchet`.
"""

from __future__ import annotations

import argparse
import os
import time

from benchmarks.common import (
    add_telemetry_arg,
    dump_telemetry,
    print_table,
    standard_config,
    write_bench_json,
)
from benchmarks.ratchet import REGISTRY, check_spec
from repro.service import ClusterService, ParallelClusterService
from repro.telemetry.schema import validate_snapshot
from repro.workloads.keygen import ZipfKeyGenerator, fingerprint_for
from repro.workloads.workload import Operation, OpKind

WORKER_COUNTS = (1, 2, 4)
BATCH_SIZE = 64

ZIPF_OPS = 24_000
ZIPF_KEY_SPACE = 6_000
ZIPF_SKEW = 1.1
ZIPF_LOOKUP_EVERY = 3  # one lookup batch per N batches is an insert batch

WANOPT_ROUNDS = 120
WANOPT_FINGERPRINTS_PER_OBJECT = 64
WANOPT_DEDUP_WINDOW = 40  # objects re-reference fingerprints this far back

PARITY_OPS = 480
PARITY_SHARDS = 4
PARITY_RF = 2

DRILL_KEYS = 300
DRILL_SHARDS = 4
DRILL_RF = 2


def build_parallel(num_shards: int, replication_factor: int = 1, telemetry: bool = False):
    return ParallelClusterService(
        num_shards=num_shards,
        config=standard_config(telemetry_enabled=telemetry),
        replication_factor=replication_factor,
    )


def zipf_batches(total_ops: int, seed: int = 11):
    """Deterministic Zipf traffic: mostly lookup batches, periodic inserts."""
    generator = ZipfKeyGenerator(ZIPF_KEY_SPACE, skew=ZIPF_SKEW, seed=seed)
    batches = []
    emitted = 0
    batch_index = 0
    while emitted < total_ops:
        size = min(BATCH_SIZE, total_ops - emitted)
        keys = [generator.next_key() for _ in range(size)]
        if batch_index % ZIPF_LOOKUP_EVERY == 0:
            batch = [Operation(OpKind.INSERT, key, b"zipf-value") for key in keys]
        else:
            batch = [Operation(OpKind.LOOKUP, key) for key in keys]
        batches.append(batch)
        emitted += size
        batch_index += 1
    return batches


def wanopt_batches(rounds: int):
    """WAN-optimizer shape: per object, one lookup batch then insert misses.

    Each "object" is a run of fingerprints partially shared with recent
    objects (the dedup window), so lookups hit for re-referenced chunks and
    the insert batch covers only the genuinely new ones — the
    lookup-then-insert round trip of the branch-office compression engine.
    """
    batches = []
    next_chunk = 0
    for round_index in range(rounds):
        fingerprints = []
        for position in range(WANOPT_FINGERPRINTS_PER_OBJECT):
            if position % 3 == 0 and next_chunk > WANOPT_DEDUP_WINDOW:
                identifier = next_chunk - WANOPT_DEDUP_WINDOW + (position % 7)
            else:
                identifier = next_chunk
                next_chunk += 1
            fingerprints.append(fingerprint_for(identifier, namespace=b"wanopt"))
        batches.append([Operation(OpKind.LOOKUP, fp) for fp in fingerprints])
        batches.append(
            [Operation(OpKind.INSERT, fp, b"chunk-addr") for fp in fingerprints]
        )
    return batches


def run_scaling_workload(name: str, batches, worker_counts=WORKER_COUNTS):
    """Drive the same batch stream at each worker count; measure both rates."""
    rows = []
    total_ops = sum(len(batch) for batch in batches)
    for workers in worker_counts:
        cluster = build_parallel(num_shards=workers)
        try:
            cpu_before = cluster.worker_cpu_seconds()
            wall_start = time.monotonic()
            for batch in batches:
                cluster.execute_batch(batch)
            wall_seconds = time.monotonic() - wall_start
            cpu_after = cluster.worker_cpu_seconds()
        finally:
            cluster.close()
        worker_cpu = {
            shard_id: cpu_after[shard_id] - cpu_before.get(shard_id, 0.0)
            for shard_id in cpu_after
        }
        busiest_cpu = max(worker_cpu.values())
        rows.append(
            {
                "workers": workers,
                "operations": total_ops,
                "wall_seconds": round(wall_seconds, 4),
                "wall_ops_per_sec": round(total_ops / wall_seconds, 1),
                "worker_cpu_seconds": {
                    shard_id: round(seconds, 4)
                    for shard_id, seconds in sorted(worker_cpu.items())
                },
                "busiest_worker_cpu_seconds": round(busiest_cpu, 4),
                "aggregate_ops_per_sec": round(total_ops / busiest_cpu, 1),
            }
        )
    base = rows[0]["aggregate_ops_per_sec"]
    for row in rows:
        row["aggregate_speedup_vs_1"] = round(row["aggregate_ops_per_sec"] / base, 3)
    return {"workload": name, "rows": rows}


def run_parity():
    """The bit-identical contract, measured: in-process vs process mode."""

    def drive(cluster):
        records = []
        for index in range(PARITY_OPS // 4):
            records.append(cluster.insert(b"parity-%d" % index, b"value-%d" % index))
        batch = [
            Operation(OpKind.LOOKUP, b"parity-%d" % index)
            if index % 3
            else Operation(OpKind.UPDATE, b"parity-%d" % index, b"update-%d" % index)
            for index in range(PARITY_OPS // 4)
        ]
        records.extend(cluster.execute_batch(batch).results)
        for index in range(0, PARITY_OPS // 4, 2):
            records.append(cluster.delete(b"parity-%d" % index))
        for index in range(PARITY_OPS // 4):
            records.append(cluster.lookup(b"parity-%d" % index))
        return records

    reference = ClusterService(
        num_shards=PARITY_SHARDS,
        config=standard_config(telemetry_enabled=True),
        replication_factor=PARITY_RF,
    )
    expected = drive(reference)
    parallel = build_parallel(
        num_shards=PARITY_SHARDS, replication_factor=PARITY_RF, telemetry=True
    )
    try:
        actual = drive(parallel)
        mismatches = sum(1 for got, want in zip(actual, expected) if got != want)
        mismatches += abs(len(actual) - len(expected))
        counters_identical = parallel.stats.combined() == reference.stats.combined()
        clock_identical = parallel.clock.now_ms == reference.clock.now_ms
        snapshot = parallel.telemetry_snapshot(include_buckets=False)
        validate_snapshot(snapshot)
        telemetry_identical = snapshot["per_shard"] == (
            reference.telemetry_snapshot(include_buckets=False)["per_shard"]
        )
    finally:
        parallel.close()
    return {
        "operations": len(expected),
        "mismatches": mismatches,
        "results_identical": int(mismatches == 0),
        "counters_identical": int(counters_identical),
        "clock_identical": int(clock_identical),
        "telemetry_identical": int(telemetry_identical),
    }, snapshot


def run_kill_drill():
    """SIGKILL a worker at RF=2: acknowledged writes must all survive."""
    cluster = build_parallel(num_shards=DRILL_SHARDS, replication_factor=DRILL_RF)
    try:
        keys = [fingerprint_for(identifier, namespace=b"drill") for identifier in range(DRILL_KEYS)]
        for key in keys:
            cluster.insert(key, b"drill-value")
        victim = cluster.shard_for(keys[0])
        cluster.kill_worker(victim)
        detected = cluster.check_workers()
        batch = cluster.execute_batch([Operation(OpKind.LOOKUP, key) for key in keys])
        lost_while_down = sum(1 for result in batch.results if not result.found)
        # Writes issued while the worker is down become hinted handoffs …
        for key in keys[: DRILL_KEYS // 4]:
            cluster.insert(key, b"while-down")
        report = cluster.restart_worker(victim)
        # … replayed on restart, so the rejoined worker serves current data.
        lost_after_restart = sum(
            1 for key in keys if not cluster.lookup(key).found
        )
        event_kinds = [event.kind for event in cluster.events]
        outcome = {
            "seeded_keys": DRILL_KEYS,
            "victim": victim,
            "supervisor_detected": int(detected == [victim]),
            "lost_keys_while_down": lost_while_down,
            "failover_retries": batch.retried_operations,
            "hinted_handoffs_replayed": cluster.hinted_handoffs,
            "worker_restarted": int(report is None and victim not in cluster.down_shard_ids),
            "lost_keys_after_restart": lost_after_restart,
            "events_seen": int(
                "worker_killed" in event_kinds
                and "worker_died" in event_kinds
                and "worker_restarted" in event_kinds
            ),
        }
    finally:
        cluster.close()
    return outcome


def check_invariants(parity, drill, scaling, quick: bool) -> None:
    """The contracts this deployment ships under."""
    assert parity["results_identical"] == 1, parity
    assert parity["mismatches"] == 0, parity
    assert parity["counters_identical"] == 1, parity
    assert parity["clock_identical"] == 1, parity
    assert parity["telemetry_identical"] == 1, parity
    assert drill["lost_keys_while_down"] == 0, drill
    assert drill["lost_keys_after_restart"] == 0, drill
    assert drill["supervisor_detected"] == 1, drill
    assert drill["worker_restarted"] == 1, drill
    assert drill["events_seen"] == 1, drill
    if not quick:
        # The acceptance bar: >= 2x aggregate ops/sec at 4 workers vs 1.
        for workload in scaling:
            four = next(r for r in workload["rows"] if r["workers"] == 4)
            assert four["aggregate_speedup_vs_1"] >= 2.0, (
                workload["workload"],
                four,
            )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller scaling workloads for CI smoke runs"
    )
    add_telemetry_arg(parser)
    args = parser.parse_args()
    global ZIPF_OPS, WANOPT_ROUNDS
    if args.quick:
        ZIPF_OPS = 4_800
        WANOPT_ROUNDS = 24

    scaling = [
        run_scaling_workload("zipf", zipf_batches(ZIPF_OPS)),
        run_scaling_workload("wanopt", wanopt_batches(WANOPT_ROUNDS)),
    ]
    parity, telemetry = run_parity()
    drill = run_kill_drill()
    check_invariants(parity, drill, scaling, quick=args.quick)

    for workload in scaling:
        print_table(
            f"Process-per-shard scaling: {workload['workload']} workload",
            ["workers", "ops", "wall ops/s", "busiest cpu s", "aggregate ops/s", "speedup"],
            [
                (
                    row["workers"],
                    row["operations"],
                    row["wall_ops_per_sec"],
                    row["busiest_worker_cpu_seconds"],
                    row["aggregate_ops_per_sec"],
                    row["aggregate_speedup_vs_1"],
                )
                for row in workload["rows"]
            ],
        )
    print_table(
        "Parity and worker-kill drill",
        ["check", "value"],
        [
            ("parity ops", parity["operations"]),
            ("parity mismatches", parity["mismatches"]),
            ("lost keys while down", drill["lost_keys_while_down"]),
            ("lost keys after restart", drill["lost_keys_after_restart"]),
            ("failover retries", drill["failover_retries"]),
        ],
    )

    name = "parallel_cluster_quick" if args.quick else "parallel_cluster"
    path = write_bench_json(
        name,
        {
            "spec": {
                "worker_counts": list(WORKER_COUNTS),
                "batch_size": BATCH_SIZE,
                "zipf_ops": ZIPF_OPS,
                "zipf_key_space": ZIPF_KEY_SPACE,
                "zipf_skew": ZIPF_SKEW,
                "wanopt_rounds": WANOPT_ROUNDS,
                "wanopt_fingerprints_per_object": WANOPT_FINGERPRINTS_PER_OBJECT,
                "parity_operations": PARITY_OPS,
                "parity_replication_factor": PARITY_RF,
                "drill_keys": DRILL_KEYS,
                "cores_available": os.cpu_count(),
            },
            "scaling": scaling,
            "parity": parity,
            "drill": drill,
        },
        telemetry=telemetry,
    )
    print(f"wrote {path}")
    dump_telemetry(args.telemetry_out, telemetry)
    if args.quick:
        checks = check_spec(REGISTRY["parallel_cluster"])
        if checks:
            print(
                f"ratchet ok: {len(checks)} metric checks against "
                "BENCH_parallel_cluster.json"
            )
        else:
            print("ratchet skipped: no committed BENCH_parallel_cluster.json yet")


if __name__ == "__main__":
    main()
