"""Figure 5: spurious lookup rate vs memory allocated to buffers.

The paper fixes total DRAM (4 GB) and varies how much of it goes to buffers
versus Bloom filters, measuring the spurious (false-positive) lookup rate on
the real data structure.  The curve is U-shaped-ish with a broad flat
optimum: very small buffers mean many incarnations (more filters to be wrong
about), very large buffers starve the Bloom filters.

This bench reproduces the measurement at laptop scale: a fixed simulated DRAM
budget is split between buffers and Bloom filters across several
configurations, each runs a miss-only workload (0 % LSR), and the fraction of
lookups that touched flash at all is the spurious rate.
"""

from __future__ import annotations

from benchmarks.common import print_table
from repro.core import CLAM, CLAMConfig
from repro.workloads import WorkloadRunner, WorkloadSpec, build_lookup_then_insert_workload

#: Total simulated DRAM budget (bits) split between buffers and Bloom filters.
TOTAL_MEMORY_BITS = 2_000_000
NUM_SUPER_TABLES = 8
INCARNATIONS = 8
ENTRY_BITS = 16 * 8

#: Fractions of the DRAM budget given to buffers.
BUFFER_FRACTIONS = [0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 0.9]


def _config_for(buffer_fraction: float) -> CLAMConfig:
    buffer_bits_total = TOTAL_MEMORY_BITS * buffer_fraction
    bloom_bits_total = TOTAL_MEMORY_BITS - buffer_bits_total
    # Buffer capacity per super table implied by the buffer allocation
    # (entries live in cuckoo slots at 50 % utilisation).
    capacity = max(8, int(buffer_bits_total / (NUM_SUPER_TABLES * ENTRY_BITS * 2)))
    total_entries_on_flash = capacity * NUM_SUPER_TABLES * INCARNATIONS
    bloom_bits_per_entry = max(0.5, bloom_bits_total / total_entries_on_flash)
    return CLAMConfig.scaled(
        num_super_tables=NUM_SUPER_TABLES,
        buffer_capacity_items=capacity,
        incarnations_per_table=INCARNATIONS,
        bloom_bits_per_entry=bloom_bits_per_entry,
    )


def _spurious_rate(config: CLAMConfig) -> float:
    clam = CLAM(config, storage="intel-ssd")
    capacity = config.total_items_capacity(INCARNATIONS)
    spec = WorkloadSpec(
        num_keys=int(capacity * 1.5),
        target_lsr=0.0,  # every lookup targets a key never inserted
        recency_window=max(64, capacity // 2),
        seed=5,
    )
    operations = build_lookup_then_insert_workload(spec)
    report = WorkloadRunner(clam).run(operations)
    spurious = sum(1 for reads in report.lookup_flash_reads if reads > 0)
    return spurious / max(1, len(report.lookup_flash_reads))


def run_figure5():
    results = []
    for fraction in BUFFER_FRACTIONS:
        config = _config_for(fraction)
        results.append(
            {
                "buffer_fraction": fraction,
                "buffer_capacity": config.buffer_capacity_items,
                "bloom_bits_per_entry": config.bloom_bits_per_entry,
                "spurious_rate": _spurious_rate(config),
            }
        )
    return results


def test_fig5_spurious_rate_vs_buffer_allocation(benchmark):
    results = benchmark.pedantic(run_figure5, rounds=1, iterations=1)

    print_table(
        "Figure 5: spurious lookup rate vs memory allocated to buffers",
        ["buffer fraction", "buffer items/table", "bloom bits/entry", "spurious rate"],
        [
            (
                row["buffer_fraction"],
                row["buffer_capacity"],
                row["bloom_bits_per_entry"],
                row["spurious_rate"],
            )
            for row in results
        ],
    )

    rates = [row["spurious_rate"] for row in results]
    # Starving the Bloom filters (too much memory on buffers) must hurt:
    # the right edge of the sweep is clearly worse than the best point.
    assert rates[-1] > min(rates) + 0.01
    # The well-provisioned middle of the sweep achieves a very low spurious
    # rate, comparable to the paper's 1e-4..1e-2 range.
    assert min(rates) < 0.02
    # The optimum is interior or at least not at the Bloom-starved extreme.
    assert rates.index(min(rates)) < len(rates) - 1
