"""§5.2 layout ablation: whole-device circular log vs per-partition SSD writes.

The paper argues that on an SSD, writing each super table's incarnations into
its own statically assigned region interleaves writes from different regions
and defeats the FTL's sequential-write fast path, so BufferHash instead
treats the whole SSD as one circular log shared by every super table.  This
bench measures both layouts on the Intel-like SSD under the same insert
stream.
"""

from __future__ import annotations

from benchmarks.common import print_table, standard_config
from repro.core import BufferHash
from repro.core.storage import PartitionedDeviceStore
from repro.flashsim import SSD, SimulationClock

NUM_INSERTS = 20_000


def _run(layout: str):
    clock = SimulationClock()
    ssd = SSD(clock=clock)
    config = standard_config()
    store = None
    if layout == "per-partition":
        store = PartitionedDeviceStore(
            ssd,
            num_partitions=config.num_super_tables,
            pages_per_incarnation=config.pages_per_incarnation(ssd.geometry.page_size) * 2,
        )
    bufferhash = BufferHash(config, device=ssd, clock=clock, store=store)
    total_latency = 0.0
    worst = 0.0
    for i in range(NUM_INSERTS):
        result = bufferhash.insert(b"layout-key-%d" % i, b"v")
        total_latency += result.latency_ms
        worst = max(worst, result.latency_ms)
    return {
        "mean_insert_ms": total_latency / NUM_INSERTS,
        "worst_insert_ms": worst,
        "gc_stalls": ssd.gc_stall_count,
        "flushes": bufferhash.total_flushes,
    }


def run_layout_ablation():
    return {
        "whole-device log": _run("whole-device"),
        "per-partition writes": _run("per-partition"),
    }


def test_ablation_ssd_layout(benchmark):
    results = benchmark.pedantic(run_layout_ablation, rounds=1, iterations=1)

    print_table(
        "Ablation (§5.2): SSD layout for incarnation writes",
        ["layout", "insert mean (ms)", "insert worst (ms)", "GC stalls", "flushes"],
        [
            (name, data["mean_insert_ms"], data["worst_insert_ms"], data["gc_stalls"], data["flushes"])
            for name, data in results.items()
        ],
    )

    whole = results["whole-device log"]
    partitioned = results["per-partition writes"]
    # The single circular log keeps inserts meaningfully cheaper on average.
    assert whole["mean_insert_ms"] * 1.3 < partitioned["mean_insert_ms"]
    # Both layouts perform the same number of buffer flushes; only the write
    # pattern (and therefore device behaviour) differs.
    assert whole["flushes"] == partitioned["flushes"]
