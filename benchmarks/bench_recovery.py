"""Crash recovery: hard-kill a durable CLAM mid-workload, reopen, lose nothing.

The durability contract (``repro.core.recovery``): a file-backed CLAM that
loses power at an *arbitrary* I/O boundary — mid incarnation write, mid block
erase, mid checkpoint — must reopen with every acknowledged write intact.
Acknowledged means the incarnation flush containing the write completed;
DRAM-buffered writes may be lost and the reopen reports that honestly.

This benchmark exercises the contract three ways (``BENCH_recovery.json``):

* **crash matrix** — the deterministic workload is hard-killed at randomized
  I/O counts (the device-level fault injector tears the in-flight page or
  poisons the in-flight erase block, exactly like a power cut).  After each
  kill the file is reopened and every acknowledged key is read back;
  ``acked_keys_lost`` must be exactly 0 across all cuts.
* **cold vs checkpoint recovery** — the same crash recovered twice: once by
  replaying the whole incarnation log (cold) and once from the latest
  checkpoint plus the log suffix written after it.  The checkpoint restores
  Bloom filters without touching data pages, so its simulated recovery I/O
  must be strictly cheaper.
* **cluster reopen-and-rejoin** — a replicated cluster on persistent shards
  power-cuts one shard mid-traffic, reopens it in place (no re-replication
  of its key range) and replays only the hinted-handoff keys it missed;
  zero keys may be lost cluster-wide.
"""

from __future__ import annotations

import argparse
import pathlib
import random
import tempfile
import time

from benchmarks.common import (
    add_telemetry_arg,
    dump_telemetry,
    print_table,
    write_bench_json,
)
from repro.core import CLAMConfig, DurableCLAM, PowerLossError
from repro.core.errors import DeviceFailedError
from repro.core.incarnation import iter_page_entries
from repro.flashsim.device import DeviceGeometry
from repro.service.cluster import ClusterService
from repro.service.recovery import RecoveryCoordinator

SEED = 1020
GEOM = DeviceGeometry(page_size=2048, pages_per_block=16, num_blocks=48)
CFG = CLAMConfig(
    num_super_tables=4,
    buffer_capacity_items=32,
    incarnations_per_table=8,
    checkpoint_interval_flushes=8,
)
COLD_CFG = CLAMConfig(
    num_super_tables=4,
    buffer_capacity_items=32,
    incarnations_per_table=8,
)
CLUSTER_CFG = CLAMConfig(
    num_super_tables=2,
    buffer_capacity_items=16,
    incarnations_per_table=16,
    checkpoint_interval_flushes=4,
    telemetry_enabled=True,
)
N_OPS = 1_500
NUM_CUTS = 12
CLUSTER_KEYS = 400


def key(i: int) -> bytes:
    return b"bench-key-%06d" % i


def value(i: int) -> bytes:
    return b"bench-val-%06d" % i


def run_workload(path, crash_at=None, config=CFG, n_ops=None):
    """Deterministic insert/lookup/delete mix; returns ``(clam, error)``."""
    n_ops = N_OPS if n_ops is None else n_ops
    clam = DurableCLAM(path, config=config, geometry=GEOM)
    if crash_at is not None:
        clam.persistent_device.faults.crash_after_n_ios(crash_at)
    error = None
    try:
        for i in range(n_ops):
            clam.insert(key(i), value(i))
            if i % 13 == 0:
                clam.lookup(key(i // 2))
            if i and i % 29 == 0:
                clam.delete(key(i - 3))
        clam.close()
    except (PowerLossError, DeviceFailedError) as err:
        error = err
    return clam, error


def acknowledged_items(clam):
    """Oracle: items of every incarnation the crashed CLAM still lists.

    Handles are registered in DRAM only after their streaming write
    returned, so they enumerate exactly the acknowledged (durable) state.
    ``peek_page`` reads the media image without the dead device's fault gate.
    """
    device = clam.persistent_device
    acked = {}
    for table in clam.bufferhash.tables:
        deleted = set(table.delete_list_snapshot())
        for handle in table.incarnation_handles:
            for offset in range(handle.num_pages):
                image = device.peek_page(handle.address + offset)
                assert image is not None, "acknowledged page damaged on media"
                for k, v in iter_page_entries(image):
                    if k not in deleted:
                        acked[k] = v
    return acked


def total_io_units(workdir, config=CFG) -> int:
    """I/O units the uncrashed workload performs, via an unreachable cut."""
    sentinel = 10**9
    clam = DurableCLAM(workdir / "dry.clam", config=config, geometry=GEOM)
    clam.persistent_device.faults.crash_after_n_ios(sentinel)
    injector = clam.persistent_device.faults
    for i in range(N_OPS):
        clam.insert(key(i), value(i))
        if i % 13 == 0:
            clam.lookup(key(i // 2))
        if i and i % 29 == 0:
            clam.delete(key(i - 3))
    clam.close()
    (workdir / "dry.clam").unlink()
    return sentinel - injector._power_countdown


def run_crash_matrix(workdir):
    """Hard-kill at NUM_CUTS randomized I/O counts; zero acknowledged loss."""
    total = total_io_units(workdir)
    rng = random.Random(SEED)
    cuts = sorted(rng.sample(range(1, total), NUM_CUTS))
    path = workdir / "matrix.clam"
    modes = {}
    acked_verified = 0
    lost = 0
    torn_discarded = 0
    erase_blocks_repaired = 0
    recovery_io_ms = []
    recovery_wall_s = []
    for cut in cuts:
        if path.exists():
            path.unlink()
        crashed, error = run_workload(path, crash_at=cut)
        assert error is not None, f"cut at {cut} never fired (total {total})"
        mode = crashed.persistent_device.faults.mode.name
        modes[mode] = modes.get(mode, 0) + 1
        acked = acknowledged_items(crashed)
        crashed.close()

        started = time.perf_counter()
        with DurableCLAM(path, geometry=GEOM) as reopened:
            recovery_wall_s.append(time.perf_counter() - started)
            report = reopened.recovery_report
            recovery_io_ms.append(report.recovery_io_ms)
            torn_discarded += report.torn_pages_discarded
            erase_blocks_repaired += report.interrupted_erase_blocks
            for k, v in acked.items():
                result = reopened.lookup(k)
                acked_verified += 1
                if not result.found or result.value != v:
                    lost += 1
    path.unlink()
    assert lost == 0, f"{lost} acknowledged writes lost across {len(cuts)} cuts"
    return {
        "total_io_units": total,
        "cuts": cuts,
        "cut_modes": modes,
        "acked_keys_verified": acked_verified,
        "acked_keys_lost": lost,
        "torn_pages_discarded": torn_discarded,
        "interrupted_erase_blocks_repaired": erase_blocks_repaired,
        "mean_recovery_io_ms": sum(recovery_io_ms) / len(recovery_io_ms),
        "max_recovery_io_ms": max(recovery_io_ms),
        "mean_recovery_wall_s": sum(recovery_wall_s) / len(recovery_wall_s),
    }


def run_cold_vs_checkpoint(workdir):
    """The same late crash recovered cold and from checkpoint + log suffix."""
    outcomes = {}
    for label, config in (("checkpoint", CFG), ("cold", COLD_CFG)):
        total = total_io_units(workdir, config=config)
        path = workdir / f"{label}.clam"
        crashed, error = run_workload(path, crash_at=total * 4 // 5, config=config)
        assert error is not None
        crashed.close()
        started = time.perf_counter()
        with DurableCLAM(path, geometry=GEOM) as reopened:
            wall = time.perf_counter() - started
            report = reopened.recovery_report
        path.unlink()
        outcomes[label] = {
            "recovery_io_ms": report.recovery_io_ms,
            "recovery_wall_s": wall,
            "checkpoint_seq": report.checkpoint_seq,
            "incarnations_from_checkpoint": report.incarnations_from_checkpoint,
            "log_records_replayed": report.log_records_replayed,
            "entries_rebuilt": report.entries_rebuilt,
            "pages_scanned": report.pages_scanned,
        }
    assert outcomes["cold"]["checkpoint_seq"] is None
    assert outcomes["checkpoint"]["incarnations_from_checkpoint"] > 0
    assert outcomes["checkpoint"]["recovery_io_ms"] < outcomes["cold"]["recovery_io_ms"]
    outcomes["io_speedup"] = (
        outcomes["cold"]["recovery_io_ms"] / outcomes["checkpoint"]["recovery_io_ms"]
    )
    return outcomes


def run_cluster_reopen(workdir):
    """Power-cut one persistent shard mid-traffic; reopen and rejoin in place."""
    data_dir = workdir / "cluster"
    with ClusterService(
        num_shards=3,
        config=CLUSTER_CFG,
        storage="persistent",
        data_dir=str(data_dir),
        replication_factor=2,
    ) as cluster:
        for i in range(CLUSTER_KEYS):
            cluster.insert(key(i), value(i))
        victim = cluster.shard_for(key(0))
        cluster.fail_shard(victim, mode="power-cut", after_n_ios=9)
        written = CLUSTER_KEYS
        for i in range(CLUSTER_KEYS, CLUSTER_KEYS * 3):
            cluster.insert(key(i), value(i))
            written = i + 1
            if victim in cluster.down_shard_ids:
                break
        assert victim in cluster.down_shard_ids, "power cut never tripped the detector"
        for i in range(written, written + 80):  # hints accumulate while down
            cluster.insert(key(i), value(i))
        written += 80

        reports = RecoveryCoordinator(cluster).reopen_and_rejoin()
        report = reports[victim]
        lost = sum(1 for i in range(written) if cluster.get(key(i)) != value(i))
        assert lost == 0, f"{lost} keys lost cluster-wide after reopen"
        kinds = [event.kind for event in cluster.events]
        expected = (
            "failure_injected",
            "crash_recovery_started",
            "crash_recovery_completed",
            "reopen_rejoin",
        )
        for kind in expected:
            assert kind in kinds, (kind, kinds)
        outcome = {
            "victim": victim,
            "keys_written": written,
            "keys_lost": lost,
            "clean_shutdown": report.clean_shutdown,
            "log_records_replayed": report.log_records_replayed,
            "entries_rebuilt": report.entries_rebuilt,
            "recovery_io_ms": report.recovery_io_ms,
            "hinted_handoffs_replayed": cluster.hinted_handoffs,
        }
        snapshot = cluster.telemetry_snapshot(include_buckets=False)
    return outcome, snapshot


def print_outcomes(matrix, cold_vs_ckpt, cluster_outcome) -> None:
    print_table(
        f"Crash matrix: {len(matrix['cuts'])} randomized power cuts over "
        f"{matrix['total_io_units']} I/O units",
        ["cut modes", "acked verified", "acked lost", "torn pages", "mean recovery ms"],
        [
            (
                ", ".join(f"{k}:{v}" for k, v in sorted(matrix["cut_modes"].items())),
                matrix["acked_keys_verified"],
                matrix["acked_keys_lost"],
                matrix["torn_pages_discarded"],
                round(matrix["mean_recovery_io_ms"], 3),
            )
        ],
    )
    rows = [
        (
            label,
            round(cold_vs_ckpt[label]["recovery_io_ms"], 3),
            cold_vs_ckpt[label]["incarnations_from_checkpoint"],
            cold_vs_ckpt[label]["log_records_replayed"],
            cold_vs_ckpt[label]["entries_rebuilt"],
        )
        for label in ("cold", "checkpoint")
    ]
    print_table(
        f"Cold vs checkpoint+suffix recovery (I/O speedup "
        f"{cold_vs_ckpt['io_speedup']:.2f}x)",
        ["path", "recovery I/O ms", "incarnations from ckpt", "records", "entries rebuilt"],
        rows,
    )
    print_table(
        f"Cluster reopen-and-rejoin ({cluster_outcome['victim']} power-cut)",
        ["keys written", "keys lost", "records replayed", "hints replayed"],
        [
            (
                cluster_outcome["keys_written"],
                cluster_outcome["keys_lost"],
                cluster_outcome["log_records_replayed"],
                cluster_outcome["hinted_handoffs_replayed"],
            )
        ],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload for CI smoke runs"
    )
    add_telemetry_arg(parser)
    args = parser.parse_args()
    global N_OPS, NUM_CUTS, CLUSTER_KEYS
    if args.quick:
        N_OPS = 500
        NUM_CUTS = 4
        CLUSTER_KEYS = 200

    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as tmp:
        workdir = pathlib.Path(tmp)
        matrix = run_crash_matrix(workdir)
        cold_vs_ckpt = run_cold_vs_checkpoint(workdir)
        cluster_outcome, snapshot = run_cluster_reopen(workdir)
    elapsed = time.perf_counter() - started

    print_outcomes(matrix, cold_vs_ckpt, cluster_outcome)
    path = write_bench_json(
        "recovery",
        {
            "spec": {
                "seed": SEED,
                "n_ops": N_OPS,
                "num_cuts": NUM_CUTS,
                "cluster_keys": CLUSTER_KEYS,
                "page_size": GEOM.page_size,
                "pages_per_block": GEOM.pages_per_block,
                "num_blocks": GEOM.num_blocks,
                "checkpoint_interval_flushes": CFG.checkpoint_interval_flushes,
            },
            "crash_matrix": matrix,
            "cold_vs_checkpoint": cold_vs_ckpt,
            "cluster_reopen": cluster_outcome,
        },
        elapsed_seconds=elapsed,
        telemetry=snapshot,
    )
    print(f"wrote {path}")
    dump_telemetry(args.telemetry_out, snapshot)


if __name__ == "__main__":
    main()
