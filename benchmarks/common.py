"""Shared helpers for the benchmark harness (table printing, JSON emission,
standard setups, telemetry dumps)."""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence

from repro.core import CLAM, CLAMConfig
from repro.service import ClusterService
from repro.telemetry import write_snapshot

#: Repository root (parent of this ``benchmarks`` package); machine-readable
#: benchmark results land here as ``BENCH_<name>.json``.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Version of the JSON envelope written by :func:`write_bench_json`.
BENCH_SCHEMA_VERSION = 1

#: When this module was imported — the default origin for a benchmark's
#: ``elapsed_seconds`` (importing ``benchmarks.common`` is the first thing
#: every benchmark CLI does, so import-to-write spans the whole run).
_IMPORT_MONOTONIC = time.monotonic()


def write_bench_json(
    name: str,
    payload: Dict,
    directory: Optional[Path] = None,
    elapsed_seconds: Optional[float] = None,
    telemetry: Optional[Dict] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    The machine-readable counterpart of :func:`print_table`: each benchmark
    dumps its headline numbers into a stable envelope (benchmark name, schema
    version, interpreter version, then the benchmark's own payload) at the
    repository root, so successive PRs accumulate a perf trajectory that
    tooling can diff without scraping stdout.

    The envelope records how long the run took — ``elapsed_seconds`` (pass
    the benchmark's own measurement, or let it default to time since this
    module was imported) — so BENCH files from different runs are comparable
    on cost, not just on results.  Two timestamps accompany it:
    ``written_at_unix`` (wall clock, meaningful across machines and reboots)
    and ``monotonic_time_s`` (the raw monotonic reading, ordering-only and
    valid within one boot).  All keys are additive: older files simply lack
    them.

    ``telemetry`` embeds a telemetry snapshot envelope (see
    :func:`repro.telemetry.build_snapshot`) under the additive ``telemetry``
    key — benchmarks pass a compact snapshot (``include_buckets=False``) so
    the per-shard percentile tables land in the committed BENCH files without
    the long bucket arrays (those go to ``--telemetry-out``).
    """
    root = Path(directory) if directory is not None else REPO_ROOT
    path = root / f"BENCH_{name}.json"
    now = time.monotonic()
    record = {
        "bench": name,
        "schema_version": BENCH_SCHEMA_VERSION,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "elapsed_seconds": round(
            elapsed_seconds if elapsed_seconds is not None else now - _IMPORT_MONOTONIC, 3
        ),
        "written_at_unix": round(time.time(), 3),
        "monotonic_time_s": round(now, 3),
    }
    record.update(payload)
    if telemetry is not None:
        record["telemetry"] = telemetry
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    """Add the ``--telemetry-out PATH`` flag every bench CLI shares."""
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        default=None,
        help=(
            "dump the full telemetry snapshot (registry with bucket arrays, "
            "per-shard percentile tables, event log, span trees when traced) "
            "as JSON to PATH, alongside the BENCH_*.json output"
        ),
    )


def dump_telemetry(path: Optional[str], snapshot: Optional[Dict]) -> Optional[Path]:
    """Honour ``--telemetry-out``: write ``snapshot`` to ``path`` if both given."""
    if path is None or snapshot is None:
        return None
    written = write_snapshot(path, snapshot)
    print(f"telemetry snapshot -> {written}")
    return written


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a fixed-width table resembling the paper's tables/figure series."""
    rows = [tuple(str(_format(cell)) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    print()


def _format(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.5f}"
    return str(value)


#: Standard scaled CLAM configuration used by the measured benchmarks.  It
#: keeps the paper's ratios (50 % buffer utilisation, 16 bytes/entry, 16 bits
#: of Bloom filter per entry, 8-16 incarnations per super table) at a size a
#: pure-Python run completes in seconds.
def standard_config(**overrides) -> CLAMConfig:
    defaults = dict(
        num_super_tables=16,
        buffer_capacity_items=128,
        incarnations_per_table=8,
    )
    defaults.update(overrides)
    return CLAMConfig.scaled(**defaults)


def standard_clam(storage: str = "intel-ssd", **config_overrides) -> CLAM:
    """A CLAM on the named storage profile with the standard scaled config."""
    return CLAM(standard_config(**config_overrides), storage=storage)


def standard_cluster(
    num_shards: int = 4, storage: str = "intel-ssd", **config_overrides
) -> ClusterService:
    """A sharded cluster whose shards use the standard scaled config."""
    return ClusterService(
        num_shards=num_shards,
        config=standard_config(**config_overrides),
        storage=storage,
    )


def standard_replicated_cluster(
    num_shards: int = 4,
    replication_factor: int = 2,
    storage: str = "intel-ssd",
    **config_overrides,
) -> ClusterService:
    """A replicated cluster (key tracking on) for the failover experiments."""
    return ClusterService(
        num_shards=num_shards,
        config=standard_config(**config_overrides),
        storage=storage,
        replication_factor=replication_factor,
        track_keys=True,
    )


def retention_window(config: CLAMConfig) -> int:
    """Recency window sized to the CLAM's retention so workload hits target
    keys that are mostly on flash (matching the paper's steady-state tests)."""
    incarnations = config.incarnations_per_table or 8
    return int(config.total_items_capacity(incarnations) * 0.8)
