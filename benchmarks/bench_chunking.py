"""Content-defined chunking throughput: reference vs optimized Rabin chunker.

The paper's evaluation pre-computes chunk boundaries and SHA-1 hashes (§8)
because content-defined chunking is the CPU bottleneck of a WAN optimizer.
PR 5 rewrote :class:`~repro.wanopt.chunking.RabinChunker` around a 256-entry
outgoing-byte removal table, min-size skip-ahead and (when numpy is
importable) a whole-buffer vectorised candidate scan — all bit-identical to
the original per-byte loop, which is kept verbatim as
``reference_boundaries`` and measured here as the "before" side.

Three measurements land in ``BENCH_chunking.json``:

* **MB/s per workload** — seeded payloads across average chunk sizes, each
  chunked by the reference loop, the table-driven scalar path and (when
  available) the vectorised path; the headline 64 KiB / 4 KiB-average
  workload must show >= 10x with the vectorised path;
* **skip-ahead savings** — the fraction of bytes the optimized scan never
  visits (``min_size - WINDOW`` dead bytes at the head of every chunk);
* **end-to-end objects/sec** — real payloads generated, chunked,
  SHA-1-fingerprinted and deduplicated through a
  :class:`~repro.wanopt.engine.CompressionEngine` on a CLAM index, i.e. the
  whole real-byte content pipeline rather than the chunker in isolation.

``--quick`` runs a reduced rep count, writes ``BENCH_chunking_quick.json``
(so the committed baseline is never clobbered) and enforces a **soft
regression ratchet**: if the committed ``BENCH_chunking.json`` contains a
result for the same workload shape (payload size, average size, seed, same
execution path), the fresh optimized-over-reference *speedup* must not fall
below 50 % of the committed one.  Ratcheting the speedup rather than the
absolute MB/s keeps the check machine-invariant — a slower CI runner scales
both sides equally, while a real regression in the optimized paths does not.
"""

from __future__ import annotations

import argparse
import json
import random
import time

from benchmarks.common import (
    REPO_ROOT,
    add_telemetry_arg,
    dump_telemetry,
    print_table,
    standard_clam,
    write_bench_json,
)
from benchmarks.ratchet import assert_fraction
from repro.telemetry import build_snapshot
from repro.wanopt.chunking import HAVE_NUMPY, RabinChunker
from repro.wanopt.engine import CompressionEngine
from repro.wanopt.traces import build_payload_objects

#: (payload_kib, average_size) workloads; the first is the headline.
WORKLOADS = [
    (64, 4096),
    (64, 1024),
    (64, 16384),
    (1024, 4096),
]

PAYLOAD_SEED = 11

#: Headline shape the >= 10x acceptance bar applies to.
HEADLINE = (64, 4096)

#: Ratchet floor: fresh optimized MB/s vs the committed JSON, same shape.
RATCHET_FRACTION = 0.5

#: Telemetry snapshot of the end-to-end CLAM, filled by
#: ``measure_end_to_end(telemetry=True)`` for ``--telemetry-out``.
_END_TO_END_SNAPSHOT = None

END_TO_END = dict(num_objects=12, object_size=96 * 1024, redundancy=0.5, seed=23)


def _mb_per_s(nbytes: int, seconds: float) -> float:
    return nbytes / 1e6 / seconds if seconds > 0 else float("inf")


def _best_rate(fn, nbytes: int, reps: int) -> float:
    """Best-of-N MB/s (the least noise-sensitive estimator)."""
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return _mb_per_s(nbytes, best)


def measure_workload(payload_kib: int, average: int, reps: int, reference_reps: int):
    data = random.Random(PAYLOAD_SEED).randbytes(payload_kib * 1024)
    chunker = RabinChunker(average_size=average)
    boundaries = chunker.boundaries(data)
    reference = chunker.reference_boundaries(data)
    assert boundaries == reference, "optimized boundaries diverged from the reference"

    skip = chunker.skip_per_chunk
    skipped = sum(min(skip, boundary.length) for boundary in boundaries)
    row = {
        "payload_kib": payload_kib,
        "average_size": average,
        "seed": PAYLOAD_SEED,
        "chunks": len(boundaries),
        "skip_ahead_byte_savings": skipped / len(data) if data else 0.0,
        "reference_mb_per_s": _best_rate(
            lambda: chunker.reference_boundaries(data), len(data), reference_reps
        ),
    }
    scalar = RabinChunker(average_size=average, vectorized=False)
    row["scalar_mb_per_s"] = _best_rate(lambda: scalar.boundaries(data), len(data), reps)
    row["scalar_speedup"] = row["scalar_mb_per_s"] / row["reference_mb_per_s"]
    if HAVE_NUMPY:
        vectorized = RabinChunker(average_size=average, vectorized=True)
        vectorized.boundaries(data)  # warm the power tables and scratch
        row["vectorized_mb_per_s"] = _best_rate(
            lambda: vectorized.boundaries(data), len(data), reps
        )
        row["vectorized_speedup"] = row["vectorized_mb_per_s"] / row["reference_mb_per_s"]
    row["optimized_mb_per_s"] = row.get("vectorized_mb_per_s", row["scalar_mb_per_s"])
    row["optimized_speedup"] = row["optimized_mb_per_s"] / row["reference_mb_per_s"]
    return row


def measure_end_to_end(telemetry: bool = False):
    """Generate, chunk, fingerprint and deduplicate real objects on a CLAM."""
    started = time.perf_counter()
    objects = build_payload_objects(**END_TO_END)
    build_seconds = time.perf_counter() - started
    clam = standard_clam(telemetry_enabled=telemetry)
    engine = CompressionEngine(index=clam)
    started = time.perf_counter()
    for obj in objects:
        engine.process_object_batched(obj)
    engine_seconds = time.perf_counter() - started
    total_bytes = sum(obj.size_bytes for obj in objects)
    total_seconds = build_seconds + engine_seconds
    if telemetry:
        global _END_TO_END_SNAPSHOT
        _END_TO_END_SNAPSHOT = build_snapshot(per_shard={"clam": clam.telemetry})
    return {
        **END_TO_END,
        "total_bytes": total_bytes,
        "chunk_and_fingerprint_seconds": round(build_seconds, 4),
        "engine_seconds": round(engine_seconds, 4),
        "objects_per_second": len(objects) / total_seconds,
        "mb_per_second": _mb_per_s(total_bytes, total_seconds),
        "dedup_hit_rate": (
            sum(r.chunks_matched for r in engine.results)
            / max(1, sum(r.chunks_total for r in engine.results))
        ),
    }


def apply_ratchet(rows) -> list:
    """Compare fresh optimized-over-reference speedups against the committed JSON.

    Only rows with the same workload shape *and* the same execution path
    (vectorised or scalar) are comparable; a missing or foreign-shaped
    committed file ratchets nothing.  The speedup ratio is machine-invariant
    (both sides run on the same box in the same process), so a slower CI
    runner cannot trip it — only a genuine regression in the optimized
    paths relative to the frozen reference can.  The floor itself is
    enforced by the shared :func:`benchmarks.ratchet.assert_fraction`
    primitive.
    """
    committed_path = REPO_ROOT / "BENCH_chunking.json"
    if not committed_path.exists():
        return []
    committed = json.loads(committed_path.read_text())
    by_shape = {
        (row["payload_kib"], row["average_size"], row["seed"], "vectorized_mb_per_s" in row): row
        for row in committed.get("workloads", [])
    }
    checked = []
    for row in rows:
        shape = (row["payload_kib"], row["average_size"], row["seed"], HAVE_NUMPY)
        old = by_shape.get(shape)
        if old is None:
            continue
        check = assert_fraction(
            f"chunking speedup on {row['payload_kib']} KiB / avg {row['average_size']}",
            fresh=row["optimized_speedup"],
            committed=old["optimized_speedup"],
            floor=RATCHET_FRACTION,
        )
        checked.append(
            {
                "payload_kib": row["payload_kib"],
                "average_size": row["average_size"],
                "committed_speedup": old["optimized_speedup"],
                "fresh_speedup": row["optimized_speedup"],
                "floor_speedup": check["floor"],
            }
        )
    return checked


def check_invariants(payload) -> None:
    headline = next(
        row
        for row in payload["workloads"]
        if (row["payload_kib"], row["average_size"]) == HEADLINE
    )
    if HAVE_NUMPY:
        assert headline["optimized_speedup"] >= 10.0, headline
    # The pure-Python table-driven path must beat the reference everywhere.
    for row in payload["workloads"]:
        assert row["scalar_speedup"] > 1.2, row
    assert payload["end_to_end"]["dedup_hit_rate"] > 0.0, payload["end_to_end"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="fewer reps + regression ratchet for CI"
    )
    add_telemetry_arg(parser)
    args = parser.parse_args()
    global WORKLOADS, END_TO_END
    reps, reference_reps = (3, 1) if args.quick else (7, 3)
    if args.quick:
        WORKLOADS = [w for w in WORKLOADS if w[0] <= 64]
        END_TO_END = dict(END_TO_END, num_objects=6, object_size=64 * 1024)

    started = time.perf_counter()
    rows = [measure_workload(*workload, reps, reference_reps) for workload in WORKLOADS]
    end_to_end = measure_end_to_end(telemetry=args.telemetry_out is not None)
    ratchet = apply_ratchet(rows) if args.quick else []

    print_table(
        "Rabin chunking throughput (bit-identical boundaries, seeded payloads)",
        ["payload", "avg", "chunks", "ref MB/s", "scalar MB/s", "opt MB/s", "speedup", "skipped"],
        [
            (
                f"{row['payload_kib']} KiB",
                row["average_size"],
                row["chunks"],
                row["reference_mb_per_s"],
                row["scalar_mb_per_s"],
                row["optimized_mb_per_s"],
                f"{row['optimized_speedup']:.1f}x",
                f"{row['skip_ahead_byte_savings']:.1%}",
            )
            for row in rows
        ],
    )
    print(
        f"end to end (chunk + SHA-1 + dedup on CLAM): "
        f"{end_to_end['objects_per_second']:.1f} objects/s, "
        f"{end_to_end['mb_per_second']:.1f} MB/s, "
        f"hit rate {end_to_end['dedup_hit_rate']:.3f}"
    )
    if ratchet:
        print(f"ratchet: {len(ratchet)} workload(s) checked against the committed JSON")
    if not HAVE_NUMPY:
        print("numpy unavailable: vectorised path skipped (scalar path measured)")

    payload = {
        "spec": {
            "workloads": [list(w) for w in WORKLOADS],
            "headline": list(HEADLINE),
            "payload_seed": PAYLOAD_SEED,
            "numpy_available": HAVE_NUMPY,
            "quick": args.quick,
        },
        "workloads": rows,
        "end_to_end": end_to_end,
        "ratchet": ratchet,
    }
    check_invariants(payload)
    # Quick runs write under a distinct name: BENCH_chunking.json is the
    # committed ratchet baseline, and the CI smoke (or a developer running
    # it locally) must not clobber the full-run numbers with reduced
    # quick-mode data.
    name = "chunking_quick" if args.quick else "chunking"
    path = write_bench_json(name, payload, elapsed_seconds=time.perf_counter() - started)
    print(f"wrote {path}")
    dump_telemetry(args.telemetry_out, _END_TO_END_SNAPSHOT)


if __name__ == "__main__":
    main()
