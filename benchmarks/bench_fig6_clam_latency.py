"""Figure 6: lookup and insert latency CDFs of the CLAM on different media.

Series: BufferHash on the Intel-like SSD, on the Transcend-like SSD, and on a
magnetic disk.  Workload: the paper's default lookup-then-insert stream with
~40 % lookup success rate, run to steady state (every super table has cycled
through several incarnations).

Paper reference points:
* BH+SSD(Intel): ~62 % of lookups < 0.02 ms (served from DRAM), 99.8 % <
  0.176 ms, average insert 0.006 ms.
* BH+SSD(Transcend): 90 % of lookups < 0.6 ms, max ~1 ms, average insert 0.007 ms.
* BH+Disk: lookups 0.1-12 ms (an order of magnitude worse than the SSDs).
"""

from __future__ import annotations

from benchmarks.common import print_table, retention_window, standard_config
from repro.core import CLAM
from repro.workloads import (
    WorkloadRunner,
    WorkloadSpec,
    build_lookup_then_insert_workload,
)
from repro.workloads.metrics import fraction_at_or_below

NUM_KEYS = 10_000
STORAGES = ["intel-ssd", "transcend-ssd", "disk"]


def run_figure6():
    config = standard_config()
    spec = WorkloadSpec(
        num_keys=NUM_KEYS,
        target_lsr=0.4,
        recency_window=retention_window(config),
        seed=23,
    )
    operations = build_lookup_then_insert_workload(spec)
    results = {}
    for storage in STORAGES:
        clam = CLAM(config, storage=storage)
        report = WorkloadRunner(clam).run(operations)
        results[storage] = report
    return results


def test_fig6_clam_latency_cdfs(benchmark):
    results = benchmark.pedantic(run_figure6, rounds=1, iterations=1)

    rows = []
    for storage in STORAGES:
        report = results[storage]
        lookups = report.lookup_summary()
        inserts = report.insert_summary()
        rows.append(
            (
                "BH+" + storage,
                lookups.mean_ms,
                lookups.p90_ms,
                lookups.p99_ms,
                lookups.max_ms,
                inserts.mean_ms,
                inserts.max_ms,
                fraction_at_or_below(report.lookup_latencies_ms, 0.02),
            )
        )
    print_table(
        "Figure 6: CLAM latency by storage medium (40% LSR)",
        [
            "series",
            "lookup mean",
            "lookup p90",
            "lookup p99",
            "lookup max",
            "insert mean",
            "insert max",
            "frac lookups <=0.02ms",
        ],
        rows,
    )

    intel = results["intel-ssd"]
    transcend = results["transcend-ssd"]
    disk = results["disk"]

    # Inserts are buffered: sub-0.05 ms on both SSDs (paper: ~0.006-0.007 ms).
    assert intel.mean_insert_latency_ms < 0.05
    assert transcend.mean_insert_latency_ms < 0.05
    # Intel lookups land in the paper's ~0.06 ms regime; Transcend is slower
    # but still sub-millisecond on average.
    assert intel.mean_lookup_latency_ms < 0.15
    assert transcend.mean_lookup_latency_ms < 1.0
    assert intel.mean_lookup_latency_ms < transcend.mean_lookup_latency_ms
    # A large fraction of lookups are served from DRAM (paper: ~62 %).
    assert fraction_at_or_below(intel.lookup_latencies_ms, 0.02) > 0.45
    # BufferHash on disk is an order of magnitude worse than on the Intel SSD.
    assert disk.mean_lookup_latency_ms > 5 * intel.mean_lookup_latency_ms
