"""Figure 3: expected lookup I/O overhead vs total Bloom-filter size.

The paper plots the §6.2 analytical expectation for 32 GB and 64 GB of flash
with 32-byte effective entries: overhead falls steeply as Bloom memory grows
and flattens past ~1 GB.  This bench regenerates both series.
"""

from __future__ import annotations


from benchmarks.common import print_table
from repro.analysis.cost_model import INTEL_SSD_COSTS, sweep_lookup_overhead

GB = 1024**3
MB = 1024**2

BLOOM_SIZES_MB = [10, 50, 100, 250, 500, 1000, 2000, 5000, 10_000]


def run_figure3():
    series = {}
    for flash_gb in (32, 64):
        rows = sweep_lookup_overhead(
            INTEL_SSD_COSTS,
            flash_bytes=flash_gb * GB,
            bloom_sizes_bytes=[size * MB for size in BLOOM_SIZES_MB],
            entry_size_bytes=32.0,
        )
        series[flash_gb] = rows
    return series


def test_fig3_bloom_filter_sizing(benchmark):
    series = benchmark.pedantic(run_figure3, rounds=1, iterations=1)

    rows = []
    for size_mb, row32, row64 in zip(BLOOM_SIZES_MB, series[32], series[64]):
        rows.append(
            (size_mb, row32["expected_io_overhead_ms"], row64["expected_io_overhead_ms"])
        )
    print_table(
        "Figure 3: expected I/O overhead vs Bloom filter size",
        ["bloom size (MB)", "F=32GB overhead (ms)", "F=64GB overhead (ms)"],
        rows,
    )

    overheads_32 = [row["expected_io_overhead_ms"] for row in series[32]]
    overheads_64 = [row["expected_io_overhead_ms"] for row in series[64]]
    # Overhead decreases monotonically with Bloom memory (both curves).
    assert all(a >= b for a, b in zip(overheads_32, overheads_32[1:]))
    assert all(a >= b for a, b in zip(overheads_64, overheads_64[1:]))
    # 64 GB of flash needs more Bloom memory than 32 GB for the same overhead.
    assert all(o64 >= o32 for o32, o64 in zip(overheads_32, overheads_64))
    # The paper's worked example: ~1 GB of filters keeps overhead below 1 ms at 32 GB.
    at_1gb = dict(zip(BLOOM_SIZES_MB, overheads_32))[1000]
    assert at_1gb < 1.0
    # Diminishing returns: going from 1 GB to 10 GB buys much less than 100 MB to 1 GB.
    improvement_early = dict(zip(BLOOM_SIZES_MB, overheads_32))[100] - at_1gb
    improvement_late = at_1gb - dict(zip(BLOOM_SIZES_MB, overheads_32))[10_000]
    assert improvement_early > improvement_late
