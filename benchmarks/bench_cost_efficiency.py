"""§1 / §7.5: hash operations per second per dollar.

The paper's economic argument: a ~$400 CLAM delivers ~42 lookups/s/$ and
~420 inserts/s/$, versus ~2.5 ops/s/$ for a RamSan DRAM-SSD and a fraction
of an op/s/$ for disk-based Berkeley-DB.  This bench measures the CLAM's
latencies on the simulator, folds in the paper's device prices and prints
the comparison.
"""

from __future__ import annotations

from benchmarks.common import print_table, retention_window, standard_config
from repro.analysis import PAPER_PRICING, cost_efficiency_table
from repro.analysis.cost_efficiency import ops_per_second_from_latency
from repro.baselines import ExternalHashIndex
from repro.core import CLAM
from repro.flashsim import MagneticDisk, SimulationClock
from repro.workloads import WorkloadRunner, WorkloadSpec, build_lookup_then_insert_workload

NUM_KEYS = 8_000


def run_cost_efficiency():
    config = standard_config()
    spec = WorkloadSpec(
        num_keys=NUM_KEYS,
        target_lsr=0.4,
        recency_window=retention_window(config),
        seed=61,
    )
    operations = build_lookup_then_insert_workload(spec)

    clam = CLAM(config, storage="intel-ssd")
    clam_report = WorkloadRunner(clam).run(operations)

    bdb = ExternalHashIndex(MagneticDisk(clock=SimulationClock()), cache_pages=32)
    bdb_report = WorkloadRunner(bdb).run(operations, max_operations=4_000)

    entries = cost_efficiency_table(
        measured_latencies_ms={
            "clam-intel": clam_report.mean_lookup_latency_ms,
            "disk-bdb": bdb_report.mean_lookup_latency_ms,
        },
        fixed_ops_per_second={"ramsan-dram-ssd": 300_000, "violin-dram": 200_000},
    )
    return {
        "entries": entries,
        "clam_lookup_ms": clam_report.mean_lookup_latency_ms,
        "clam_insert_ms": clam_report.mean_insert_latency_ms,
    }


def test_cost_efficiency_comparison(benchmark):
    results = benchmark.pedantic(run_cost_efficiency, rounds=1, iterations=1)
    entries = results["entries"]

    print_table(
        "Hash operations per second per dollar",
        ["platform", "ops/s", "device cost ($)", "ops/s/$"],
        [
            (entry.platform, entry.ops_per_second, entry.cost_dollars, entry.ops_per_second_per_dollar)
            for entry in entries
        ],
    )
    clam_cost = PAPER_PRICING["clam-intel"].cost_dollars
    lookups_per_dollar = ops_per_second_from_latency(results["clam_lookup_ms"]) / clam_cost
    inserts_per_dollar = ops_per_second_from_latency(results["clam_insert_ms"]) / clam_cost
    print(
        "CLAM lookups/s/$ = %.1f, inserts/s/$ = %.1f (paper: 42 and 420)"
        % (lookups_per_dollar, inserts_per_dollar)
    )

    by_platform = {entry.platform: entry for entry in entries}
    clam = by_platform[PAPER_PRICING["clam-intel"].name]
    ramsan = by_platform[PAPER_PRICING["ramsan-dram-ssd"].name]
    disk = by_platform[PAPER_PRICING["disk-bdb"].name]

    # The CLAM is 1-2 orders of magnitude better than the DRAM-SSD appliance.
    assert clam.ops_per_second_per_dollar > 10 * ramsan.ops_per_second_per_dollar
    # And far better than disk-based BDB despite the disk being cheap.
    assert clam.ops_per_second_per_dollar > 5 * disk.ops_per_second_per_dollar
    # Absolute figures of merit are in the paper's ballpark (tens of
    # lookups/s/$, hundreds of inserts/s/$).
    assert lookups_per_dollar > 10
    assert inserts_per_dollar > 100
