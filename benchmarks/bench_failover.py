"""Failover: kill a shard mid-workload, measure availability and recovery.

Beyond the paper: the replicated service layer (``repro.service``) places
every key on a preference list of N shards, fails over reads and writes to
surviving replicas, and re-replicates a dead shard's key ranges along the
router's exact handoff arcs (:mod:`repro.service.recovery`).  This benchmark
runs the same deterministic closed-loop Zipf workload twice — once without
replication (RF=1) and once with RF=2 — and, mid-run, crash-stops one shard
via the device-level fault injector, then schedules a recovery pass a few
requests later.

Headline numbers (``BENCH_failover.json``):

* **availability** — fraction of client requests that completed during the
  run; RF=2 must stay at 1.0 (requests fail over), RF=1 dips while the dead
  shard is still on the ring.
* **lost keys** — seeded keys unreadable after recovery completes.  With
  RF>=2 this must be exactly 0; with RF=1 the dead shard's key range is
  gone, which is the motivation for replication.
* **recovery time** — simulated duration and total shard-side work of the
  re-replication pass, plus how many keys/copies it moved.
* **post-recovery imbalance** — operation imbalance across the surviving
  shards after the dead shard's arcs were handed off.
"""

from __future__ import annotations

import argparse

from benchmarks.common import (
    add_telemetry_arg,
    dump_telemetry,
    print_table,
    standard_replicated_cluster,
    write_bench_json,
)
from repro.service import FailureEvent, TrafficSimulator, TrafficSpec
from repro.workloads.keygen import fingerprint_for

NUM_SHARDS = 4
VICTIM = "shard-1"
WARMUP_KEYS = 800
FAIL_AT_REQUEST = 80
RECOVER_AT_REQUEST = 160

SPEC = TrafficSpec(
    num_clients=8,
    requests_per_client=40,
    batch_size=8,
    lookup_fraction=0.6,
    update_fraction=0.1,
    key_space=3_000,
    zipf_skew=1.1,
    seed=47,
)


def run_failover(replication_factor: int):
    """One full kill-and-recover run.

    Returns ``(traffic report, outcome dict, telemetry snapshot)``.  The
    cluster runs with telemetry enabled and the availability accounting is
    read back from the metrics registry (``requests_completed`` /
    ``requests_failed`` counters) rather than from the traffic report's
    private tallies — the registry is the system of record this benchmark
    now audits.
    """
    cluster = standard_replicated_cluster(
        num_shards=NUM_SHARDS,
        replication_factor=replication_factor,
        telemetry_enabled=True,
    )
    simulator = TrafficSimulator(
        cluster,
        SPEC,
        schedule=[
            FailureEvent(at_request=FAIL_AT_REQUEST, action="fail", shard_id=VICTIM),
            FailureEvent(at_request=RECOVER_AT_REQUEST, action="recover"),
        ],
    )
    simulator.warmup(WARMUP_KEYS)
    seeded = [fingerprint_for(identifier) for identifier in range(WARMUP_KEYS)]
    report = simulator.run()

    lost = sum(1 for key in seeded if not cluster.lookup(key).found)
    recovery = report.recovery_reports[0] if report.recovery_reports else None

    # Availability from the telemetry plane, not the report: the simulator
    # bumps requests_completed / requests_failed on the cluster registry and
    # this benchmark audits those counters.
    registry = cluster.telemetry
    completed = int(registry.counter("requests_completed").value)
    failed = int(registry.counter("requests_failed").value)
    issued = completed + failed
    availability = completed / issued if issued else 1.0
    assert availability == report.availability, (availability, report.availability)

    outcome = {
        "replication_factor": replication_factor,
        "availability": availability,
        "requests_completed": completed,
        "requests_failed": failed,
        "throughput_ops_per_sec": report.throughput_ops_per_second,
        "seeded_keys": WARMUP_KEYS,
        "lost_keys": lost,
        "recovery_duration_ms": recovery.duration_ms if recovery else 0.0,
        "recovery_work_ms": recovery.work_ms if recovery else 0.0,
        "recovery_keys_affected": recovery.keys_affected if recovery else 0,
        "recovery_keys_re_replicated": recovery.keys_re_replicated if recovery else 0,
        "recovery_copies_written": recovery.copies_written if recovery else 0,
        "recovery_keys_lost": recovery.keys_lost if recovery else 0,
        "post_recovery_imbalance": cluster.stats.imbalance_factor(),
        "post_recovery_live_shards": list(cluster.live_shard_ids),
        "healed_shards": cluster.stats.health()["healed_shards"],
        "shards_never_failed": cluster.stats.health()["shards_never_failed"],
    }
    return report, outcome, cluster


def check_invariants(outcomes, snapshots=None) -> None:
    """The failure-tolerance contract this benchmark exists to enforce."""
    replicated = outcomes[2]
    unreplicated = outcomes[1]
    # RF=2: one shard death mid-workload loses nothing and masks the outage.
    assert replicated["lost_keys"] == 0, replicated
    assert replicated["recovery_keys_lost"] == 0, replicated
    assert replicated["availability"] == 1.0, replicated
    assert replicated["recovery_keys_re_replicated"] > 0, replicated
    # RF=1 is the cautionary tale: the dead shard's key range is gone.
    assert unreplicated["lost_keys"] > 0, unreplicated
    assert unreplicated["availability"] < 1.0, unreplicated
    if snapshots is None:
        return
    # The RF=2 event log must replay the drill in causal order: the schedule
    # fires, the fault is injected, the failure detector marks the shard
    # down, and only then does the recovery pass run.
    events = snapshots[2]["events"]
    kinds = [event["kind"] for event in events]
    for kind in ("schedule_fired", "failure_injected", "shard_down", "recovery"):
        assert kind in kinds, (kind, kinds)
    assert kinds.index("schedule_fired") < kinds.index("failure_injected"), kinds
    assert kinds.index("failure_injected") < kinds.index("shard_down"), kinds
    assert kinds.index("shard_down") < kinds.index("recovery"), kinds
    seqs = [event["seq"] for event in events]
    assert seqs == sorted(seqs), seqs


def emit_json(outcomes, telemetry=None) -> None:
    """Machine-readable counterpart of the stdout table (BENCH_failover.json)."""
    path = write_bench_json(
        "failover",
        {
            "spec": {
                "num_shards": NUM_SHARDS,
                "victim": VICTIM,
                "warmup_keys": WARMUP_KEYS,
                "fail_at_request": FAIL_AT_REQUEST,
                "recover_at_request": RECOVER_AT_REQUEST,
                "num_clients": SPEC.num_clients,
                "requests_per_client": SPEC.requests_per_client,
                "batch_size": SPEC.batch_size,
                "lookup_fraction": SPEC.lookup_fraction,
                "update_fraction": SPEC.update_fraction,
                "key_space": SPEC.key_space,
                "zipf_skew": SPEC.zipf_skew,
                "seed": SPEC.seed,
            },
            "runs": {str(rf): outcome for rf, outcome in outcomes.items()},
        },
        telemetry=telemetry,
    )
    print(f"wrote {path}")


def print_outcomes(outcomes) -> None:
    rows = []
    for rf in sorted(outcomes):
        outcome = outcomes[rf]
        rows.append(
            (
                rf,
                outcome["availability"],
                outcome["requests_failed"],
                outcome["lost_keys"],
                outcome["recovery_keys_re_replicated"],
                outcome["recovery_work_ms"],
                outcome["post_recovery_imbalance"],
            )
        )
    print_table(
        f"Failover: crash {VICTIM} at request {FAIL_AT_REQUEST}, "
        f"recover at {RECOVER_AT_REQUEST}",
        [
            "RF",
            "availability",
            "failed reqs",
            "lost keys",
            "keys re-replicated",
            "recovery work ms",
            "imbalance after",
        ],
        rows,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload for CI smoke runs"
    )
    add_telemetry_arg(parser)
    args = parser.parse_args()
    global SPEC, WARMUP_KEYS, FAIL_AT_REQUEST, RECOVER_AT_REQUEST
    if args.quick:
        WARMUP_KEYS = 300
        FAIL_AT_REQUEST = 30
        RECOVER_AT_REQUEST = 60
        SPEC = TrafficSpec(
            num_clients=4,
            requests_per_client=25,
            batch_size=8,
            lookup_fraction=0.6,
            update_fraction=0.1,
            key_space=1_500,
            zipf_skew=1.1,
            seed=47,
        )
    outcomes = {}
    clusters = {}
    for rf in (1, 2):
        _, outcomes[rf], clusters[rf] = run_failover(rf)
    print_outcomes(outcomes)
    # Committed BENCH file carries the compact RF=2 snapshot (no bucket
    # arrays); --telemetry-out gets the full-fidelity one.
    check_invariants(outcomes, {rf: c.telemetry_snapshot() for rf, c in clusters.items()})
    emit_json(outcomes, telemetry=clusters[2].telemetry_snapshot(include_buckets=False))
    dump_telemetry(args.telemetry_out, clusters[2].telemetry_snapshot())


if __name__ == "__main__":
    main()
