"""Figure 7: lookup and insert latency CDFs of the Berkeley-DB-style baseline.

Series: the external hash index on the Intel-like SSD and on a magnetic
disk, under the same 40 %-LSR lookup-then-insert workload as Figure 6.

Paper reference points:
* DB+Disk: average lookup 6.8 ms, average insert 7 ms, >40-60 % of
  operations above 5 ms (seek bound).
* DB+SSD(Intel): surprisingly also slow — average 4.6 / 4.8 ms — because the
  sustained small random writes keep the SSD garbage collecting.
"""

from __future__ import annotations

from benchmarks.common import print_table, retention_window, standard_config
from repro.baselines import ExternalHashIndex
from repro.flashsim import MagneticDisk, SSD, SimulationClock
from repro.workloads import (
    WorkloadRunner,
    WorkloadSpec,
    build_lookup_then_insert_workload,
)
from repro.workloads.metrics import fraction_at_or_below

NUM_KEYS = 6_000


def run_figure7():
    spec = WorkloadSpec(
        num_keys=NUM_KEYS,
        target_lsr=0.4,
        recency_window=retention_window(standard_config()),
        seed=23,
    )
    operations = build_lookup_then_insert_workload(spec)
    results = {}
    for name, device_factory in (
        ("DB+SSD(Intel)", lambda clock: SSD(clock=clock)),
        ("DB+Disk", lambda clock: MagneticDisk(clock=clock)),
    ):
        clock = SimulationClock()
        index = ExternalHashIndex(device_factory(clock), cache_pages=32)
        results[name] = WorkloadRunner(index).run(operations)
    return results


def test_fig7_bdb_latency_cdfs(benchmark):
    results = benchmark.pedantic(run_figure7, rounds=1, iterations=1)

    rows = []
    for name, report in results.items():
        lookups = report.lookup_summary()
        inserts = report.insert_summary()
        rows.append(
            (
                name,
                lookups.mean_ms,
                lookups.p90_ms,
                lookups.max_ms,
                inserts.mean_ms,
                inserts.max_ms,
                1.0 - fraction_at_or_below(report.lookup_latencies_ms, 5.0),
                1.0 - fraction_at_or_below(report.insert_latencies_ms, 5.0),
            )
        )
    print_table(
        "Figure 7: Berkeley-DB style index latency (40% LSR)",
        [
            "series",
            "lookup mean",
            "lookup p90",
            "lookup max",
            "insert mean",
            "insert max",
            "frac lookups >5ms",
            "frac inserts >5ms",
        ],
        rows,
    )

    ssd = results["DB+SSD(Intel)"]
    disk = results["DB+Disk"]
    # Disk-based BDB sits in the multi-millisecond seek regime.
    assert 3.0 < disk.mean_lookup_latency_ms < 15.0
    assert 3.0 < disk.mean_insert_latency_ms < 15.0
    # BDB on the SSD is *also* in the millisecond regime under sustained load —
    # the paper's counterintuitive result (§7.2.2).
    assert ssd.mean_insert_latency_ms > 1.0
    per_op_ssd = (
        sum(ssd.lookup_latencies_ms) + sum(ssd.insert_latencies_ms)
    ) / (len(ssd.lookup_latencies_ms) + len(ssd.insert_latencies_ms))
    assert per_op_ssd > 1.0
    # A substantial fraction of operations exceed 5 ms on both media.
    assert 1.0 - fraction_at_or_below(disk.lookup_latencies_ms, 5.0) > 0.3
    assert 1.0 - fraction_at_or_below(ssd.insert_latencies_ms, 5.0) > 0.2
