"""§7.3.1 ablation: contribution of buffering, Bloom filters and bit-slicing.

Three toggles on the Intel-SSD CLAM, each measured against the full design:

* **no buffering** — every insert becomes a small random flash write
  (paper: ~0.006 ms → ~4.8 ms under continuous insertions);
* **no Bloom filters** — lookups must probe incarnations directly
  (paper: flash I/O cost grows 10-30×);
* **no bit-slicing** — Bloom filters are kept per-incarnation and probed one
  by one (paper: ~20 % slower lookups when the workload is memory bound).
"""

from __future__ import annotations

from benchmarks.common import print_table, retention_window, standard_config
from repro.core import CLAM
from repro.workloads import WorkloadRunner, WorkloadSpec, build_lookup_then_insert_workload

NUM_KEYS = 8_000


def _run(config, target_lsr=0.4):
    clam = CLAM(config, storage="intel-ssd")
    spec = WorkloadSpec(
        num_keys=NUM_KEYS,
        target_lsr=target_lsr,
        recency_window=retention_window(config),
        seed=41,
    )
    report = WorkloadRunner(clam).run(build_lookup_then_insert_workload(spec))
    return report


def run_ablation():
    # The paper's configuration keeps 16 incarnations per super table; the
    # bit-slicing benefit is proportional to that incarnation count, so the
    # ablation uses the same depth (scaled buffers).
    base_config = standard_config(
        num_super_tables=8, buffer_capacity_items=64, incarnations_per_table=16
    )
    results = {
        "full design": _run(base_config),
        "no buffering": _run(base_config.with_overrides(use_buffering=False)),
        "no bloom filters": _run(base_config.with_overrides(use_bloom_filters=False)),
        "no bit-slicing": _run(base_config.with_overrides(use_bit_slicing=False)),
    }
    # Bit-slicing matters most when lookups are memory bound (low LSR).
    results["full design (0% LSR)"] = _run(base_config, target_lsr=0.0)
    results["no bit-slicing (0% LSR)"] = _run(
        base_config.with_overrides(use_bit_slicing=False), target_lsr=0.0
    )
    return results


def test_ablation_of_bufferhash_optimizations(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for name, report in results.items():
        rows.append(
            (
                name,
                report.mean_insert_latency_ms,
                report.mean_lookup_latency_ms,
                sum(report.lookup_flash_reads) / max(1, len(report.lookup_flash_reads)),
            )
        )
    print_table(
        "Ablation (§7.3.1): contribution of each optimisation",
        ["variant", "insert mean (ms)", "lookup mean (ms)", "flash reads / lookup"],
        rows,
    )

    full = results["full design"]
    no_buffering = results["no buffering"]
    no_bloom = results["no bloom filters"]

    # Buffering: without it, inserts are orders of magnitude slower.
    assert no_buffering.mean_insert_latency_ms > 20 * full.mean_insert_latency_ms
    # Bloom filters: without them, lookups issue many more flash reads and are
    # several times slower.
    reads_full = sum(full.lookup_flash_reads) / len(full.lookup_flash_reads)
    reads_no_bloom = sum(no_bloom.lookup_flash_reads) / len(no_bloom.lookup_flash_reads)
    assert reads_no_bloom > 4 * reads_full
    assert no_bloom.mean_lookup_latency_ms > 3 * full.mean_lookup_latency_ms
    # Bit-slicing: a measurable improvement for memory-bound (0% LSR) lookups.
    sliced = results["full design (0% LSR)"].mean_lookup_latency_ms
    unsliced = results["no bit-slicing (0% LSR)"].mean_lookup_latency_ms
    assert sliced < unsliced
    assert (unsliced - sliced) / unsliced > 0.05
