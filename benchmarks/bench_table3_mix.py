"""Table 3: per-operation latency vs lookup fraction (BufferHash vs BDB, Transcend SSD).

The paper varies the fraction of lookups in the workload (0, 0.3, 0.5, 0.7, 1)
at a fixed 40 % lookup success rate and reports the mean latency per
operation.  BDB improves as the workload becomes read-heavy (random reads are
cheap on SSDs, and less write pressure means less garbage collection), while
BufferHash gets *faster* as the workload becomes write-heavy (writes are
absorbed by the buffer) — 17× faster for pure inserts than pure lookups.
"""

from __future__ import annotations

from benchmarks.common import print_table, retention_window, standard_config
from repro.baselines import ExternalHashIndex
from repro.core import CLAM
from repro.flashsim import SSD, SimulationClock, TRANSCEND_SSD_PROFILE
from repro.workloads import (
    WorkloadRunner,
    WorkloadSpec,
    build_mixed_workload,
    preload_keys_for,
)

NUM_OPS = 8_000
LOOKUP_FRACTIONS = [0.0, 0.3, 0.5, 0.7, 1.0]


def _run_one(index, operations):
    report = WorkloadRunner(index).run(operations)
    return report.mean_latency_per_operation_ms


def run_table3():
    config = standard_config()
    rows = []
    for fraction in LOOKUP_FRACTIONS:
        spec = WorkloadSpec(
            num_keys=NUM_OPS,
            target_lsr=0.4,
            lookup_fraction=fraction,
            recency_window=retention_window(config),
            seed=31,
        )
        operations = build_mixed_workload(spec)
        preload = preload_keys_for(spec)

        clam_clock = SimulationClock()
        clam = CLAM(config, storage=SSD(profile=TRANSCEND_SSD_PROFILE, clock=clam_clock))
        # Pre-populate so lookup-heavy mixes hit at the target LSR, as the
        # paper's pre-filled tables do.
        for key in preload:
            clam.insert(key, b"v")

        # Give the drive idle time after the bulk pre-population (the paper's
        # measurements likewise start from a settled, pre-filled table).
        clam_clock.advance(60_000.0)

        bdb_clock = SimulationClock()
        bdb = ExternalHashIndex(
            SSD(profile=TRANSCEND_SSD_PROFILE, clock=bdb_clock), cache_pages=32
        )
        for key in preload:
            bdb.insert(key, b"v")
        bdb_clock.advance(60_000.0)

        rows.append(
            {
                "lookup_fraction": fraction,
                "bufferhash_ms": _run_one(clam, operations),
                "bdb_ms": _run_one(bdb, operations),
            }
        )
    return rows


def test_table3_latency_vs_lookup_fraction(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    print_table(
        "Table 3: per-operation latency vs lookup fraction (Transcend SSD, LSR=0.4)",
        ["lookup fraction", "BufferHash (ms)", "Berkeley DB (ms)"],
        [(row["lookup_fraction"], row["bufferhash_ms"], row["bdb_ms"]) for row in rows],
    )

    bufferhash = [row["bufferhash_ms"] for row in rows]
    bdb = [row["bdb_ms"] for row in rows]

    # BufferHash: write-heavy workloads are much faster than read-heavy ones
    # (the paper reports a ~17x gap between 0% and 100% lookups).
    assert bufferhash[0] * 3 < bufferhash[-1]
    # Berkeley DB: read-heavy workloads are much faster than write-heavy ones.
    assert bdb[-1] * 3 < bdb[0]
    # BufferHash wins at every operating point except possibly the pure-lookup
    # extreme, and by orders of magnitude on write-heavy mixes.
    assert all(bh < db for bh, db in zip(bufferhash[:-1], bdb[:-1]))
    assert bufferhash[0] * 50 < bdb[0]
