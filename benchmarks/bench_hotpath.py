"""Hot-path microbenchmark: hash-once KeyDigest + bitset Bloom vs the legacy path.

BufferHash's premise is that an operation costs a handful of cheap in-memory
hash operations plus at most one flash read.  In pure Python the "cheap"
part used to dominate: every layer (super-table partition, two cuckoo
buckets, Bloom base hashes, incarnation page, shard ring) re-hashed the full
key bytes, 6-10+ FNV passes per operation, and ``BloomFilter`` rebuilt an
immutable big-int on every set bit.  This benchmark measures the two fixes
landed together — the hash-once :class:`~repro.core.hashing.KeyDigest`
pipeline and the mutable ``bytearray`` Bloom bitset — by running identical
workloads in both modes:

* **before** — ``use_hash_once=False`` (every layer re-hashes, exactly the
  seed implementation's behaviour) with a big-int Bloom filter patched in
  (the seed implementation's bit storage);
* **after** — the shipped defaults.

Two workloads are timed with real wall-clock (this benchmark measures the
implementation, not the simulated device model):

* ``hotpath`` — the headline insert/lookup microbench: a buffer-resident
  working set (no flushes) driven with interleaved insert+lookup rounds.
  This isolates the DRAM hot path the paper calls "a handful of in-memory
  hash operations"; target is >= 3x ops/sec.
* ``steady_state`` — a flash-touching steady state (buffers full, 8
  incarnations per super table) driven with a lookup/update mix; flash-page
  simulation bounds the achievable speedup, so this is the honest
  end-to-end number.

Per-operation full-key hash passes are counted by layer with
:func:`repro.core.hashing.count_hash_calls` in both modes; the hash-once
pipeline must hash a key's bytes at most once per layer per operation.

Results go to stdout (tables) and ``BENCH_hotpath.json`` (machine readable,
see ``benchmarks/common.py``).  Run directly::

    PYTHONPATH=src:. python benchmarks/bench_hotpath.py [--quick] [--json PATH]

or through pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -q -s
"""

from __future__ import annotations

import argparse
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from benchmarks.common import add_telemetry_arg, dump_telemetry, print_table, write_bench_json
from benchmarks.ratchet import assert_fraction
from repro.core import CLAM, CLAMConfig
from repro.core.bloom import BloomFilter
from repro.core.hashing import clear_digest_cache, count_hash_calls
from repro.telemetry import build_snapshot

#: Workload sizes: full run and --quick (CI smoke) variants.
FULL = {"hot_keys": 4000, "hot_rounds": 3, "steady_keys": 16000, "steady_ops": 16000}
QUICK = {"hot_keys": 1500, "hot_rounds": 2, "steady_keys": 6000, "steady_ops": 6000}

#: Seed-tree reference, measured on the pre-PR implementation with exactly the
#: FULL workloads below (recorded once so the trajectory keeps an absolute
#: anchor; the enforced comparison is the live before/after ablation).
SEED_REFERENCE = {"hotpath_ops_per_sec": 56576.6, "steady_ops_per_sec": 26712.4}

VALUE = b"v" * 8


class LegacyBigIntBloom(BloomFilter):
    """The seed implementation's Bloom bit storage: one immutable big int.

    ``add`` therefore copies a ``num_bits``-sized integer per set bit —
    exactly the behaviour the bytearray bitset replaced.  Used only as the
    benchmark's "before" configuration.
    """

    __slots__ = ("_int_bits",)

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        super().__init__(num_bits, num_hashes)
        self._int_bits = 0

    def add(self, key) -> None:
        for position in self.bit_positions(key):
            self._int_bits |= 1 << position
        self._count += 1

    def __contains__(self, key) -> bool:
        bits = self._int_bits
        for position in self.bit_positions(key):
            if not (bits >> position) & 1:
                return False
        return True

    def iter_set_bits(self) -> Iterator[int]:
        bits = self._int_bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def fill_fraction(self) -> float:
        return self._int_bits.bit_count() / self.num_bits

    def clear(self) -> None:
        self._int_bits = 0
        self._count = 0

    def copy(self) -> "LegacyBigIntBloom":
        clone = LegacyBigIntBloom(self.num_bits, self.num_hashes)
        clone._int_bits = self._int_bits
        clone._count = self._count
        return clone


@contextmanager
def legacy_bloom_installed():
    """Patch the big-int Bloom filter into every module that constructs one."""
    import repro.core.buffer as buffer_mod
    import repro.core.clam as clam_mod
    import repro.core.supertable as supertable_mod

    originals = (buffer_mod.BloomFilter, supertable_mod.BloomFilter, clam_mod.BloomFilter)
    buffer_mod.BloomFilter = LegacyBigIntBloom
    supertable_mod.BloomFilter = LegacyBigIntBloom
    clam_mod.BloomFilter = LegacyBigIntBloom
    try:
        yield
    finally:
        buffer_mod.BloomFilter, supertable_mod.BloomFilter, clam_mod.BloomFilter = originals


def hotpath_clam(hash_once: bool, telemetry: bool = False) -> CLAM:
    """Buffers sized so the hotpath working set never flushes to flash."""
    config = CLAMConfig.scaled(
        num_super_tables=4,
        buffer_capacity_items=2048,
        incarnations_per_table=2,
        use_hash_once=hash_once,
        telemetry_enabled=telemetry,
    )
    return CLAM(config, storage="intel-ssd", keep_latency_samples=False)


def steady_clam(hash_once: bool) -> CLAM:
    """The standard scaled configuration: small buffers, 8 incarnations."""
    config = CLAMConfig.scaled(
        num_super_tables=16,
        buffer_capacity_items=128,
        incarnations_per_table=8,
        use_hash_once=hash_once,
    )
    return CLAM(config, storage="intel-ssd", keep_latency_samples=False)


def run_hotpath(hash_once: bool, sizes: Dict[str, int], telemetry: bool = False):
    """(ops/sec, CLAM) of interleaved insert+lookup over a buffer-resident key set."""
    clear_digest_cache()
    clam = hotpath_clam(hash_once, telemetry=telemetry)
    keys = [b"hotkey-%08d" % i for i in range(sizes["hot_keys"])]
    for key in keys:  # cold fill, not timed
        clam.insert(key, VALUE)
    assert clam.bufferhash.total_flushes == 0, "hotpath workload must stay in DRAM"
    operations = 0
    start = time.perf_counter()
    for _ in range(sizes["hot_rounds"]):
        for key in keys:
            clam.insert(key, VALUE)
            clam.lookup(key)
        operations += 2 * len(keys)
    return operations / (time.perf_counter() - start), clam


def run_steady_state(hash_once: bool, sizes: Dict[str, int]) -> float:
    """Ops/sec of a lookup/update mix against a flash-resident steady state."""
    clear_digest_cache()
    clam = steady_clam(hash_once)
    num_keys = sizes["steady_keys"]
    keys = [b"sskey-%08d" % i for i in range(num_keys)]
    for key in keys:  # warm up into incarnations, not timed
        clam.insert(key, VALUE)
    operations = sizes["steady_ops"]
    start = time.perf_counter()
    for index in range(operations):
        key = keys[(index * 7919) % num_keys]  # deterministic stride "random"
        if index & 1:
            clam.insert(key, VALUE)
        else:
            clam.lookup(key)
    return operations / (time.perf_counter() - start)


def measure_hash_calls(hash_once: bool) -> Dict[str, Dict[str, float]]:
    """Per-operation full-key hash passes by layer.

    ``lookup_cold`` clears the cross-operation digest cache first, so it
    shows the per-operation cost of a never-seen key: with hash-once that is
    exactly one digest build and at most one pass per layer, with the legacy
    path it is one pass per layer *use* (Bloom/page layers repeat across the
    incarnations probed).  ``lookup_cached``/``insert_cached`` show the
    steady-state cost once the digest cache has seen the key.

    Lookups are sampled against the flash-resident steady-state CLAM (the
    interesting case: several incarnations probed per lookup); inserts
    against the flush-free hotpath CLAM, because a flush amortises
    whole-buffer serialisation (which hashes every *drained* key once for
    page placement) into whichever insert triggered it and would blur the
    per-operation accounting.
    """
    sample = 200

    def sampled(operation) -> Dict[str, float]:
        with count_hash_calls() as log:
            for index in range(sample):
                operation(index)
        return {name: count / sample for name, count in log.snapshot().items()}

    out: Dict[str, Dict[str, float]] = {}
    clear_digest_cache()
    clam = steady_clam(hash_once)
    keys = [b"cntkey-%08d" % i for i in range(8000)]
    for key in keys:
        clam.insert(key, VALUE)
    clear_digest_cache()
    out["lookup_cold"] = sampled(lambda i: clam.lookup(keys[(i * 7919) % len(keys)]))
    out["lookup_cached"] = sampled(lambda i: clam.lookup(keys[(i * 7919) % len(keys)]))

    clear_digest_cache()
    buffered = hotpath_clam(hash_once)
    hot_keys = [b"cntins-%08d" % i for i in range(2000)]
    for key in hot_keys:
        buffered.insert(key, VALUE)
    clear_digest_cache()
    out["insert_cold"] = sampled(lambda i: buffered.insert(hot_keys[(i * 6133) % 2000], VALUE))
    out["insert_cached"] = sampled(lambda i: buffered.insert(hot_keys[(i * 6133) % 2000], VALUE))
    return out


def run_modes(sizes: Dict[str, int]) -> Dict[str, Dict]:
    """The full before/after comparison (timings plus hash-call accounting)."""
    with legacy_bloom_installed():
        before = {
            "mode": "legacy: per-layer re-hash (use_hash_once=False) + big-int Bloom",
            "hotpath_ops_per_sec": round(run_hotpath(False, sizes)[0], 1),
            "steady_ops_per_sec": round(run_steady_state(False, sizes), 1),
            "hash_calls_per_op": measure_hash_calls(False),
        }
    after = {
        "mode": "hash-once KeyDigest pipeline + bytearray bitset Bloom",
        "hotpath_ops_per_sec": round(run_hotpath(True, sizes)[0], 1),
        "steady_ops_per_sec": round(run_steady_state(True, sizes), 1),
        "hash_calls_per_op": measure_hash_calls(True),
    }
    speedup = {
        "hotpath": round(after["hotpath_ops_per_sec"] / before["hotpath_ops_per_sec"], 2),
        "steady_state": round(after["steady_ops_per_sec"] / before["steady_ops_per_sec"], 2),
    }
    return {"before": before, "after": after, "speedup": speedup}


def run_telemetry_ablation(sizes: Dict[str, int]):
    """Telemetry off/on A/B on the hotpath workload, plus the on-run snapshot.

    ``telemetry_enabled=False`` (the default every other number in this file
    is measured with) must cost nothing: the instrumentation collapses to a
    cached ``None`` check per operation.  The ratchet in
    :func:`check_invariants` holds the freshly measured off number within 5 %
    of the same-run ``after`` hotpath number — same process, same machine,
    same workload, so the bound is noise-tight in a way a cross-machine
    comparison against a committed BENCH file could never be.  The on run's
    registry becomes the ``--telemetry-out`` snapshot.
    """
    off = max(run_hotpath(True, sizes)[0] for _ in range(2))
    on, clam = run_hotpath(True, sizes, telemetry=True)
    snapshot = build_snapshot(per_shard={"clam": clam.telemetry})
    ablation = {
        "off_ops_per_sec": round(off, 1),
        "on_ops_per_sec": round(on, 1),
        "on_over_off": round(on / off, 4),
    }
    return ablation, snapshot


def report(
    results: Dict[str, Dict],
    sizes: Dict[str, int],
    json_path: Optional[str],
    ablation: Optional[Dict] = None,
) -> None:
    before, after, speedup = results["before"], results["after"], results["speedup"]
    print_table(
        "Hot path: ops/sec before (legacy re-hash + big-int Bloom) vs after (hash-once)",
        ["workload", "before ops/s", "after ops/s", "speedup"],
        [
            ("hotpath (DRAM)", before["hotpath_ops_per_sec"], after["hotpath_ops_per_sec"],
             f"{speedup['hotpath']:.2f}x"),
            ("steady state (flash)", before["steady_ops_per_sec"], after["steady_ops_per_sec"],
             f"{speedup['steady_state']:.2f}x"),
        ],
    )
    before_cold = before["hash_calls_per_op"]["lookup_cold"]
    after_cold = after["hash_calls_per_op"]["lookup_cold"]
    after_cached = after["hash_calls_per_op"]["lookup_cached"]
    layers = sorted(set(before_cold) | set(after_cold))
    print_table(
        "Full-key hash passes per lookup, by layer",
        ["layer", "before", "after (cold key)", "after (cached key)"],
        [
            (
                layer,
                before_cold.get(layer, 0.0),
                after_cold.get(layer, 0.0),
                after_cached.get(layer, 0.0),
            )
            for layer in layers
        ],
    )
    payload = {
        "description": (
            "Wall-clock ops/sec of the CLAM insert/lookup hot path, before "
            "(per-layer re-hashing + big-int Bloom bit storage, the seed "
            "implementation's behaviour) vs after (hash-once KeyDigest "
            "pipeline + bytearray bitset Bloom)."
        ),
        "workloads": dict(sizes),
        "quick": sizes != FULL,
        "before": before,
        "after": after,
        "speedup": results["speedup"],
        "seed_reference": {
            "comment": (
                "Absolute ops/sec measured on the pre-PR tree with the FULL "
                "workloads (anchor for the trajectory; the before/after pair "
                "above is re-measured live on every run)."
            ),
            **SEED_REFERENCE,
        },
    }
    if ablation is not None:
        payload["telemetry_ablation"] = ablation
        print(
            "telemetry ablation (hotpath): off "
            f"{ablation['off_ops_per_sec']:.1f} ops/s vs on "
            f"{ablation['on_ops_per_sec']:.1f} ops/s "
            f"(on/off {ablation['on_over_off']:.3f})"
        )
    if sizes == FULL:
        payload["seed_reference"]["speedup_vs_seed"] = {
            "hotpath": round(
                after["hotpath_ops_per_sec"] / SEED_REFERENCE["hotpath_ops_per_sec"], 2
            ),
            "steady_state": round(
                after["steady_ops_per_sec"] / SEED_REFERENCE["steady_ops_per_sec"], 2
            ),
        }
    path = write_bench_json("hotpath", payload)
    if json_path is not None:
        import shutil

        shutil.copyfile(path, json_path)
    print(f"wrote {path}")


def check_invariants(results: Dict[str, Dict], quick: bool) -> None:
    """The claims this benchmark exists to enforce."""
    after_calls = results["after"]["hash_calls_per_op"]
    before_calls = results["before"]["hash_calls_per_op"]
    # Hash-once: every layer traverses the key bytes at most once per op,
    # with at most one digest build per operation (0 once cache-hot).
    for name, counts in after_calls.items():
        for layer, per_op in counts.items():
            if layer == "fnv_total":
                continue
            assert per_op <= 1.0 + 1e-9, f"{name} hashes {layer} {per_op}x per op"
    # A cold key is digested exactly once and never re-hashed afterwards.
    assert after_calls["lookup_cold"]["digest_builds"] == 1.0
    assert after_calls["insert_cold"]["digest_builds"] == 1.0
    assert after_calls["lookup_cached"]["fnv_total"] == 0.0
    assert after_calls["insert_cached"]["fnv_total"] == 0.0
    # The legacy path really does re-hash every operation (with bit-slicing
    # on and a single candidate incarnation its *cold* totals coincide with
    # hash-once; the repeated-use cases are where the passes disappear).
    assert before_calls["lookup_cold"]["fnv_total"] >= after_calls["lookup_cold"]["fnv_total"]
    assert before_calls["lookup_cached"]["fnv_total"] > 1.0
    assert before_calls["insert_cached"]["fnv_total"] > 1.0
    # Speedup floor: >= 3x on the full run (typical is ~4x).  The CI --quick
    # smoke only needs to catch rot (e.g. the digest pipeline silently
    # disabled, which would read ~1.0x), so its floor is a loose 1.2x that a
    # noisy shared runner cannot trip; the short quick workloads are too
    # small to gate tight wall-clock ratios on.
    floor = 1.2 if quick else 3.0
    assert results["speedup"]["hotpath"] >= floor, (
        f"hotpath speedup {results['speedup']['hotpath']}x below {floor}x floor"
    )


def check_telemetry_ratchet(results: Dict[str, Dict], ablation: Dict) -> None:
    """telemetry_enabled=False must not tax the hot path (the <5 % ratchet).

    Both numbers come from the same process and workload — the ``after``
    hotpath measurement (telemetry off, like every pre-existing number in
    BENCH_hotpath.json) and a fresh best-of-two telemetry-off run — so the
    comparison is immune to machine-to-machine throughput differences that a
    ratchet against a committed file would trip over.  The enabled run only
    gets a loose floor: recording two histogram observations per operation
    costs real Python time and is priced in, not hidden.  Both floors go
    through the shared :func:`benchmarks.ratchet.assert_fraction` primitive.
    """
    after_ops = results["after"]["hotpath_ops_per_sec"]
    off = ablation["off_ops_per_sec"]
    assert_fraction(
        "hotpath telemetry-off A/B vs same-run baseline",
        fresh=off,
        committed=after_ops,
        floor=0.95,
    )
    assert_fraction(
        "hotpath telemetry-on floor vs telemetry-off",
        fresh=ablation["on_ops_per_sec"],
        committed=off,
        floor=0.5,
    )


def run_bench(
    quick: bool = False,
    json_path: Optional[str] = None,
    telemetry_out: Optional[str] = None,
) -> Dict[str, Dict]:
    sizes = QUICK if quick else FULL
    results = run_modes(sizes)
    ablation, snapshot = run_telemetry_ablation(sizes)
    report(results, sizes, json_path, ablation)
    check_invariants(results, quick)
    check_telemetry_ratchet(results, ablation)
    dump_telemetry(telemetry_out, snapshot)
    return results


def test_bench_hotpath(benchmark):
    results = benchmark.pedantic(lambda: run_modes(QUICK), rounds=1, iterations=1)
    report(results, QUICK, None)
    check_invariants(results, quick=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workloads and a loose rot-detection speedup floor, for CI smoke",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also copy BENCH_hotpath.json to PATH",
    )
    add_telemetry_arg(parser)
    args = parser.parse_args()
    run_bench(quick=args.quick, json_path=args.json, telemetry_out=args.telemetry_out)
    print("hotpath benchmark invariants hold")


if __name__ == "__main__":
    main()
