"""Benchmark harness regenerating every table and figure of the paper's evaluation.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each module reproduces one table or figure (see DESIGN.md's per-experiment
index) and prints the same rows/series the paper reports, using simulated
device time.  EXPERIMENTS.md records paper-vs-measured values.
"""
