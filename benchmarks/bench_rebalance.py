"""Elastic rebalancing: scale 4→6→3 shards under live Zipf traffic.

Beyond the paper: the online rebalancing layer (:mod:`repro.service.rebalance`)
streams the exact key-range arcs a membership change moves while the cluster
keeps serving — double-read (old owners first) during the move so lookups
never miss, write forwarding to the new owners, and an atomic per-arc
cut-over.  This benchmark drives three drills and enforces the elasticity
contract end to end:

* **Scripted churn** — a closed-loop Zipf workload while the schedule grows
  the cluster from 4 to 6 shards and then drains it down to 3, one online
  migration at a time.  Zero seeded keys may be lost and availability must
  stay at or above 0.99 through all five migrations.
* **Autoscale** — the same traffic with an :class:`AutoscalePolicy` wired to
  the hot-shard and per-shard p99 telemetry signals; the policy must take at
  least one scale-out decision on its own and, again, lose nothing.
* **Kill-the-joining-shard** — a scale-out whose joining shard crash-stops
  mid-migration at RF=2.  The migration must still complete (surviving
  old owners confirm every key; the dead shard accumulates hinted
  handoffs), every key must remain readable, and healing the shard must
  replay its backlog.

``--quick`` runs a reduced workload, writes ``BENCH_rebalance_quick.json``
and ratchets it against the committed ``BENCH_rebalance.json`` through the
shared :mod:`benchmarks.ratchet` spec (the CI lane re-runs that check via
the ratchet CLI as well).
"""

from __future__ import annotations

import argparse

from benchmarks.common import (
    add_telemetry_arg,
    dump_telemetry,
    print_table,
    standard_config,
    write_bench_json,
)
from benchmarks.ratchet import REGISTRY, check_spec
from repro.service import (
    AutoscaleConfig,
    AutoscalePolicy,
    ClusterService,
    FailureEvent,
    KeyMigrator,
    TrafficSimulator,
    TrafficSpec,
)
from repro.workloads.keygen import fingerprint_for

NUM_SHARDS = 4
REPLICATION_FACTOR = 2
#: Fewer ring points than the service default keeps the arc count (and the
#: per-arc cut-over event volume) proportionate to a benchmark run.
VIRTUAL_NODES = 16
WARMUP_KEYS = 600

SPEC = TrafficSpec(
    num_clients=6,
    requests_per_client=60,
    batch_size=8,
    lookup_fraction=0.6,
    update_fraction=0.1,
    key_space=3_000,
    zipf_skew=1.1,
    seed=53,
)

#: The 4→6→3 churn: two joins, then three drains (one is a just-joined
#: shard), each streamed online between these request counts.
CHURN = (
    (40, "scale-out", None),
    (100, "scale-out", None),
    (160, "scale-in", "shard-0"),
    (220, "scale-in", "shard-4"),
    (280, "scale-in", "shard-2"),
)
FINAL_SHARDS = 3

AUTOSCALE = AutoscaleConfig(
    min_shards=2,
    max_shards=6,
    hot_shard_threshold=1.05,
    evaluate_every=20,
    cooldown=60,
)

DRILL_KEYS = 400
DRILL_STEPS_BEFORE_KILL = 2


def build_cluster(num_shards: int = NUM_SHARDS) -> ClusterService:
    return ClusterService(
        num_shards=num_shards,
        config=standard_config(telemetry_enabled=True),
        replication_factor=REPLICATION_FACTOR,
        virtual_nodes=VIRTUAL_NODES,
        track_keys=True,
    )


def run_churn():
    """The scripted 4→6→3 churn under live traffic."""
    cluster = build_cluster()
    simulator = TrafficSimulator(
        cluster,
        SPEC,
        schedule=[
            FailureEvent(at_request=at, action=action, shard_id=shard)
            for at, action, shard in CHURN
        ],
        migrator=KeyMigrator(cluster, batch_size=48),
    )
    simulator.warmup(WARMUP_KEYS)
    seeded = [fingerprint_for(identifier) for identifier in range(WARMUP_KEYS)]
    report = simulator.run()
    lost = sum(1 for key in seeded if not cluster.lookup(key).found)

    registry = cluster.telemetry
    completed = int(registry.counter("requests_completed").value)
    failed = int(registry.counter("requests_failed").value)
    issued = completed + failed
    availability = completed / issued if issued else 1.0
    assert availability == report.availability, (availability, report.availability)

    outcome = {
        "availability": availability,
        "requests_completed": completed,
        "requests_failed": failed,
        "seeded_keys": WARMUP_KEYS,
        "lost_keys": lost,
        "migrations_completed": len(report.migrations),
        "migration_steps": sum(m.steps for m in report.migrations),
        "keys_copied": sum(m.keys_copied for m in report.migrations),
        "keys_retired": sum(m.keys_retired for m in report.migrations),
        "moved_fraction_total": round(sum(m.moved_fraction for m in report.migrations), 4),
        "blocked_retries": sum(m.blocked_retries for m in report.migrations),
        "final_shards": len(cluster.shard_ids),
        "final_shard_ids": list(cluster.shard_ids),
        "throughput_ops_per_sec": report.throughput_ops_per_second,
        "imbalance_after": cluster.stats.imbalance_factor(),
    }
    return report, outcome, cluster


def run_autoscale():
    """Policy-driven elasticity: the autoscaler must act on the Zipf skew."""
    cluster = build_cluster(num_shards=3)
    migrator = KeyMigrator(cluster, batch_size=48)
    policy = AutoscalePolicy(cluster, migrator, AUTOSCALE)
    simulator = TrafficSimulator(cluster, SPEC, autoscaler=policy)
    simulator.warmup(WARMUP_KEYS)
    seeded = [fingerprint_for(identifier) for identifier in range(WARMUP_KEYS)]
    report = simulator.run()
    lost = sum(1 for key in seeded if not cluster.lookup(key).found)
    outcome = {
        "availability": report.availability,
        "decisions": len(report.autoscale_decisions),
        "scale_outs": sum(1 for d in report.autoscale_decisions if d.action == "scale-out"),
        "scale_ins": sum(1 for d in report.autoscale_decisions if d.action == "scale-in"),
        "migrations_completed": len(report.migrations),
        "lost_keys": lost,
        "final_shards": len(cluster.shard_ids),
    }
    return report, outcome, cluster


def run_kill_joining_drill():
    """Crash the joining shard mid-migration; RF=2 must save every key."""
    cluster = build_cluster()
    for identifier in range(DRILL_KEYS):
        key = fingerprint_for(identifier, namespace=b"drill")
        cluster.insert(key, b"drill-value")
    migrator = KeyMigrator(cluster, batch_size=32)
    joining = migrator.start_add()
    for _ in range(DRILL_STEPS_BEFORE_KILL):
        migrator.step()
    cluster.fail_shard(joining, mode="crash")
    cluster.record_shard_error(joining)  # failure detection
    migrator.run_to_completion()
    lost_while_down = sum(
        1
        for identifier in range(DRILL_KEYS)
        if not cluster.lookup(fingerprint_for(identifier, namespace=b"drill")).found
    )
    hints_backlog = len(cluster._hints.get(joining, ()))
    cluster.heal_shard(joining)
    lost_after_heal = sum(
        1
        for identifier in range(DRILL_KEYS)
        if not cluster.lookup(fingerprint_for(identifier, namespace=b"drill")).found
    )
    return {
        "joining_shard": joining,
        "seeded_keys": DRILL_KEYS,
        "lost_keys_while_down": lost_while_down,
        "lost_keys_after_heal": lost_after_heal,
        "hints_backlog": hints_backlog,
        "hinted_handoffs_replayed": cluster.hinted_handoffs,
        "migration_completed": 1,
    }


def check_invariants(churn, autoscale, drill, snapshot) -> None:
    """The elasticity contract this benchmark exists to enforce."""
    # Zero lost keys and bounded availability dip through the whole churn.
    assert churn["lost_keys"] == 0, churn
    assert churn["availability"] >= 0.99, churn
    assert churn["migrations_completed"] == len(CHURN), churn
    assert churn["final_shards"] == FINAL_SHARDS, churn
    assert churn["keys_copied"] > 0 and churn["migration_steps"] > 0, churn
    # The autoscaler must have acted on the skewed load, losing nothing.
    assert autoscale["scale_outs"] >= 1, autoscale
    assert autoscale["lost_keys"] == 0, autoscale
    assert autoscale["availability"] >= 0.99, autoscale
    # Killing the joining shard degrades to hinted handoff, never to loss.
    assert drill["lost_keys_while_down"] == 0, drill
    assert drill["lost_keys_after_heal"] == 0, drill
    assert drill["hints_backlog"] > 0, drill
    assert drill["hinted_handoffs_replayed"] >= drill["hints_backlog"], drill
    # Event ordering: every migration runs started → cut-overs → done, and
    # the event log's sequence numbers are monotone.
    kinds = [event["kind"] for event in snapshot["events"]]
    for kind in ("migration_started", "arc_cut_over", "migration_done"):
        assert kind in kinds, (kind, sorted(set(kinds)))
    assert kinds.index("migration_started") < kinds.index("arc_cut_over"), kinds
    assert kinds.index("arc_cut_over") < kinds.index("migration_done"), kinds
    assert kinds.count("migration_done") == len(CHURN), kinds.count("migration_done")
    seqs = [event["seq"] for event in snapshot["events"]]
    assert seqs == sorted(seqs), seqs


def emit_json(name, churn, autoscale, drill, telemetry=None):
    path = write_bench_json(
        name,
        {
            "spec": {
                "num_shards": NUM_SHARDS,
                "replication_factor": REPLICATION_FACTOR,
                "virtual_nodes": VIRTUAL_NODES,
                "warmup_keys": WARMUP_KEYS,
                "churn": [list(event) for event in CHURN],
                "num_clients": SPEC.num_clients,
                "requests_per_client": SPEC.requests_per_client,
                "batch_size": SPEC.batch_size,
                "key_space": SPEC.key_space,
                "zipf_skew": SPEC.zipf_skew,
                "seed": SPEC.seed,
            },
            "churn": churn,
            "autoscale": autoscale,
            "kill_joining_drill": drill,
        },
        telemetry=telemetry,
    )
    print(f"wrote {path}")


def print_outcomes(churn, autoscale, drill) -> None:
    print_table(
        "Elastic rebalancing: 4→6→3 shard churn under live Zipf traffic",
        ["phase", "availability", "lost keys", "migrations", "keys copied", "final shards"],
        [
            (
                "scripted churn",
                churn["availability"],
                churn["lost_keys"],
                churn["migrations_completed"],
                churn["keys_copied"],
                churn["final_shards"],
            ),
            (
                "autoscale",
                autoscale["availability"],
                autoscale["lost_keys"],
                autoscale["migrations_completed"],
                "-",
                autoscale["final_shards"],
            ),
            (
                "kill joining shard",
                1.0,
                drill["lost_keys_after_heal"],
                drill["migration_completed"],
                "-",
                "-",
            ),
        ],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload for CI smoke runs"
    )
    add_telemetry_arg(parser)
    args = parser.parse_args()
    global SPEC, WARMUP_KEYS, CHURN, DRILL_KEYS
    if args.quick:
        WARMUP_KEYS = 300
        DRILL_KEYS = 200
        SPEC = TrafficSpec(
            num_clients=4,
            requests_per_client=25,
            batch_size=6,
            lookup_fraction=0.6,
            update_fraction=0.1,
            key_space=1_500,
            zipf_skew=1.1,
            seed=53,
        )
        CHURN = (
            (10, "scale-out", None),
            (25, "scale-out", None),
            (45, "scale-in", "shard-0"),
            (65, "scale-in", "shard-4"),
            (85, "scale-in", "shard-2"),
        )
    _, churn, cluster = run_churn()
    _, autoscale, _ = run_autoscale()
    drill = run_kill_joining_drill()
    print_outcomes(churn, autoscale, drill)
    check_invariants(churn, autoscale, drill, cluster.telemetry_snapshot())
    name = "rebalance_quick" if args.quick else "rebalance"
    emit_json(
        name,
        churn,
        autoscale,
        drill,
        telemetry=cluster.telemetry_snapshot(include_buckets=False),
    )
    dump_telemetry(args.telemetry_out, cluster.telemetry_snapshot())
    if args.quick:
        checks = check_spec(REGISTRY["rebalance"])
        if checks:
            print(f"ratchet ok: {len(checks)} metric checks against BENCH_rebalance.json")
        else:
            print("ratchet skipped: no committed BENCH_rebalance.json yet")


if __name__ == "__main__":
    main()
