"""Figure 8: cost of partial-discard eviction policies.

(a) CCDF of insert latencies under the update-based eviction policy on the
    Intel-like and Transcend-like SSDs: the vast majority of inserts are
    unchanged, but a small tail becomes much more expensive because evictions
    now read the evicted incarnation back and can cascade.
(b) CDF of the number of incarnations tried per buffer flush: in ~90 % of the
    flushes that evict, no more than 3 incarnations are touched (the paper
    measures an average of ~1.5).
"""

from __future__ import annotations

from benchmarks.common import print_table, retention_window, standard_config
from repro.core import CLAM
from repro.workloads import (
    WorkloadRunner,
    WorkloadSpec,
    build_update_workload,
    ccdf_points,
)

NUM_KEYS = 9_000


def _run(storage: str):
    # Smaller retention than the default so the workload cycles through
    # several incarnation evictions per super table (what Figure 8 measures).
    config = standard_config(
        buffer_capacity_items=64,
        incarnations_per_table=4,
        eviction_policy_name="update",
    )
    clam = CLAM(config, storage=storage)
    spec = WorkloadSpec(
        num_keys=NUM_KEYS,
        target_lsr=0.4,
        update_fraction=0.4,
        lookup_fraction=0.5,
        recency_window=retention_window(config),
        seed=47,
    )
    report = WorkloadRunner(clam).run(build_update_workload(spec))
    return clam, report


def run_figure8():
    results = {}
    for storage in ("intel-ssd", "transcend-ssd"):
        clam, report = _run(storage)
        results[storage] = {
            "report": report,
            "cascade_histogram": clam.bufferhash.cascade_histogram(),
        }
    return results


def test_fig8_update_based_eviction(benchmark):
    results = benchmark.pedantic(run_figure8, rounds=1, iterations=1)

    # (a) CCDF of insert latency.
    rows = []
    for storage, data in results.items():
        report = data["report"]
        points = ccdf_points(report.insert_latencies_ms, num_points=8)
        for latency, fraction in points:
            rows.append((storage, latency, fraction))
    print_table(
        "Figure 8a: CCDF of insert latency, update-based eviction",
        ["series", "latency (ms)", "CCDF"],
        rows,
    )

    # (b) CDF of incarnations tried per flush-with-eviction.
    histogram_rows = []
    for storage, data in results.items():
        histogram = data["cascade_histogram"]
        evicting_flushes = {tried: count for tried, count in histogram.items() if tried >= 1}
        total = sum(evicting_flushes.values()) or 1
        cumulative = 0.0
        for tried in sorted(evicting_flushes):
            cumulative += evicting_flushes[tried] / total
            histogram_rows.append((storage, tried, cumulative))
    print_table(
        "Figure 8b: CDF of incarnations tried per flush (evicting flushes only)",
        ["series", "# incarnations tried", "CDF"],
        histogram_rows,
    )

    intel = results["intel-ssd"]["report"]
    transcend = results["transcend-ssd"]["report"]

    # The bulk of inserts stay cheap (in-memory), so medians remain tiny...
    assert intel.insert_summary().median_ms < 0.05
    # ...but the tail (eviction-carrying inserts) is far more expensive and the
    # mean rises well above the FIFO-policy ~0.006 ms figure.
    assert intel.insert_summary().max_ms > 20 * intel.insert_summary().median_ms
    assert transcend.mean_insert_latency_ms > intel.mean_insert_latency_ms
    # Cascades exist but are shallow: among evicting flushes, at most 3
    # incarnations are tried in the vast majority of cases (paper: ~90 %).
    histogram = results["transcend-ssd"]["cascade_histogram"]
    evicting = {tried: count for tried, count in histogram.items() if tried >= 1}
    total = sum(evicting.values())
    shallow = sum(count for tried, count in evicting.items() if tried <= 3)
    assert total > 0
    assert shallow / total > 0.7
