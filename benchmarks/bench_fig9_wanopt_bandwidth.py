"""Figure 9: WAN optimizer effective-bandwidth improvement vs link speed.

Two traces (≈50 % and ≈15 % redundant bytes) are replayed through a WAN
optimizer whose fingerprint index is either a CLAM (BufferHash on the
Transcend-like SSD) or a Berkeley-DB-style index on the same SSD, for link
speeds from 10 to 400 Mbps.

Paper's shape:
* BDB gives close-to-ideal improvement (2× / 1.18×) only up to ~10 Mbps and
  then *reduces* effective bandwidth at higher speeds;
* the CLAM-based optimizer stays close to ideal up to ~100 Mbps and still
  helps at 200-300 Mbps, only becoming a bottleneck around 400 Mbps.
"""

from __future__ import annotations

from benchmarks.common import print_table, standard_config
from repro.baselines import ExternalHashIndex
from repro.core import CLAM
from repro.flashsim import MagneticDisk, SSD, SimulationClock, TRANSCEND_SSD_PROFILE
from repro.wanopt import CompressionEngine, ContentCache, Link, SyntheticTraceGenerator, WANOptimizer

LINK_SPEEDS_MBPS = [10, 20, 100, 200, 300, 400]
NUM_OBJECTS = 30
MEAN_OBJECT_SIZE = 128 * 1024


def _make_trace(redundancy: float):
    return SyntheticTraceGenerator(
        redundancy=redundancy,
        num_objects=NUM_OBJECTS,
        mean_object_size=MEAN_OBJECT_SIZE,
        mean_chunk_size=8 * 1024,
        seed=53,
    ).generate()


def _run_optimizer(index_kind: str, link_mbps: float, objects):
    clock = SimulationClock()
    ssd = SSD(profile=TRANSCEND_SSD_PROFILE, clock=clock)
    if index_kind == "clam":
        index = CLAM(standard_config(), storage=ssd)
    else:
        index = ExternalHashIndex(ssd, cache_pages=32)
    cache = ContentCache(MagneticDisk(clock=clock))
    engine = CompressionEngine(index=index, content_cache=cache)
    link = Link(bandwidth_mbps=link_mbps, clock=clock)
    optimizer = WANOptimizer(engine=engine, link=link, clock=clock)
    return optimizer.run_throughput_test(objects)


def run_figure9():
    results = {}
    for redundancy in (0.5, 0.15):
        objects = _make_trace(redundancy)
        for index_kind in ("clam", "bdb"):
            for link in LINK_SPEEDS_MBPS:
                key = (redundancy, index_kind, link)
                results[key] = _run_optimizer(index_kind, link, objects)
    return results


def test_fig9_effective_bandwidth_improvement(benchmark):
    results = benchmark.pedantic(run_figure9, rounds=1, iterations=1)

    for redundancy in (0.5, 0.15):
        rows = []
        for link in LINK_SPEEDS_MBPS:
            clam = results[(redundancy, "clam", link)]
            bdb = results[(redundancy, "bdb", link)]
            rows.append(
                (
                    link,
                    clam.effective_bandwidth_improvement,
                    bdb.effective_bandwidth_improvement,
                    clam.ideal_improvement,
                )
            )
        print_table(
            f"Figure 9: effective bandwidth improvement ({int(redundancy * 100)}% redundancy)",
            ["link (Mbps)", "BufferHash+SSD", "BerkeleyDB+SSD", "ideal"],
            rows,
        )

    # 50% redundancy trace -------------------------------------------------------
    clam_10 = results[(0.5, "clam", 10)]
    clam_100 = results[(0.5, "clam", 100)]
    clam_400 = results[(0.5, "clam", 400)]
    bdb_10 = results[(0.5, "bdb", 10)]
    bdb_100 = results[(0.5, "bdb", 100)]

    # Both are close to the ideal 2x at 10 Mbps.
    assert clam_10.effective_bandwidth_improvement > 1.6
    assert bdb_10.effective_bandwidth_improvement > 1.5
    # At 100 Mbps the CLAM still delivers a solid improvement while BDB has
    # become the bottleneck (improvement below 1 = it hurts).
    assert clam_100.effective_bandwidth_improvement > 1.3
    assert bdb_100.effective_bandwidth_improvement < 1.0
    # The CLAM eventually becomes a bottleneck too, at much higher speeds.
    assert clam_400.effective_bandwidth_improvement < clam_10.effective_bandwidth_improvement
    # 15% redundancy trace: ideal is ~1.18, CLAM stays close at moderate speeds.
    clam_low_redundancy = results[(0.15, "clam", 100)]
    assert clam_low_redundancy.effective_bandwidth_improvement > 1.0
    assert clam_low_redundancy.ideal_improvement < 1.4
