"""Figure 4: amortised and worst-case insertion cost vs per-super-table buffer size.

Four panels in the paper: (a) average and (b) worst-case cost on a raw flash
chip, (c) average and (d) worst-case cost on an Intel SSD.  The flash-chip
curves bottom out when the buffer matches the flash block size; on the SSD a
larger buffer keeps lowering the amortised cost but raises the worst case.
"""

from __future__ import annotations

import argparse

from benchmarks.common import (
    add_telemetry_arg,
    dump_telemetry,
    print_table,
    standard_clam,
    write_bench_json,
)
from repro.analysis.cost_model import (
    FLASH_CHIP_COSTS,
    INTEL_SSD_COSTS,
    sweep_insert_cost,
)
from repro.telemetry import build_snapshot

KB = 1024

BUFFER_SIZES_KB = [1, 4, 16, 64, 128, 256, 1024, 4096, 16_384]


def run_figure4():
    sizes = [size * KB for size in BUFFER_SIZES_KB]
    return {
        "chip": sweep_insert_cost(FLASH_CHIP_COSTS, sizes, entry_size_bytes=16),
        "ssd": sweep_insert_cost(INTEL_SSD_COSTS, sizes, entry_size_bytes=16),
    }


def test_fig4_insert_cost_vs_buffer_size(benchmark):
    results = benchmark.pedantic(run_figure4, rounds=1, iterations=1)

    rows = []
    for size_kb, chip_row, ssd_row in zip(BUFFER_SIZES_KB, results["chip"], results["ssd"]):
        rows.append(
            (
                size_kb,
                chip_row["amortized_ms"],
                chip_row["worst_case_ms"],
                ssd_row["amortized_ms"],
                ssd_row["worst_case_ms"],
            )
        )
    print_table(
        "Figure 4: insertion cost vs buffer size",
        [
            "buffer (KB)",
            "chip avg (ms)",
            "chip worst (ms)",
            "SSD avg (ms)",
            "SSD worst (ms)",
        ],
        rows,
    )

    chip_avg = [row["amortized_ms"] for row in results["chip"]]
    ssd_avg = [row["amortized_ms"] for row in results["ssd"]]
    ssd_worst = [row["worst_case_ms"] for row in results["ssd"]]
    block_kb = FLASH_CHIP_COSTS.block_size // KB

    # (a) The flash-chip amortised cost drops sharply up to the block size and
    # is essentially flat beyond it: the block size is the knee of the curve.
    at_block = chip_avg[BUFFER_SIZES_KB.index(block_kb)]
    assert chip_avg[BUFFER_SIZES_KB.index(16)] > 2 * at_block
    assert min(chip_avg) > 0.85 * at_block
    # (c) On the SSD, larger buffers keep reducing the amortised cost.
    assert ssd_avg[-1] < ssd_avg[0]
    # (d) ...but increase the worst-case (flush) latency.
    assert ssd_worst[-1] > ssd_worst[BUFFER_SIZES_KB.index(128)]
    # The paper's chosen operating point (128 KB buffers) gives ~microsecond
    # amortised inserts and a worst case of a few milliseconds on the SSD.
    at_128 = BUFFER_SIZES_KB.index(128)
    assert ssd_avg[at_128] < 0.01
    assert ssd_worst[at_128] < 10.0


def main() -> None:
    """Stand-alone CLI (CI benchmark smoke): run the sweep and print/emit it.

    ``--quick`` keeps the curve's knee points only; the model is analytical,
    so this is about exercising the code path cheaply, not about precision.
    """
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="knee-point sizes only")
    add_telemetry_arg(parser)
    args = parser.parse_args()
    global BUFFER_SIZES_KB
    if args.quick:
        BUFFER_SIZES_KB = [16, 128, 1024]
    results = run_figure4()
    rows = [
        (
            size_kb,
            chip_row["amortized_ms"],
            chip_row["worst_case_ms"],
            ssd_row["amortized_ms"],
            ssd_row["worst_case_ms"],
        )
        for size_kb, chip_row, ssd_row in zip(BUFFER_SIZES_KB, results["chip"], results["ssd"])
    ]
    print_table(
        "Figure 4: insertion cost vs buffer size",
        ["buffer (KB)", "chip avg (ms)", "chip worst (ms)", "SSD avg (ms)", "SSD worst (ms)"],
        rows,
    )
    # Knee-point sanity that must hold in either mode: the SSD's amortised
    # cost keeps falling with buffer size while its worst case rises.
    ssd_avg = [row["amortized_ms"] for row in results["ssd"]]
    ssd_worst = [row["worst_case_ms"] for row in results["ssd"]]
    assert ssd_avg[-1] < ssd_avg[0]
    assert ssd_worst[-1] > ssd_worst[0]
    path = write_bench_json(
        "fig4_insert_cost",
        {
            "buffer_sizes_kb": list(BUFFER_SIZES_KB),
            "quick": args.quick,
            "chip": results["chip"],
            "ssd": results["ssd"],
        },
    )
    print(f"wrote {path}")
    if args.telemetry_out is not None:
        # The sweep itself is analytical (no CLAM runs); the telemetry dump
        # is the measured counterpart: a telemetry-enabled CLAM at the
        # standard operating point driven through enough inserts to flush,
        # whose insert-latency histogram (p50 amortised, p999 flush spikes)
        # mirrors the model's average/worst-case split.
        clam = standard_clam(telemetry_enabled=True)
        for index in range(4000):
            clam.insert(b"fig4-key-%06d" % index, b"v" * 8)
        dump_telemetry(
            args.telemetry_out, build_snapshot(per_shard={"clam": clam.telemetry})
        )


if __name__ == "__main__":
    main()
