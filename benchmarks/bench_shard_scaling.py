"""Shard scaling: throughput and tail latency vs cluster size at fixed skew.

Beyond the paper: the service layer (``repro.service``) runs N independent
CLAM shards behind a consistent-hash router, so adding shards adds parallel
devices.  This benchmark drives the same closed-loop Zipf-skewed multi-client
traffic against clusters of 1, 2, 4 and 8 shards and reports request
throughput, p50/p99 request latency, the dispatch overhead amortised by
batching, and the load-imbalance factor (hot shards get worse as skew
concentrates keys, which is what a future rebalancing layer must fix).

Expectations:
* Throughput scales up with shard count (parallel shards, slowest-member
  clock), though sub-linearly under skew — the hot shard limits the batch
  makespan.
* p99 request latency drops as sub-batches shrink per shard.
* The imbalance factor grows (same hot keys, more mostly-idle shards).
"""

from __future__ import annotations

import argparse

from benchmarks.common import (
    add_telemetry_arg,
    dump_telemetry,
    print_table,
    standard_cluster,
    write_bench_json,
)
from repro.service import TrafficSimulator, TrafficSpec

SHARD_COUNTS = [1, 2, 4, 8]

SPEC = TrafficSpec(
    num_clients=8,
    requests_per_client=40,
    batch_size=8,
    lookup_fraction=0.5,
    update_fraction=0.1,
    key_space=4_000,
    zipf_skew=1.1,
    seed=31,
)


def run_shard_scaling(telemetry: bool = False, clusters_out=None):
    """Run the sweep; ``clusters_out`` (a dict) collects the live clusters
    when the caller wants telemetry snapshots after the fact."""
    results = {}
    for num_shards in SHARD_COUNTS:
        cluster = standard_cluster(num_shards=num_shards, telemetry_enabled=telemetry)
        simulator = TrafficSimulator(cluster, SPEC)
        simulator.warmup(1_000)
        results[num_shards] = simulator.run()
        if clusters_out is not None:
            clusters_out[num_shards] = cluster
    return results


def emit_json(results) -> None:
    """Machine-readable counterpart of the stdout table (BENCH_shard_scaling.json)."""
    per_cluster = {}
    for num_shards, report in results.items():
        summary = report.request_latency_summary()
        per_cluster[str(num_shards)] = {
            "operations": report.operations,
            "throughput_ops_per_sec": report.throughput_ops_per_second,
            "request_p50_ms": summary.median_ms,
            "request_p99_ms": summary.p99_ms,
            "dispatch_saved_ms": report.dispatch_saved_ms,
            "imbalance_factor": report.imbalance_factor,
            "hot_shards": list(report.hot_shards),
        }
    path = write_bench_json(
        "shard_scaling",
        {
            "spec": {
                "num_clients": SPEC.num_clients,
                "requests_per_client": SPEC.requests_per_client,
                "batch_size": SPEC.batch_size,
                "lookup_fraction": SPEC.lookup_fraction,
                "update_fraction": SPEC.update_fraction,
                "key_space": SPEC.key_space,
                "zipf_skew": SPEC.zipf_skew,
                "seed": SPEC.seed,
            },
            "clusters": per_cluster,
        },
    )
    print(f"wrote {path}")


def test_bench_shard_scaling(benchmark):
    results = benchmark.pedantic(run_shard_scaling, rounds=1, iterations=1)

    rows = []
    for num_shards in SHARD_COUNTS:
        report = results[num_shards]
        summary = report.request_latency_summary()
        rows.append(
            (
                num_shards,
                report.operations,
                report.throughput_ops_per_second,
                summary.median_ms,
                summary.p99_ms,
                report.dispatch_saved_ms,
                report.imbalance_factor,
                ",".join(report.hot_shards) or "-",
            )
        )
    print_table(
        "Shard scaling: closed-loop Zipf traffic (8 clients, batch 8, skew 1.1)",
        [
            "shards",
            "ops",
            "throughput ops/s",
            "req p50 ms",
            "req p99 ms",
            "dispatch saved ms",
            "imbalance",
            "hot shards",
        ],
        rows,
    )

    single, widest = results[1], results[8]
    # Every configuration completed the same closed-loop workload.
    assert {report.operations for report in results.values()} == {single.operations}
    # Parallel shards raise throughput and cut the tail.
    assert widest.throughput_ops_per_second > 1.5 * single.throughput_ops_per_second
    assert (
        widest.request_latency_summary().p99_ms
        < single.request_latency_summary().p99_ms
    )
    # A single shard is perfectly "balanced" by definition; skewed traffic over
    # many shards is not.
    assert single.imbalance_factor == 1.0
    assert widest.imbalance_factor > 1.0

    emit_json(results)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="cluster sizes 1 and 4 only, fewer requests"
    )
    add_telemetry_arg(parser)
    args = parser.parse_args()
    global SHARD_COUNTS, SPEC
    if args.quick:
        SHARD_COUNTS = [1, 4]
        SPEC = TrafficSpec(
            num_clients=4,
            requests_per_client=20,
            batch_size=8,
            lookup_fraction=0.5,
            update_fraction=0.1,
            key_space=2_000,
            zipf_skew=1.1,
            seed=31,
        )
    clusters = {}
    results = run_shard_scaling(
        telemetry=args.telemetry_out is not None, clusters_out=clusters
    )
    rows = []
    for num_shards in SHARD_COUNTS:
        report = results[num_shards]
        summary = report.request_latency_summary()
        rows.append(
            (
                num_shards,
                report.operations,
                report.throughput_ops_per_second,
                summary.median_ms,
                summary.p99_ms,
                report.imbalance_factor,
            )
        )
    print_table(
        "Shard scaling (closed-loop Zipf traffic)",
        ["shards", "ops", "throughput ops/s", "req p50 ms", "req p99 ms", "imbalance"],
        rows,
    )
    emit_json(results)
    if args.telemetry_out is not None:
        widest = clusters[max(clusters)]
        dump_telemetry(args.telemetry_out, widest.telemetry_snapshot())


if __name__ == "__main__":
    main()
