"""Shared regression ratchet for the benchmark suite.

Every benchmark that commits a ``BENCH_<name>.json`` can ratchet a fresh
``--quick`` run against it: the committed file freezes the contract, the
fresh run must stay within per-metric tolerances, and CI fails on any
violation.  This module is the one place that comparison logic lives —
``bench_chunking``'s speedup floor, ``bench_hotpath``'s same-run telemetry
A/B and ``bench_rebalance``'s zero-lost-keys/availability contract all call
the same primitives.

Two kinds of checks:

* :func:`assert_fraction` — the in-process primitive: ``fresh`` must be at
  least ``floor`` times ``committed``.  Both numbers should come from the
  same process/machine (a speedup ratio, an A/B pair), which is what makes
  the check immune to runner speed.
* :class:`RatchetSpec` + :func:`check_spec` — the file-level ratchet: a
  declarative list of :class:`Metric` rules compared between a fresh
  ``BENCH_<fresh>.json`` and the committed ``BENCH_<committed>.json``.  Only
  machine- and workload-size-invariant metrics belong here (availability,
  zero-loss counters, completion flags, ratios) — quick runs are smaller
  than committed full runs, so absolute throughput never qualifies.

Run as a CLI (``python benchmarks/ratchet.py [name ...]``) it checks every
registered spec whose files are present, printing one line per metric; any
violation exits non-zero.  CI invokes it right after the quick benchmark
smoke, so the fresh files are in place.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from benchmarks.common import REPO_ROOT


class RatchetError(AssertionError):
    """A fresh benchmark run violated a committed ratchet contract."""


def assert_fraction(label: str, fresh: float, committed: float, floor: float) -> Dict:
    """Require ``fresh >= floor * committed``; returns the check record.

    The workhorse behind every "within X% of the baseline" rule.  ``floor``
    above 1 expresses "must not exceed" contracts by swapping the operands at
    the call site instead of adding a second primitive.
    """
    bound = committed * floor
    if fresh < bound:
        raise RatchetError(
            f"{label}: fresh {fresh:.4g} below {floor:.0%} of committed "
            f"{committed:.4g} (floor {bound:.4g})"
        )
    return {
        "label": label,
        "fresh": fresh,
        "committed": committed,
        "floor": bound,
        "ok": True,
    }


def resolve(payload: Dict, dotted: str):
    """Walk a dotted path (``"churn.availability"``) into a JSON payload."""
    node = payload
    for part in dotted.split("."):
        if isinstance(node, list):
            node = node[int(part)]
        elif isinstance(node, dict):
            if part not in node:
                raise RatchetError(f"metric path {dotted!r} missing at {part!r}")
            node = node[part]
        else:
            raise RatchetError(f"metric path {dotted!r} hit a leaf at {part!r}")
    return node


@dataclass(frozen=True)
class Metric:
    """One ratchet rule over a dotted path present in both payloads.

    ``mode`` is one of:

    * ``"min-fraction"`` — fresh >= tolerance * committed (ratios, rates).
    * ``"max-fraction"`` — fresh <= tolerance * committed (error counts that
      may legitimately be zero on both sides are better served by exact).
    * ``"min-value"`` — fresh >= tolerance, ignoring the committed value (an
      absolute floor the committed file also had to meet).
    * ``"max-value"`` — fresh <= tolerance (absolute ceiling, e.g. 0 lost
      keys).
    * ``"exact"`` — fresh == committed (counts fixed by the workload shape).
    """

    key: str
    mode: str
    tolerance: float = 1.0

    _MODES = ("min-fraction", "max-fraction", "min-value", "max-value", "exact")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {self.mode!r}")

    def check(self, spec_name: str, fresh_payload: Dict, committed_payload: Dict) -> Dict:
        fresh = resolve(fresh_payload, self.key)
        committed = resolve(committed_payload, self.key)
        label = f"{spec_name}:{self.key}"
        if self.mode == "min-fraction":
            return assert_fraction(label, fresh, committed, self.tolerance)
        if self.mode == "max-fraction":
            bound = committed * self.tolerance
            if fresh > bound:
                raise RatchetError(
                    f"{label}: fresh {fresh:.4g} above {self.tolerance:.0%} of "
                    f"committed {committed:.4g} (ceiling {bound:.4g})"
                )
        elif self.mode == "min-value":
            if fresh < self.tolerance:
                raise RatchetError(
                    f"{label}: fresh {fresh:.4g} below absolute floor {self.tolerance:.4g}"
                )
        elif self.mode == "max-value":
            if fresh > self.tolerance:
                raise RatchetError(
                    f"{label}: fresh {fresh:.4g} above absolute ceiling {self.tolerance:.4g}"
                )
        else:  # exact
            if fresh != committed:
                raise RatchetError(
                    f"{label}: fresh {fresh!r} differs from committed {committed!r}"
                )
        return {
            "label": label,
            "fresh": fresh,
            "committed": committed,
            "mode": self.mode,
            "ok": True,
        }


@dataclass(frozen=True)
class RatchetSpec:
    """A fresh-vs-committed BENCH file comparison for one benchmark."""

    name: str
    fresh: str
    committed: str
    metrics: Tuple[Metric, ...]

    def fresh_path(self):
        return REPO_ROOT / f"BENCH_{self.fresh}.json"

    def committed_path(self):
        return REPO_ROOT / f"BENCH_{self.committed}.json"


#: File-level ratchets the CLI knows about.  Benchmarks with purely
#: in-process ratchets (hotpath's same-run A/B, chunking's per-row speedup
#: floors) use :func:`assert_fraction` directly and are not listed here.
REGISTRY: Dict[str, RatchetSpec] = {
    "rebalance": RatchetSpec(
        name="rebalance",
        fresh="rebalance_quick",
        committed="rebalance",
        metrics=(
            # Zero lost keys is the contract, not a tolerance.
            Metric("churn.lost_keys", "max-value", 0),
            Metric("churn.lost_keys", "exact"),
            # Availability through the 4→6→3 churn: the committed file had to
            # clear 0.99; a fresh quick run must stay within 1% of it *and*
            # above the same absolute bar.
            Metric("churn.availability", "min-fraction", 0.99),
            Metric("churn.availability", "min-value", 0.99),
            # The scripted churn always performs the same membership changes.
            Metric("churn.migrations_completed", "exact"),
            Metric("churn.final_shards", "exact"),
            # Every migration must have been a genuine online move, streamed
            # in bounded steps interleaved with the traffic loop.
            Metric("churn.migration_steps", "min-value", 1),
        ),
    ),
    "parallel_cluster": RatchetSpec(
        name="parallel_cluster",
        fresh="parallel_cluster_quick",
        committed="parallel_cluster",
        metrics=(
            # The bit-identical contract: process mode must reproduce the
            # in-process deployment's results, counters and clocks exactly.
            # Parity runs at a fixed size in quick and full modes, so these
            # are workload-shape constants, not throughput numbers.
            Metric("parity.results_identical", "exact"),
            Metric("parity.results_identical", "min-value", 1),
            Metric("parity.mismatches", "max-value", 0),
            Metric("parity.counters_identical", "min-value", 1),
            Metric("parity.clock_identical", "min-value", 1),
            Metric("parity.telemetry_identical", "min-value", 1),
            Metric("parity.operations", "exact"),
            # The worker-kill drill at RF=2: acknowledged writes survive a
            # SIGKILL, the supervisor notices, and the restarted worker
            # rejoins with its hint backlog replayed.
            Metric("drill.lost_keys_while_down", "max-value", 0),
            Metric("drill.lost_keys_after_restart", "max-value", 0),
            Metric("drill.supervisor_detected", "min-value", 1),
            Metric("drill.worker_restarted", "min-value", 1),
            Metric("drill.events_seen", "min-value", 1),
            Metric("drill.seeded_keys", "exact"),
            # The deployment shape itself is part of the contract.
            Metric("spec.worker_counts", "exact"),
            Metric("spec.parity_replication_factor", "exact"),
        ),
    ),
    "chaos": RatchetSpec(
        name="chaos",
        fresh="chaos_quick",
        committed="chaos",
        metrics=(
            # The headline contract: a randomized fault schedule at RF=2
            # costs latency, never acknowledged data.
            Metric("chaos.lost_acked_writes", "max-value", 0),
            Metric("chaos.lost_acked_writes", "exact"),
            Metric("chaos.availability", "min-fraction", 0.99),
            Metric("chaos.availability", "min-value", 0.99),
            # Chaos must actually fire for the run to mean anything, and the
            # deadline/retry budget must bound every single-key operation.
            Metric("chaos.injected_faults", "min-value", 1),
            Metric("chaos.max_op_latency_ms", "max-value", 2_500.0),
            # The stall drill: hedges reroute around a frozen worker without
            # declaring it dead; the deadline path then opens the circuit,
            # and nothing is lost across the supervisor restart.
            Metric("stall.hedge_fired", "min-value", 1),
            Metric("stall.victim_down_during_hedge", "max-value", 0),
            Metric("stall.workers_stalled", "min-value", 1),
            Metric("stall.victim_down_after_deadline", "min-value", 1),
            Metric("stall.lost_keys", "max-value", 0),
            Metric("stall.seeded_keys", "exact"),
            # Chaos off, the resilience machinery must be bit-invisible.
            Metric("parity.results_identical", "min-value", 1),
            Metric("parity.mismatches", "max-value", 0),
            Metric("parity.counters_identical", "min-value", 1),
            Metric("parity.clock_identical", "min-value", 1),
            Metric("parity.rpc_events_absent", "min-value", 1),
            Metric("parity.operations", "exact"),
            # The resilience budget itself is part of the contract.
            Metric("spec.replication_factor", "exact"),
            Metric("spec.request_deadline_ms", "exact"),
            Metric("spec.retry_limit", "exact"),
            Metric("spec.hedge_delay_ms", "exact"),
        ),
    ),
}


def check_spec(spec: RatchetSpec) -> List[Dict]:
    """Run every metric of one spec; raises :class:`RatchetError` on failure."""
    fresh_path, committed_path = spec.fresh_path(), spec.committed_path()
    if not committed_path.exists():
        return []  # nothing committed yet: first run establishes the baseline
    if not fresh_path.exists():
        raise RatchetError(
            f"{spec.name}: fresh file {fresh_path.name} missing — run the "
            f"benchmark with --quick before ratcheting"
        )
    fresh_payload = json.loads(fresh_path.read_text())
    committed_payload = json.loads(committed_path.read_text())
    return [
        metric.check(spec.name, fresh_payload, committed_payload) for metric in spec.metrics
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        help="registered spec names to check (default: every spec)",
    )
    args = parser.parse_args(argv)
    names = args.names or sorted(REGISTRY)
    failures = 0
    for name in names:
        if name not in REGISTRY:
            print(f"ratchet: unknown spec {name!r} (known: {sorted(REGISTRY)})")
            return 2
        spec = REGISTRY[name]
        try:
            checks = check_spec(spec)
        except RatchetError as error:
            print(f"FAIL {error}")
            failures += 1
            continue
        if not checks:
            print(f"skip {name}: no committed {spec.committed_path().name} yet")
            continue
        for check in checks:
            print(
                f"  ok {check['label']}: fresh={check['fresh']!r} "
                f"committed={check['committed']!r}"
            )
        print(f"PASS {name}: {len(checks)} metric checks")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
