"""Figure 10: per-object throughput improvement under heavy load (10 Mbps link).

Objects arrive at exactly link rate and the per-object throughput with the
optimizer is compared to the raw link.  The paper's observation: with a
CLAM-backed index most objects gain (average improvement ≈ 3.1× in their
trace), while the Berkeley-DB-backed optimizer *hurts* a large fraction of
objects — particularly small ones — because index operations delay them by
more than the compression saves (average ≈ 1.9×, many objects below 1×).
"""

from __future__ import annotations

from benchmarks.common import print_table, standard_config
from repro.baselines import ExternalHashIndex
from repro.core import CLAM
from repro.flashsim import MagneticDisk, SSD, SimulationClock, TRANSCEND_SSD_PROFILE
from repro.wanopt import CompressionEngine, ContentCache, Link, SyntheticTraceGenerator, WANOptimizer

LINK_MBPS = 10.0
NUM_OBJECTS = 40
MEAN_OBJECT_SIZE = 256 * 1024


def _objects():
    return SyntheticTraceGenerator(
        redundancy=0.5,
        num_objects=NUM_OBJECTS,
        mean_object_size=MEAN_OBJECT_SIZE,
        mean_chunk_size=8 * 1024,
        seed=59,
    ).generate()


def _run(index_kind: str):
    clock = SimulationClock()
    ssd = SSD(profile=TRANSCEND_SSD_PROFILE, clock=clock)
    if index_kind == "clam":
        index = CLAM(standard_config(), storage=ssd)
    else:
        index = ExternalHashIndex(ssd, cache_pages=32)
    engine = CompressionEngine(index=index, content_cache=ContentCache(MagneticDisk(clock=clock)))
    link = Link(bandwidth_mbps=LINK_MBPS, clock=clock)
    optimizer = WANOptimizer(engine=engine, link=link, clock=clock)
    return optimizer.run_high_load_test(_objects())


def run_figure10():
    return {"clam": _run("clam"), "bdb": _run("bdb")}


def test_fig10_per_object_throughput_improvement(benchmark):
    results = benchmark.pedantic(run_figure10, rounds=1, iterations=1)

    rows = []
    for kind, result in results.items():
        for obj in result.objects[:10]:
            rows.append(
                (
                    kind,
                    obj.object_id,
                    obj.size_bytes // 1024,
                    obj.throughput_improvement,
                )
            )
    print_table(
        "Figure 10: per-object throughput improvement (first 10 objects per series)",
        ["index", "object", "size (KB)", "improvement factor"],
        rows,
    )
    print(
        "mean improvement: CLAM = %.2f, BDB = %.2f; objects made worse: CLAM = %.0f%%, BDB = %.0f%%"
        % (
            results["clam"].mean_throughput_improvement,
            results["bdb"].mean_throughput_improvement,
            100 * results["clam"].fraction_worse_than(1.0),
            100 * results["bdb"].fraction_worse_than(1.0),
        )
    )

    clam = results["clam"]
    bdb = results["bdb"]
    # The CLAM-backed optimizer improves average per-object throughput more
    # than the BDB-backed one (paper: 3.1 vs 1.9, i.e. ~65% better).
    assert clam.mean_throughput_improvement > bdb.mean_throughput_improvement
    assert clam.mean_throughput_improvement > 1.2
    # BDB hurts a larger fraction of objects than the CLAM does.
    assert bdb.fraction_worse_than(1.0) >= clam.fraction_worse_than(1.0)
    # The CLAM rarely makes objects slower.
    assert clam.fraction_worse_than(1.0) < 0.3
