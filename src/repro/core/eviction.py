"""Eviction policies for BufferHash incarnations (§5.1.2).

BufferHash evicts at the granularity of a whole incarnation using one of two
primitives:

* **full discard** — the oldest incarnation is dropped without being read;
* **partial discard** — the oldest incarnation is read back from flash, a
  policy selects entries to retain, and those entries are re-inserted into
  the in-memory buffer (possibly triggering *cascaded* evictions when
  nothing can be discarded).

Four policies from the paper are provided: FIFO (the default; full discard),
LRU (full discard plus re-insertion-on-use), update-based and priority-based
(both partial discard).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass
class EvictionContext:
    """Information a policy may consult while scanning an evicted incarnation.

    Attributes
    ----------
    incarnation_id:
        Identifier of the incarnation being evicted.
    is_deleted:
        Callback: has this key been deleted (it is on the delete list)?
    superseded:
        Callback: does a newer copy of this key exist (in the buffer or in a
        newer incarnation, as witnessed by the in-memory Bloom filters)?
        May return false negatives only with probability equal to the Bloom
        false-positive rate, exactly as §5.1.2 footnote 2 describes.
    """

    incarnation_id: int
    is_deleted: Callable[[bytes], bool]
    superseded: Callable[[bytes], bool]


class EvictionPolicy(abc.ABC):
    """Strategy deciding what survives when an incarnation is evicted."""

    #: Whether eviction must read the incarnation back from flash (partial discard).
    requires_scan: bool = False
    #: Whether items found in flash during lookups are re-inserted into the
    #: buffer (the LRU emulation of §5.1.2).
    reinsert_on_use: bool = False

    @abc.abstractmethod
    def select_retained(
        self, items: Dict[bytes, bytes], context: EvictionContext
    ) -> Dict[bytes, bytes]:
        """Subset of ``items`` that must be re-inserted into the buffer."""

    @property
    def name(self) -> str:
        """Short policy name used in configuration and reports."""
        return type(self).__name__.replace("Eviction", "").lower()


class FIFOEviction(EvictionPolicy):
    """Drop the oldest incarnation wholesale — the paper's default policy."""

    requires_scan = False
    reinsert_on_use = False

    def select_retained(
        self, items: Dict[bytes, bytes], context: EvictionContext
    ) -> Dict[bytes, bytes]:
        return {}


class LRUEviction(EvictionPolicy):
    """Approximate LRU: full discard, but every flash hit re-inserts the item.

    Recently used items therefore always live in a recent incarnation (or the
    buffer) and survive the discard of the oldest incarnation, at the cost of
    duplicate copies on flash and slightly more frequent flushes.
    """

    requires_scan = False
    reinsert_on_use = True

    def select_retained(
        self, items: Dict[bytes, bytes], context: EvictionContext
    ) -> Dict[bytes, bytes]:
        return {}


class UpdateBasedEviction(EvictionPolicy):
    """Partial discard keeping only entries that are still live.

    An entry is discarded when it has been deleted or when a newer value for
    the same key exists; everything else is retained and re-inserted.
    """

    requires_scan = True
    reinsert_on_use = False

    def select_retained(
        self, items: Dict[bytes, bytes], context: EvictionContext
    ) -> Dict[bytes, bytes]:
        retained: Dict[bytes, bytes] = {}
        for key, value in items.items():
            if context.is_deleted(key):
                continue
            if context.superseded(key):
                continue
            retained[key] = value
        return retained


class PriorityBasedEviction(EvictionPolicy):
    """Partial discard keeping entries whose priority clears a threshold.

    Parameters
    ----------
    priority_fn:
        Maps ``(key, value)`` to a numeric priority.
    threshold:
        Entries with priority >= threshold are retained.
    retain_top_k:
        Optional cap on how many entries may be retained per eviction; the
        paper suggests this loosened semantics as a way to bound cascaded
        evictions (§7.4).
    """

    requires_scan = True
    reinsert_on_use = False

    def __init__(
        self,
        priority_fn: Callable[[bytes, bytes], float],
        threshold: float,
        retain_top_k: Optional[int] = None,
    ) -> None:
        if retain_top_k is not None and retain_top_k < 0:
            raise ValueError("retain_top_k must be non-negative")
        self.priority_fn = priority_fn
        self.threshold = threshold
        self.retain_top_k = retain_top_k

    def select_retained(
        self, items: Dict[bytes, bytes], context: EvictionContext
    ) -> Dict[bytes, bytes]:
        scored = [
            (self.priority_fn(key, value), key, value)
            for key, value in items.items()
            if not context.is_deleted(key)
        ]
        keep = [(p, k, v) for p, k, v in scored if p >= self.threshold]
        if self.retain_top_k is not None and len(keep) > self.retain_top_k:
            keep.sort(key=lambda entry: entry[0], reverse=True)
            keep = keep[: self.retain_top_k]
        return {key: value for _priority, key, value in keep}


def make_policy(name: str, **kwargs) -> EvictionPolicy:
    """Factory mapping configuration names to policy instances."""
    name = name.lower()
    if name == "fifo":
        return FIFOEviction()
    if name == "lru":
        return LRUEviction()
    if name == "update":
        return UpdateBasedEviction()
    if name == "priority":
        priority_fn = kwargs.get("priority_fn")
        threshold = kwargs.get("threshold")
        if priority_fn is None or threshold is None:
            raise ValueError("priority policy requires priority_fn and threshold")
        return PriorityBasedEviction(
            priority_fn=priority_fn,
            threshold=threshold,
            retain_top_k=kwargs.get("retain_top_k"),
        )
    raise ValueError(f"unknown eviction policy {name!r}")
