"""Cuckoo hash table used for the in-memory buffer of a super table.

The paper's implementation (§7.1) builds each buffer with cuckoo hashing and
two hash functions because it utilises space well and avoids chaining.  This
implementation uses the standard bucketised variant — two candidate buckets
per key, four slots per bucket — which sustains load factors well above the
50 % utilisation the paper runs buffers at, even for the small tables used in
scaled-down experiments.  If an insertion's displacement path exceeds a bound
the table restores its previous state and reports failure; the buffer treats
that the same as "full" and triggers a flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.errors import CapacityError
from repro.core.hashing import (
    CUCKOO_SEED_FIRST,
    CUCKOO_SEED_SECOND,
    KeyLike,
    hash_key,
    key_data,
)


@dataclass
class _Entry:
    key: bytes
    value: bytes


class CuckooHashTable:
    """Fixed-capacity cuckoo hash table mapping ``bytes`` keys to ``bytes`` values.

    Keys may be handed in as :class:`~repro.core.hashing.KeyDigest` objects;
    bucket hashing then reuses the digest's memoised values while entries
    still store (and :meth:`items` still yields) the canonical key bytes.
    """

    #: Slots per bucket (standard bucketised cuckoo hashing).
    SLOTS_PER_BUCKET = 4
    #: Maximum number of displacements attempted before declaring the table full.
    MAX_DISPLACEMENTS = 128

    def __init__(self, num_slots: int) -> None:
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        self.num_buckets = max(2, -(-num_slots // self.SLOTS_PER_BUCKET))
        self.num_slots = self.num_buckets * self.SLOTS_PER_BUCKET
        # Fixed-size buckets: a slot is either an _Entry or None.
        self._buckets: List[List[Optional[_Entry]]] = [
            [None] * self.SLOTS_PER_BUCKET for _ in range(self.num_buckets)
        ]
        self._size = 0

    # -- Hashing ---------------------------------------------------------------

    def _buckets_for(self, key: KeyLike) -> Tuple[int, int]:
        first = hash_key(key, seed=CUCKOO_SEED_FIRST) % self.num_buckets
        second = hash_key(key, seed=CUCKOO_SEED_SECOND) % self.num_buckets
        if second == first:
            second = (second + 1) % self.num_buckets
        return first, second

    # -- Read operations ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: KeyLike) -> bool:
        return self.get(key) is not None

    def get(self, key: KeyLike) -> Optional[bytes]:
        """Value stored for ``key``, or ``None`` if absent."""
        data = key_data(key)
        buckets = self._buckets
        for bucket_index in self._buckets_for(key):
            for entry in buckets[bucket_index]:
                if entry is not None and entry.key == data:
                    return entry.value
        return None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate over all (key, value) pairs in bucket order."""
        for bucket in self._buckets:
            for entry in bucket:
                if entry is not None:
                    yield entry.key, entry.value

    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self._size / self.num_slots

    # -- Write operations ---------------------------------------------------------

    def put(self, key: KeyLike, value: bytes) -> None:
        """Insert or update ``key``.

        Raises
        ------
        CapacityError
            If the displacement path exceeds :data:`MAX_DISPLACEMENTS`; the
            table is left exactly as it was and the caller should flush and
            retry.
        """
        data = key_data(key)
        first, second = self._buckets_for(key)
        # In-place update if the key already exists.
        for bucket_index in (first, second):
            for entry in self._buckets[bucket_index]:
                if entry is not None and entry.key == data:
                    entry.value = value
                    return
        # Plain insertion into a bucket with a free slot.
        for bucket_index in (first, second):
            slot = self._free_slot(bucket_index)
            if slot is not None:
                self._buckets[bucket_index][slot] = _Entry(data, value)
                self._size += 1
                return
        # Both buckets full: displace entries along a bounded path.  Every
        # write is recorded as (bucket, slot, previous occupant) so the whole
        # chain can be undone if it never terminates.
        carried = _Entry(data, value)
        bucket_index = first
        history: List[Tuple[int, int, Optional[_Entry]]] = []
        for step in range(self.MAX_DISPLACEMENTS):
            free = self._free_slot(bucket_index)
            if free is not None:
                self._buckets[bucket_index][free] = carried
                self._size += 1
                return
            victim_slot = step % self.SLOTS_PER_BUCKET
            victim = self._buckets[bucket_index][victim_slot]
            history.append((bucket_index, victim_slot, victim))
            self._buckets[bucket_index][victim_slot] = carried
            carried = victim  # type: ignore[assignment]  # victim is not None: bucket was full
            alt_first, alt_second = self._buckets_for(carried.key)
            bucket_index = alt_second if bucket_index == alt_first else alt_first
        for bucket_idx, slot_idx, previous in reversed(history):
            self._buckets[bucket_idx][slot_idx] = previous
        raise CapacityError(
            f"cuckoo displacement path exceeded {self.MAX_DISPLACEMENTS} steps "
            f"at load factor {self.load_factor():.2f}"
        )

    def _free_slot(self, bucket_index: int) -> Optional[int]:
        for slot, entry in enumerate(self._buckets[bucket_index]):
            if entry is None:
                return slot
        return None

    def delete(self, key: KeyLike) -> bool:
        """Remove ``key``; returns whether it was present."""
        data = key_data(key)
        for bucket_index in self._buckets_for(key):
            bucket = self._buckets[bucket_index]
            for slot, entry in enumerate(bucket):
                if entry is not None and entry.key == data:
                    bucket[slot] = None
                    self._size -= 1
                    return True
        return False

    def clear(self) -> None:
        """Remove every entry."""
        self._buckets = [
            [None] * self.SLOTS_PER_BUCKET for _ in range(self.num_buckets)
        ]
        self._size = 0
