"""BufferHash and CLAM: the paper's primary contribution.

Quick start::

    from repro.core import CLAM, CLAMConfig

    clam = CLAM(CLAMConfig.scaled(), storage="intel-ssd")
    clam.insert(b"fingerprint-1", b"chunk-address-1")
    result = clam.lookup(b"fingerprint-1")
    assert result.value == b"chunk-address-1"
    print(result.latency_ms, "simulated ms")
"""

from repro.core.bloom import BloomFilter, false_positive_rate, optimal_num_hashes
from repro.core.bufferhash import BufferHash
from repro.core.buffer import Buffer
from repro.core.clam import CLAM, build_device, STORAGE_PROFILES
from repro.core.config import CLAMConfig, MemoryCostModel
from repro.core.cuckoo import CuckooHashTable
from repro.core.durable import (
    CheckpointRegion,
    CheckpointState,
    DurableLogStore,
    read_superblock,
    serialize_checkpoint,
    write_superblock,
)
from repro.core.errors import (
    BufferHashError,
    CapacityError,
    ClusterCloseError,
    ConfigurationError,
    KeyTooLargeError,
    PowerLossError,
    TornPageError,
    WireProtocolError,
    WorkerDiedError,
)
from repro.core.eviction import (
    EvictionContext,
    EvictionPolicy,
    FIFOEviction,
    LRUEviction,
    PriorityBasedEviction,
    UpdateBasedEviction,
    make_policy,
)
from repro.core.hashing import (
    KeyDigest,
    as_digest,
    count_hash_calls,
    hash_key,
    key_data,
    to_key_bytes,
)
from repro.core.incarnation import IncarnationHandle, build_pages, search_page
from repro.core.recovery import CrashRecoveryReport, DurableCLAM
from repro.core.results import (
    DeleteResult,
    FlushResult,
    InsertResult,
    LookupResult,
    OperationStats,
    ServedFrom,
)
from repro.core.sliced_bloom import BitSlicedBloomArray
from repro.core.storage import (
    IncarnationStore,
    MultiDeviceLogStore,
    PartitionedChipStore,
    PartitionedDeviceStore,
    WholeDeviceLogStore,
)
from repro.core.supertable import SuperTable

__all__ = [
    "BloomFilter",
    "false_positive_rate",
    "optimal_num_hashes",
    "BufferHash",
    "Buffer",
    "CLAM",
    "build_device",
    "STORAGE_PROFILES",
    "CLAMConfig",
    "MemoryCostModel",
    "CuckooHashTable",
    "CheckpointRegion",
    "CheckpointState",
    "DurableLogStore",
    "read_superblock",
    "serialize_checkpoint",
    "write_superblock",
    "BufferHashError",
    "CapacityError",
    "ClusterCloseError",
    "ConfigurationError",
    "KeyTooLargeError",
    "PowerLossError",
    "TornPageError",
    "WireProtocolError",
    "WorkerDiedError",
    "CrashRecoveryReport",
    "DurableCLAM",
    "EvictionContext",
    "EvictionPolicy",
    "FIFOEviction",
    "LRUEviction",
    "PriorityBasedEviction",
    "UpdateBasedEviction",
    "make_policy",
    "KeyDigest",
    "as_digest",
    "count_hash_calls",
    "hash_key",
    "key_data",
    "to_key_bytes",
    "IncarnationHandle",
    "build_pages",
    "search_page",
    "DeleteResult",
    "FlushResult",
    "InsertResult",
    "LookupResult",
    "OperationStats",
    "ServedFrom",
    "BitSlicedBloomArray",
    "IncarnationStore",
    "MultiDeviceLogStore",
    "PartitionedChipStore",
    "PartitionedDeviceStore",
    "WholeDeviceLogStore",
    "SuperTable",
]
