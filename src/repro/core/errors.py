"""Exception types raised by the BufferHash / CLAM core."""

from __future__ import annotations


class BufferHashError(Exception):
    """Base class for all BufferHash errors."""


class CapacityError(BufferHashError):
    """Raised when a component cannot accept more items (e.g. a full buffer
    that could not be flushed, or a cuckoo table whose insertion path cycled)."""


class ConfigurationError(BufferHashError):
    """Raised when a CLAM or BufferHash configuration is inconsistent
    (e.g. buffer larger than a flash partition, zero incarnations)."""


class KeyTooLargeError(BufferHashError):
    """Raised when a key or value does not fit in an incarnation page slot."""


class DeviceFailedError(BufferHashError):
    """Raised when an I/O reaches a simulated device that has crash-stopped or
    is deterministically injecting errors (see :mod:`repro.flashsim.faults`)."""


class PowerLossError(DeviceFailedError):
    """Raised when a simulated power cut interrupts an I/O mid-operation.

    Armed via :meth:`repro.flashsim.faults.FaultInjector.crash_after_n_ios`;
    the interrupted operation may leave durable side effects behind (a torn
    page that fails its CRC, a half-erased block) on devices that model them
    (see :mod:`repro.flashsim.persistent`).  Subclasses
    :class:`DeviceFailedError` so the service layer's failure handling treats
    a power-cut shard exactly like a crash-stopped one."""


class TornPageError(BufferHashError):
    """Raised when reading a page whose on-media frame fails its CRC check —
    either a write was interrupted mid-page (torn write) or the containing
    block's erase was interrupted (the block reads as erased-dirty until it
    is erased again).  Only file-backed devices can produce this; recovery
    (:mod:`repro.core.recovery`) discards such pages instead of reading them."""


class ShardUnavailableError(BufferHashError):
    """Raised by the service layer when an operation has no live replica left
    to run on — every shard in the key's preference list is failed or has been
    removed from the cluster (see :mod:`repro.service.cluster`)."""
