"""Exception types raised by the BufferHash / CLAM core."""

from __future__ import annotations


class BufferHashError(Exception):
    """Base class for all BufferHash errors."""


class CapacityError(BufferHashError):
    """Raised when a component cannot accept more items (e.g. a full buffer
    that could not be flushed, or a cuckoo table whose insertion path cycled)."""


class ConfigurationError(BufferHashError):
    """Raised when a CLAM or BufferHash configuration is inconsistent
    (e.g. buffer larger than a flash partition, zero incarnations)."""


class KeyTooLargeError(BufferHashError):
    """Raised when a key or value does not fit in an incarnation page slot."""
