"""Exception types raised by the BufferHash / CLAM core."""

from __future__ import annotations


class BufferHashError(Exception):
    """Base class for all BufferHash errors."""


class CapacityError(BufferHashError):
    """Raised when a component cannot accept more items (e.g. a full buffer
    that could not be flushed, or a cuckoo table whose insertion path cycled)."""


class ConfigurationError(BufferHashError):
    """Raised when a CLAM or BufferHash configuration is inconsistent
    (e.g. buffer larger than a flash partition, zero incarnations)."""


class KeyTooLargeError(BufferHashError):
    """Raised when a key or value does not fit in an incarnation page slot."""


class DeviceFailedError(BufferHashError):
    """Raised when an I/O reaches a simulated device that has crash-stopped or
    is deterministically injecting errors (see :mod:`repro.flashsim.faults`)."""


class PowerLossError(DeviceFailedError):
    """Raised when a simulated power cut interrupts an I/O mid-operation.

    Armed via :meth:`repro.flashsim.faults.FaultInjector.crash_after_n_ios`;
    the interrupted operation may leave durable side effects behind (a torn
    page that fails its CRC, a half-erased block) on devices that model them
    (see :mod:`repro.flashsim.persistent`).  Subclasses
    :class:`DeviceFailedError` so the service layer's failure handling treats
    a power-cut shard exactly like a crash-stopped one."""


class TornPageError(BufferHashError):
    """Raised when reading a page whose on-media frame fails its CRC check —
    either a write was interrupted mid-page (torn write) or the containing
    block's erase was interrupted (the block reads as erased-dirty until it
    is erased again).  Only file-backed devices can produce this; recovery
    (:mod:`repro.core.recovery`) discards such pages instead of reading them."""


class ShardUnavailableError(BufferHashError):
    """Raised by the service layer when an operation has no live replica left
    to run on — every shard in the key's preference list is failed or has been
    removed from the cluster (see :mod:`repro.service.cluster`)."""


class WireProtocolError(BufferHashError):
    """Raised when a frame on the shard wire protocol cannot be decoded —
    version mismatch, unknown frame type, a length prefix past the frame
    size limit, or a worker-side failure with no finer-grained error code
    (see :mod:`repro.service.wire`)."""


class WorkerDiedError(DeviceFailedError):
    """Raised when the process hosting a shard dies mid-conversation (EOF or
    a broken pipe on its socket).  Subclasses :class:`DeviceFailedError` so
    the cluster's replica failover, hinted handoff and health accounting
    treat a dead worker exactly like a crash-stopped device."""


class WorkerStalledError(DeviceFailedError):
    """Raised when a shard worker misses its per-request deadline — the
    process is (or may still be) alive but hung, wedged mid-frame, or stuck
    behind a lossy transport, and every bounded retry has been exhausted.

    The gray-failure twin of :class:`WorkerDiedError`: a hang must not become
    a parent-process hang, so the :class:`~repro.service.parallel.RemoteShard`
    proxy opens its circuit (refusing further frames until the supervisor
    restarts the worker) and raises this.  Subclasses
    :class:`DeviceFailedError` so replica failover, hinted handoff and the
    kill/restart supervisor treat a stalled worker exactly like a dead one."""


class ClusterCloseError(BufferHashError):
    """Raised by ``ClusterService.close()`` after attempting to close *every*
    shard when one or more of them failed to close.  Carries the per-shard
    failures so no error is silently dropped and no later shard's file handle
    is leaked because an earlier shard raised."""

    def __init__(self, failures) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"{shard_id}: {type(error).__name__}: {error}" for shard_id, error in self.failures
        )
        super().__init__(f"failed to close {len(self.failures)} shard(s): {detail}")
