"""Deterministic hash functions used by buffers, Bloom filters and partitioning.

Python's built-in :func:`hash` is randomised per process for ``str``/``bytes``
and therefore unsuitable for a data structure whose on-"flash" layout must be
deterministic and reproducible across runs.  We use 64-bit FNV-1a with
per-purpose seeds, which is cheap, has good avalanche behaviour for the short
fingerprint-style keys the paper targets (32-64 bit hashes of content chunks)
and needs no dependencies.
"""

from __future__ import annotations

from typing import Union

_FNV64_OFFSET = 0xCBF29CE484222325
_FNV64_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF

KeyLike = Union[bytes, bytearray, memoryview, str, int]


def to_key_bytes(key: KeyLike) -> bytes:
    """Canonical byte representation of a key.

    ``bytes``-like objects are used as-is, strings are UTF-8 encoded and
    integers are encoded big-endian in the fewest whole bytes that hold them
    (so distinct integers map to distinct byte strings).
    """
    if isinstance(key, (bytes, bytearray, memoryview)):
        return bytes(key)
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        if key < 0:
            raise ValueError("integer keys must be non-negative")
        length = max(1, (key.bit_length() + 7) // 8)
        return key.to_bytes(length, "big")
    raise TypeError(f"unsupported key type: {type(key).__name__}")


def _avalanche64(value: int) -> int:
    """Finalising mix (MurmurHash3 fmix64) spreading entropy into every bit.

    Plain FNV-1a has the property that the low ``k`` bits of the output depend
    only on the low bits of the state, so two FNV variants with different
    seeds stay correlated modulo powers of two.  BufferHash takes *several*
    independent moduli of a key's hashes (super-table partition, cuckoo
    buckets, Bloom positions, incarnation page); without this finaliser,
    conditioning on one of them (e.g. all keys of one super table) badly
    skews the others.
    """
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK64
    value ^= value >> 33
    return value


def fnv1a_64(data: bytes, seed: int = 0) -> int:
    """64-bit FNV-1a hash of ``data``, mixed with ``seed`` and finalised."""
    value = (_FNV64_OFFSET ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
    for byte in data:
        value ^= byte
        value = (value * _FNV64_PRIME) & _MASK64
    return _avalanche64(value)


def hash_key(key: KeyLike, seed: int = 0) -> int:
    """64-bit hash of an arbitrary key with the given seed."""
    return fnv1a_64(to_key_bytes(key), seed)


def double_hashes(key: KeyLike, count: int, modulus: int) -> list[int]:
    """``count`` hash values in ``[0, modulus)`` via double hashing.

    Classic Kirsch-Mitzenmacher construction: two independent base hashes
    combine linearly to simulate ``count`` independent hash functions, which
    is what Bloom filters need.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    data = to_key_bytes(key)
    h1 = fnv1a_64(data, seed=0x51ED)
    h2 = fnv1a_64(data, seed=0xC0FFEE) | 1  # odd so it is coprime with power-of-two moduli
    return [((h1 + i * h2) & _MASK64) % modulus for i in range(count)]
