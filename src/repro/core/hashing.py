"""Deterministic hashing and the hash-once :class:`KeyDigest` pipeline.

Python's built-in :func:`hash` is randomised per process for ``str``/``bytes``
and therefore unsuitable for a data structure whose on-"flash" layout must be
deterministic and reproducible across runs.  We use 64-bit FNV-1a with
per-purpose seeds, which is cheap, has good avalanche behaviour for the short
fingerprint-style keys the paper targets (32-64 bit hashes of content chunks)
and needs no dependencies.

BufferHash derives *several* values from one key: the super-table partition
(:data:`PARTITION_SEED`), the two cuckoo buckets (:data:`CUCKOO_SEED_FIRST` /
:data:`CUCKOO_SEED_SECOND`), the two Kirsch-Mitzenmacher Bloom base hashes
(:data:`BLOOM_SEED_H1` / :data:`BLOOM_SEED_H2`), the incarnation page
(:data:`PAGE_SEED`) and, in the service layer, the consistent-hash ring
position (:data:`RING_SEED`).  Naively each layer re-hashes the full key
bytes, so one lookup pays 6-10+ FNV passes.  :class:`KeyDigest` is the
hash-once fix: the key is canonicalised to bytes once at the public API
boundary, each seeded 64-bit digest is computed lazily *at most once* and
memoised, and derived values (bucket pairs, Bloom positions) are memoised per
geometry — all **bit-identical** to hashing the key bytes directly with the
same seed, so the on-flash layout does not change.  A small FIFO-bounded
digest cache (:func:`as_digest`) additionally reuses digests across
operations on the same key, which is the common case for fingerprint indexes
(a lookup is usually followed by an insert of the same fingerprint).

For measurement, :func:`count_hash_calls` records every full-key FNV pass by
seed (and every digest construction) so tests and ``benchmarks/
bench_hotpath.py`` can assert that each layer hashes a key at most once per
operation.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple, Union

_FNV64_OFFSET = 0xCBF29CE484222325
_FNV64_PRIME = 0x100000001B3
_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = 0xFFFFFFFFFFFFFFFF

# -- Per-purpose seeds -------------------------------------------------------------
#
# Every layer of the stack hashes keys with its own seed so the derived
# moduli stay independent (see the avalanche note in :func:`fnv1a_64`).  The
# registry below maps each seed to the layer that owns it; instrumentation
# reports hash-call counts per layer through it.

#: Super-table partition index (``BufferHash.table_for``).
PARTITION_SEED = 0x9A27
#: First cuckoo bucket of the in-memory buffer.
CUCKOO_SEED_FIRST = 0xA11CE
#: Second (alternate) cuckoo bucket.
CUCKOO_SEED_SECOND = 0xB0B
#: First Kirsch-Mitzenmacher Bloom base hash.
BLOOM_SEED_H1 = 0x51ED
#: Second Kirsch-Mitzenmacher Bloom base hash.
BLOOM_SEED_H2 = 0xC0FFEE
#: Page assignment within an on-flash incarnation.
PAGE_SEED = 0x17CA
#: Consistent-hash ring position (``repro.service.router``).
RING_SEED = 0x5A4D
#: Page assignment of the unbuffered-ablation CLAM (``use_buffering=False``).
UNBUFFERED_PAGE_SEED = 0xFAB
#: Page assignment of the naive flash-hash baseline.
FLASH_BASELINE_SEED = 0xF1A5
#: Bucket assignment of the BerkeleyDB-style disk-hash baseline.
DISK_BASELINE_SEED = 0xBDB

#: Seed -> human-readable layer name, used by hash-call accounting.
SEED_LAYERS: Dict[int, str] = {
    PARTITION_SEED: "partition",
    CUCKOO_SEED_FIRST: "cuckoo_first",
    CUCKOO_SEED_SECOND: "cuckoo_second",
    BLOOM_SEED_H1: "bloom_h1",
    BLOOM_SEED_H2: "bloom_h2",
    PAGE_SEED: "incarnation_page",
    RING_SEED: "shard_ring",
    UNBUFFERED_PAGE_SEED: "unbuffered_page",
    FLASH_BASELINE_SEED: "flash_baseline",
    DISK_BASELINE_SEED: "disk_baseline",
}


def to_key_bytes(key: "KeyLike") -> bytes:
    """Canonical byte representation of a key.

    ``bytes``-like objects are used as-is, strings are UTF-8 encoded,
    integers are encoded big-endian in the fewest whole bytes that hold them
    (so distinct integers map to distinct byte strings) and a
    :class:`KeyDigest` contributes the bytes it was built from.

    .. note:: **Cross-type collisions are intentional.**  The canonical
       encodings of different key *types* share one byte space, so the int
       ``0x41`` and the bytes ``b"A"`` (and the str ``"A"``) all canonicalise
       to ``b"A"`` and are the *same key*.  BufferHash indexes content
       fingerprints, which arrive as raw bytes of a fixed width; the integer
       encoding exists so tests and examples can use small ints conveniently,
       not to provide a type-tagged key space.  Callers that index both raw
       bytes and their integer forms must disambiguate them before hashing
       (``tests/test_hashing.py`` freezes this behaviour).
    """
    if isinstance(key, (bytes, bytearray, memoryview)):
        return bytes(key)
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        if key < 0:
            raise ValueError("integer keys must be non-negative")
        length = max(1, (key.bit_length() + 7) // 8)
        return key.to_bytes(length, "big")
    if isinstance(key, KeyDigest):
        return key.data
    raise TypeError(f"unsupported key type: {type(key).__name__}")


# -- Hash-call accounting -----------------------------------------------------------

#: When True, :func:`fnv1a_64` records each full-key pass into the active log.
_counting = False
_active_log: "HashCallLog" = None  # type: ignore[assignment]


class HashCallLog:
    """Counts of full-key hash passes (by seed) and digest constructions."""

    __slots__ = ("by_seed", "digest_builds")

    def __init__(self) -> None:
        self.by_seed: Dict[int, int] = {}
        self.digest_builds = 0

    @property
    def total(self) -> int:
        """Total full-key FNV passes recorded."""
        return sum(self.by_seed.values())

    def by_layer(self) -> Dict[str, int]:
        """Pass counts keyed by layer name (unknown seeds keyed by hex)."""
        out: Dict[str, int] = {}
        for seed, count in self.by_seed.items():
            layer = SEED_LAYERS.get(seed, hex(seed))
            out[layer] = out.get(layer, 0) + count
        return out

    def snapshot(self) -> Dict[str, float]:
        """Flat copy: per-layer counts plus totals (for JSON emission)."""
        out: Dict[str, float] = {f"fnv_{k}": float(v) for k, v in self.by_layer().items()}
        out["fnv_total"] = float(self.total)
        out["digest_builds"] = float(self.digest_builds)
        return out


@contextmanager
def count_hash_calls() -> Iterator[HashCallLog]:
    """Record every full-key FNV pass (by seed) and digest build in a block.

    Nested use is not supported; the counter adds one branch to the hash hot
    path, so it stays disabled outside the ``with`` block.
    """
    global _counting, _active_log
    log = HashCallLog()
    previous = (_counting, _active_log)
    _counting, _active_log = True, log
    try:
        yield log
    finally:
        _counting, _active_log = previous


def fnv1a_64(data: bytes, seed: int = 0) -> int:
    """64-bit FNV-1a hash of ``data``, mixed with ``seed`` and finalised.

    This is the only function that traverses the full key bytes; everything
    else derives from its output.

    The finalising mix (MurmurHash3 fmix64, inlined below — one call frame
    per pass matters when keys are hashed millions of times) spreads entropy
    into every bit.  Plain FNV-1a has the property that the low ``k`` bits of
    the output depend only on the low bits of the state, so two FNV variants
    with different seeds stay correlated modulo powers of two; BufferHash
    takes *several* independent moduli of a key's hashes (super-table
    partition, cuckoo buckets, Bloom positions, incarnation page), and
    without the finaliser conditioning on one of them (e.g. all keys of one
    super table) would badly skew the others.
    """
    if _counting:
        counts = _active_log.by_seed
        counts[seed] = counts.get(seed, 0) + 1
    prime = _FNV64_PRIME
    mask = _MASK64
    value = (_FNV64_OFFSET ^ (seed * _GOLDEN64)) & mask
    for byte in data:
        value = ((value ^ byte) * prime) & mask
    # fmix64 finaliser (see docstring).
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & mask
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & mask
    return value ^ (value >> 33)


class KeyDigest:
    """Hash-once handle for one key: canonical bytes plus memoised digests.

    A digest is built from a key's canonical bytes exactly once and then
    threaded through every layer in place of the raw key (it is itself a
    :data:`KeyLike`, accepted anywhere a key is).  Each seeded 64-bit digest
    is computed lazily on first use and memoised, as are the derived
    Kirsch-Mitzenmacher Bloom positions per ``(count, modulus)`` geometry, so
    a lookup that consults the partition map, the cuckoo buffer, several
    incarnations' Bloom filters and the incarnation page hashes the key bytes
    at most once per seed — instead of once per layer *use*.

    Every derived value is bit-identical to calling :func:`hash_key` /
    :func:`double_hashes` on the raw key with the same arguments; the class
    changes only how often the bytes are traversed, never what is computed.
    """

    __slots__ = ("data", "_seeded", "_positions")

    def __init__(self, key: "KeyLike") -> None:
        self.data = key if type(key) is bytes else to_key_bytes(key)
        self._seeded: Dict[int, int] = {}
        self._positions: Dict[Tuple[int, int], List[int]] = {}
        if _counting:
            _active_log.digest_builds += 1

    def digest(self, seed: int = 0) -> int:
        """The 64-bit seeded digest, computed on first use and memoised."""
        value = self._seeded.get(seed)
        if value is None:
            value = fnv1a_64(self.data, seed)
            self._seeded[seed] = value
        return value

    def bloom_positions(self, count: int, modulus: int) -> List[int]:
        """Kirsch-Mitzenmacher positions, memoised per (count, modulus)."""
        key = (count, modulus)
        positions = self._positions.get(key)
        if positions is None:
            h1 = self.digest(BLOOM_SEED_H1)
            h2 = self.digest(BLOOM_SEED_H2) | 1  # odd: coprime with 2^k moduli
            positions = [((h1 + i * h2) & _MASK64) % modulus for i in range(count)]
            self._positions[key] = positions
        return positions

    def to_wire(self) -> bytes:
        """Serialise for the shard wire protocol (:mod:`repro.service.wire`).

        Carries the canonical key bytes plus every seeded digest memoised so
        far, so a worker process that receives the key resumes with the hash
        work the client side already paid for.  Derived Bloom positions are
        geometry-dependent and cheap to re-derive from the digests, so they
        do not travel.  The format is little-endian: a 4-byte key length, the
        key bytes, a 1-byte memo count, then ``(seed, digest)`` pairs of 8
        bytes each, in ascending seed order (deterministic framing).
        """
        seeded = self._seeded
        if len(seeded) > 255:  # pragma: no cover - ~10 seeds exist in the codebase
            seeded = dict(sorted(seeded.items())[:255])
        parts = [struct.pack("<IB", len(self.data), len(seeded)), self.data]
        for seed, value in sorted(seeded.items()):
            parts.append(struct.pack("<QQ", seed, value))
        return b"".join(parts)

    @classmethod
    def from_wire(cls, payload: bytes, offset: int = 0) -> Tuple["KeyDigest", int]:
        """Inverse of :meth:`to_wire`; returns the digest and the next offset.

        The memoised seeds are restored verbatim.  Digests are value-pure
        (a seeded digest depends only on the key bytes), so a restored memo
        can never change behaviour — only skip recomputation on the worker.
        """
        key_len, seed_count = struct.unpack_from("<IB", payload, offset)
        offset += 5
        digest = cls(bytes(payload[offset : offset + key_len]))
        offset += key_len
        for _ in range(seed_count):
            seed, value = struct.unpack_from("<QQ", payload, offset)
            digest._seeded[seed] = value
            offset += 16
        return digest, offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyDigest({self.data!r}, seeds={sorted(self._seeded)})"


KeyLike = Union[bytes, bytearray, memoryview, str, int, KeyDigest]


# -- Cross-operation digest cache ---------------------------------------------------
#
# Fingerprint workloads touch the same keys repeatedly (a dedup lookup is
# followed by an insert of the same fingerprint; WAN-opt caches re-query hot
# chunks), so digests are also reused *across* operations through a small
# FIFO-bounded cache.  The cache is value-pure — a digest depends only on the
# key bytes — so hits can never change behaviour, only skip recomputation.

_DIGEST_CACHE: Dict[bytes, KeyDigest] = {}
_digest_cache_capacity = 1 << 16


def as_digest(key: KeyLike) -> KeyDigest:
    """The :class:`KeyDigest` for ``key``, reusing a cached digest if present.

    Called once per operation at each public API boundary; passing an
    existing digest through is a no-op, so nested boundaries (service router
    -> CLAM -> BufferHash) share one digest per operation.
    """
    if type(key) is KeyDigest:
        return key
    data = key if type(key) is bytes else to_key_bytes(key)
    digest = _DIGEST_CACHE.get(data)
    if digest is None:
        digest = KeyDigest(data)
        if _digest_cache_capacity > 0:
            cache = _DIGEST_CACHE
            if len(cache) >= _digest_cache_capacity:
                del cache[next(iter(cache))]  # FIFO: dicts preserve insertion order
            cache[data] = digest
    return digest


def clear_digest_cache() -> None:
    """Drop every cached digest (tests and memory-sensitive callers)."""
    _DIGEST_CACHE.clear()


def set_digest_cache_capacity(capacity: int) -> None:
    """Bound the cross-operation digest cache (0 disables caching)."""
    global _digest_cache_capacity
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    _digest_cache_capacity = capacity
    if capacity == 0:
        _DIGEST_CACHE.clear()
    else:
        while len(_DIGEST_CACHE) > capacity:
            del _DIGEST_CACHE[next(iter(_DIGEST_CACHE))]


def digest_cache_info() -> Dict[str, int]:
    """Current size and capacity of the digest cache."""
    return {"size": len(_DIGEST_CACHE), "capacity": _digest_cache_capacity}


def canonical_key(key: KeyLike, hash_once: bool) -> KeyLike:
    """The one canonicalisation policy used at every public API boundary.

    Hash-once mode wraps the key in a (cached) :class:`KeyDigest` that every
    layer below reuses; the ablation mode passes canonical bytes through so
    each layer re-hashes exactly as the pre-digest implementation did.  Both
    are idempotent, so nested boundaries (service router -> CLAM ->
    BufferHash) canonicalise in O(1) after the first.
    """
    if hash_once:
        return as_digest(key)
    return key_data(key)


def key_data(key: KeyLike) -> bytes:
    """Canonical bytes of ``key`` without copying when already canonical."""
    if type(key) is KeyDigest:
        return key.data
    if type(key) is bytes:
        return key
    return to_key_bytes(key)


def hash_key(key: KeyLike, seed: int = 0) -> int:
    """64-bit hash of an arbitrary key with the given seed.

    Digest-aware: a :class:`KeyDigest` answers from (or fills) its memo, any
    other key type is canonicalised and hashed directly.  Both paths return
    the same value for the same key bytes.
    """
    if type(key) is KeyDigest:
        return key.digest(seed)
    return fnv1a_64(key if type(key) is bytes else to_key_bytes(key), seed)


def double_hashes(key: KeyLike, count: int, modulus: int) -> List[int]:
    """``count`` hash values in ``[0, modulus)`` via double hashing.

    Classic Kirsch-Mitzenmacher construction: two independent base hashes
    (:data:`BLOOM_SEED_H1` / :data:`BLOOM_SEED_H2`) combine linearly to
    simulate ``count`` independent hash functions, which is what Bloom
    filters need.  Digest-aware like :func:`hash_key`; with a
    :class:`KeyDigest` the positions for one filter geometry are computed
    once and shared by every Bloom filter of that geometry the key meets.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    if type(key) is KeyDigest:
        return key.bloom_positions(count, modulus)
    data = key if type(key) is bytes else to_key_bytes(key)
    h1 = fnv1a_64(data, seed=BLOOM_SEED_H1)
    h2 = fnv1a_64(data, seed=BLOOM_SEED_H2) | 1  # odd: coprime with 2^k moduli
    return [((h1 + i * h2) & _MASK64) % modulus for i in range(count)]
