"""The CLAM facade: a cheap-and-large CAM built from DRAM plus flash.

A :class:`CLAM` wires together a storage device (Intel-like SSD,
Transcend-like SSD, magnetic disk or raw flash chip), a
:class:`~repro.core.bufferhash.BufferHash` configured from a
:class:`~repro.core.config.CLAMConfig`, and per-operation statistics.  It is
the object applications (the WAN optimizer, the deduplication index, the
content-name directory) interact with.

For the §7.3.1 ablations, a CLAM can also be built with ``use_buffering=False``
in its configuration: inserts then bypass BufferHash entirely and issue one
random page write each, exactly the "conventional hash table on flash"
behaviour the paper compares against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.bloom import BloomFilter
from repro.core.bufferhash import BufferHash
from repro.core.config import CLAMConfig
from repro.core.errors import ConfigurationError, DeviceFailedError
from repro.core.eviction import EvictionPolicy
from repro.core.hashing import (
    UNBUFFERED_PAGE_SEED,
    KeyLike,
    canonical_key,
    hash_key,
    key_data,
)
from repro.core.results import (
    DeleteResult,
    InsertResult,
    LookupResult,
    OperationStats,
    ServedFrom,
)
from repro.flashsim.clock import SimulationClock
from repro.flashsim.device import StorageDevice
from repro.telemetry import trace as _trace
from repro.telemetry.registry import MetricsRegistry
from repro.flashsim.disk import MAGNETIC_DISK_PROFILE, MagneticDisk
from repro.flashsim.dram import DRAMDevice
from repro.flashsim.flash_chip import FlashChip, GENERIC_FLASH_CHIP_PROFILE
from repro.flashsim.ssd import INTEL_SSD_PROFILE, SSD, TRANSCEND_SSD_PROFILE
from repro.flashsim.stats import IOKind

#: Storage names accepted by :func:`build_device` and :class:`CLAM`.
STORAGE_PROFILES = ("intel-ssd", "transcend-ssd", "disk", "flash-chip", "dram")


def build_device(
    storage: str,
    clock: Optional[SimulationClock] = None,
    keep_events: bool = False,
) -> StorageDevice:
    """Create a simulated storage device by profile name."""
    clock = clock if clock is not None else SimulationClock()
    name = storage.lower()
    if name in ("intel-ssd", "intel"):
        return SSD(profile=INTEL_SSD_PROFILE, clock=clock, keep_events=keep_events)
    if name in ("transcend-ssd", "transcend"):
        return SSD(profile=TRANSCEND_SSD_PROFILE, clock=clock, keep_events=keep_events)
    if name in ("disk", "magnetic-disk", "hdd"):
        return MagneticDisk(profile=MAGNETIC_DISK_PROFILE, clock=clock, keep_events=keep_events)
    if name in ("flash-chip", "chip", "nand"):
        return FlashChip(profile=GENERIC_FLASH_CHIP_PROFILE, clock=clock, keep_events=keep_events)
    if name == "dram":
        return DRAMDevice(clock=clock, keep_events=keep_events)
    raise ConfigurationError(
        f"unknown storage profile {storage!r}; expected one of {STORAGE_PROFILES}"
    )


class CLAM:
    """Cheap and Large CAM: hash-table API over DRAM buffers and flash storage.

    Parameters
    ----------
    config:
        Structural parameters; defaults to :meth:`CLAMConfig.scaled`.
    storage:
        Either a profile name (``"intel-ssd"``, ``"transcend-ssd"``,
        ``"disk"``, ``"flash-chip"``, ``"dram"``) or an already constructed
        :class:`~repro.flashsim.device.StorageDevice`.
    clock:
        Simulation clock; when omitted the device's clock is used (or a new
        one is created).
    eviction_policy:
        Optional explicit policy instance (e.g. a configured
        :class:`~repro.core.eviction.PriorityBasedEviction`).
    keep_latency_samples:
        Whether to retain every operation latency for CDF plots (Figures 6-8);
        disable for very long runs to save memory.
    """

    def __init__(
        self,
        config: Optional[CLAMConfig] = None,
        storage: Union[str, StorageDevice, list, tuple] = "intel-ssd",
        clock: Optional[SimulationClock] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        keep_latency_samples: bool = True,
        store=None,
    ) -> None:
        self.config = config if config is not None else CLAMConfig.scaled()
        if isinstance(storage, (list, tuple)):
            # Multiple SSDs: super tables are distributed across them (§5.2).
            if not storage:
                raise ConfigurationError("storage list must not be empty")
            self.clock = clock if clock is not None else SimulationClock()
            self.devices = []
            for member in storage:
                if isinstance(member, StorageDevice):
                    if member.clock is not self.clock and clock is not None:
                        raise ConfigurationError("all devices must share the explicit clock")
                    self.clock = member.clock
                    self.devices.append(member)
                else:
                    self.devices.append(build_device(member, clock=self.clock))
            self.device = self.devices[0]
        elif isinstance(storage, StorageDevice):
            self.device = storage
            self.devices = [storage]
            if clock is not None and clock is not storage.clock:
                raise ConfigurationError("explicit clock must match the device clock")
            self.clock = storage.clock
        else:
            self.clock = clock if clock is not None else SimulationClock()
            self.device = build_device(storage, clock=self.clock)
            self.devices = [self.device]
        self.stats = OperationStats(keep_samples=keep_latency_samples)

        # Telemetry: the histogram/counter objects are resolved once here so
        # the per-operation cost is a single cached ``is None`` check when
        # disabled and one ``observe``/``inc`` call when enabled.
        if self.config.telemetry_enabled:
            self.telemetry: Optional[MetricsRegistry] = MetricsRegistry()
            self._tel_lookup = self.telemetry.histogram("lookup_latency_ms")
            self._tel_insert = self.telemetry.histogram("insert_latency_ms")
            self._tel_ops = self.telemetry.counter("operations")
        else:
            self.telemetry = None
            self._tel_lookup = None
            self._tel_insert = None
            self._tel_ops = None

        self._unbuffered_data: Dict[bytes, bytes] = {}
        self._unbuffered_bloom: Optional[BloomFilter] = None
        if self.config.use_buffering:
            self.bufferhash: Optional[BufferHash] = BufferHash(
                config=self.config,
                device=self.devices if len(self.devices) > 1 else self.device,
                clock=self.clock,
                eviction_policy=eviction_policy,
                store=store,
            )
        else:
            self.bufferhash = None
            if self.config.use_bloom_filters:
                total_items = self.config.total_items_capacity(
                    self.config.incarnations_per_table or 16
                )
                self._unbuffered_bloom = BloomFilter.for_capacity(
                    max(1024, total_items), bits_per_item=self.config.bloom_bits_per_entry
                )

    # -- Hash-table API -----------------------------------------------------------------

    def _check_available(self) -> None:
        """Refuse every operation while any backing device is crash-stopped.

        A crash-stop (see :mod:`repro.flashsim.faults`) models the whole node
        dying, so even operations that would have been served from the DRAM
        buffer are refused — without this gate a dead shard would keep
        answering from memory.  Intermittent-error and degraded fault modes
        are *not* gated here; they surface through the device I/O path only.
        """
        for device in self.devices:
            if device.faults.is_crashed:
                raise DeviceFailedError(
                    f"CLAM refusing operation: device {device.name!r} has crash-stopped"
                )

    def _canonical(self, key: KeyLike) -> KeyLike:
        """Canonicalise ``key`` exactly once at the public API boundary.

        Hash-once mode wraps the key in a (cached)
        :class:`~repro.core.hashing.KeyDigest` that every layer below —
        partitioning, cuckoo buffer, Bloom filters, incarnation pages —
        reuses; the ``use_hash_once=False`` ablation reproduces the original
        per-layer re-hashing by passing plain canonical bytes (the policy is
        :func:`repro.core.hashing.canonical_key`, shared by every boundary).
        """
        return canonical_key(key, self.config.use_hash_once)

    def insert(self, key: KeyLike, value: bytes) -> InsertResult:
        """Insert or update a (key, value) pair."""
        self._check_available()
        key = self._canonical(key)
        tracer = _trace.ACTIVE
        if tracer is None:
            if self.bufferhash is not None:
                result = self.bufferhash.insert(key, value)
            else:
                result = self._unbuffered_insert(key, value)
        else:
            span = tracer.begin("clam.insert", self.clock)
            try:
                if self.bufferhash is not None:
                    result = self.bufferhash.insert(key, value)
                else:
                    result = self._unbuffered_insert(key, value)
            finally:
                tracer.end(span, self.clock)
        self.stats.record_insert(result)
        if self._tel_insert is not None:
            self._tel_insert.observe(result.latency_ms)
            self._tel_ops.inc()
        return result

    def update(self, key: KeyLike, value: bytes) -> InsertResult:
        """Lazy update (alias of insert)."""
        return self.insert(key, value)

    def lookup(self, key: KeyLike) -> LookupResult:
        """Look up the most recent value for a key."""
        self._check_available()
        key = self._canonical(key)
        tracer = _trace.ACTIVE
        if tracer is None:
            if self.bufferhash is not None:
                result = self.bufferhash.lookup(key)
            else:
                result = self._unbuffered_lookup(key)
        else:
            span = tracer.begin("clam.lookup", self.clock)
            try:
                if self.bufferhash is not None:
                    result = self.bufferhash.lookup(key)
                else:
                    result = self._unbuffered_lookup(key)
            finally:
                tracer.end(span, self.clock)
            span.attributes["served_from"] = result.served_from.value
        self.stats.record_lookup(result)
        if self._tel_lookup is not None:
            self._tel_lookup.observe(result.latency_ms)
            self._tel_ops.inc()
        return result

    def delete(self, key: KeyLike) -> DeleteResult:
        """Delete a key."""
        self._check_available()
        key = self._canonical(key)
        if self.bufferhash is not None:
            result = self.bufferhash.delete(key)
        else:
            result = self._unbuffered_delete(key)
        self.stats.deletes += 1
        if self._tel_ops is not None:
            self._tel_ops.inc()
        return result

    def get(self, key: KeyLike) -> Optional[bytes]:
        """Convenience accessor returning just the value (or ``None``)."""
        return self.lookup(key).value

    def __contains__(self, key: KeyLike) -> bool:
        return self.lookup(key).found

    # -- Batched API ----------------------------------------------------------------------
    #
    # Loop fallbacks satisfying the batch half of
    # :class:`repro.wanopt.engine.FingerprintIndex`: a single CLAM has no
    # shards to fan out to, so a batch is simply the operations in order on
    # the one device (results are exactly what sequential calls produce).

    def lookup_batch(self, keys: Iterable[KeyLike]) -> List[LookupResult]:
        """Look up every key in order; results in submission order."""
        return [self.lookup(key) for key in keys]

    def insert_batch(self, items: Iterable[Tuple[KeyLike, bytes]]) -> List[InsertResult]:
        """Insert every ``(key, value)`` pair in order; results in order."""
        return [self.insert(key, value) for key, value in items]

    # -- Unbuffered (ablation) mode -------------------------------------------------------
    #
    # Keys arrive already canonicalised by ``_canonical`` (the public API
    # boundary), so these handlers never re-run ``to_key_bytes``; ``key_data``
    # just unwraps the canonical bytes from a digest.

    def _unbuffered_page_for(self, key: KeyLike) -> int:
        return hash_key(key, seed=UNBUFFERED_PAGE_SEED) % self.device.geometry.total_pages

    def _unbuffered_insert(self, key: KeyLike, value: bytes) -> InsertResult:
        data = key_data(key)
        page = self._unbuffered_page_for(key)
        memory_cost = self.config.memory_cost.buffer_op_ms
        self.clock.advance(memory_cost)
        latency = memory_cost + self.device.write_page(page, data[: self.device.geometry.page_size])
        self._unbuffered_data[data] = bytes(value)
        if self._unbuffered_bloom is not None:
            self._unbuffered_bloom.add(key)
        return InsertResult(key=data, latency_ms=latency, flash_writes=1)

    def _unbuffered_lookup(self, key: KeyLike) -> LookupResult:
        data = key_data(key)
        memory_cost = self.config.memory_cost.buffer_op_ms
        self.clock.advance(memory_cost)
        latency = memory_cost
        flash_reads = 0
        if self._unbuffered_bloom is not None and key not in self._unbuffered_bloom:
            return LookupResult(
                key=data, value=None, latency_ms=latency, served_from=ServedFrom.MISSING
            )
        page = self._unbuffered_page_for(key)
        _payload, read_latency = self.device.read_page(page)
        latency += read_latency
        flash_reads = 1
        value = self._unbuffered_data.get(data)
        served = ServedFrom.INCARNATION if value is not None else ServedFrom.MISSING
        return LookupResult(
            key=data,
            value=value,
            latency_ms=latency,
            served_from=served,
            flash_reads=flash_reads,
        )

    def _unbuffered_delete(self, key: KeyLike) -> DeleteResult:
        data = key_data(key)
        memory_cost = self.config.memory_cost.buffer_op_ms
        self.clock.advance(memory_cost)
        removed = self._unbuffered_data.pop(data, None) is not None
        return DeleteResult(key=data, latency_ms=memory_cost, removed_from_buffer=removed)

    # -- Reporting -----------------------------------------------------------------------

    def throughput_ops_per_second(self) -> float:
        """Hash operations per simulated second so far."""
        elapsed_ms = self.clock.now_ms
        total_ops = self.stats.lookups + self.stats.inserts + self.stats.deletes
        if elapsed_ms <= 0:
            return 0.0
        return total_ops / (elapsed_ms / 1000.0)

    def counters(self) -> Dict[str, float]:
        """Cheap flat snapshot of this instance's counters and device I/O.

        Unlike :meth:`describe`, this copies only O(1) scalars (no latency
        sample lists, no derived summaries), so a service layer can poll a
        whole fleet of CLAMs per batch without measurable overhead.  Flash
        counters come straight from :class:`~repro.flashsim.stats.IOStats`.
        """
        summary = self.stats.counters()
        summary["clock_ms"] = self.clock.now_ms
        summary.update(self._bufferhash_counters())
        for kind in IOKind:
            ops = sum(device.stats.count(kind) for device in self.devices)
            nbytes = sum(device.stats.bytes_moved(kind) for device in self.devices)
            busy = sum(device.stats.total_latency_ms(kind) for device in self.devices)
            summary[f"device_{kind.value}_ops"] = float(ops)
            summary[f"device_{kind.value}_bytes"] = float(nbytes)
            summary[f"device_{kind.value}_ms"] = busy
        return summary

    def describe(self) -> Dict[str, float]:
        """Summary dictionary used by benchmarks and examples."""
        summary: Dict[str, float] = {
            "lookups": float(self.stats.lookups),
            "inserts": float(self.stats.inserts),
            "mean_lookup_ms": self.stats.mean_lookup_latency_ms,
            "mean_insert_ms": self.stats.mean_insert_latency_ms,
            "max_lookup_ms": self.stats.lookup_latency_max_ms,
            "max_insert_ms": self.stats.insert_latency_max_ms,
            "lookup_success_rate": self.stats.lookup_success_rate,
            "throughput_ops_per_s": self.throughput_ops_per_second(),
        }
        summary.update(self._bufferhash_counters())
        return summary

    def _bufferhash_counters(self) -> Dict[str, float]:
        """BufferHash aggregate counters (empty in unbuffered ablation mode)."""
        if self.bufferhash is None:
            return {}
        return {
            "flushes": float(self.bufferhash.total_flushes),
            "evictions": float(self.bufferhash.total_evictions),
            "incarnations": float(self.bufferhash.total_incarnations),
        }
