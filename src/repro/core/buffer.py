"""In-memory buffer of a super table.

The buffer is a small cuckoo hash table plus the Bloom filter that will be
frozen as the next incarnation's signature.  All newly inserted values land
here; the super table flushes the buffer to flash when it reaches its
configured capacity (§5.1, "Buffer").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.core.cuckoo import CuckooHashTable
from repro.core.errors import CapacityError
from repro.core.hashing import KeyLike


class Buffer:
    """Bounded in-memory staging area for one super table."""

    def __init__(
        self,
        capacity_items: int,
        num_slots: int,
        bloom_bits: int,
        bloom_hashes: Optional[int] = None,
    ) -> None:
        if capacity_items <= 0:
            raise ValueError("capacity_items must be positive")
        if num_slots < capacity_items:
            raise ValueError("num_slots must be at least capacity_items")
        self.capacity_items = capacity_items
        self.num_slots = num_slots
        self.bloom_bits = bloom_bits
        if bloom_hashes is None:
            bloom_hashes = optimal_num_hashes(bloom_bits / max(1, capacity_items))
        self.bloom_hashes = bloom_hashes
        self._table = CuckooHashTable(num_slots)
        self._bloom = BloomFilter(bloom_bits, bloom_hashes)

    # -- Introspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._table)

    @property
    def is_full(self) -> bool:
        """Whether the buffer has reached its flush threshold."""
        return len(self._table) >= self.capacity_items

    @property
    def bloom_filter(self) -> BloomFilter:
        """The filter accumulating this buffer's keys (frozen at flush time)."""
        return self._bloom

    def items(self) -> Dict[bytes, bytes]:
        """Snapshot of the buffer's contents."""
        return dict(self._table.items())

    # -- Operations ----------------------------------------------------------------

    def get(self, key: KeyLike) -> Optional[bytes]:
        """Value stored for ``key`` in the buffer, or ``None``."""
        return self._table.get(key)

    def put(self, key: KeyLike, value: bytes) -> bool:
        """Insert or update ``key``.

        Returns ``True`` on success and ``False`` when the buffer cannot take
        the item (either it is at capacity or the cuckoo path cycled); the
        caller should flush and retry.
        """
        if self.is_full and self._table.get(key) is None:
            return False
        try:
            self._table.put(key, value)
        except CapacityError:
            return False
        self._bloom.add(key)
        return True

    def delete(self, key: KeyLike) -> bool:
        """Remove ``key`` from the buffer (Bloom bits are left set; they only
        cause a harmless false positive)."""
        return self._table.delete(key)

    def drain(self) -> Tuple[Dict[bytes, bytes], BloomFilter]:
        """Return the buffer contents and frozen Bloom filter, then reset.

        Called by the super table when it flushes the buffer to flash.
        """
        items = dict(self._table.items())
        frozen = self._bloom.copy()
        self._table.clear()
        self._bloom.clear()
        return items, frozen
