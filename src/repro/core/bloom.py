"""Plain Bloom filter, one per incarnation.

A super table keeps one Bloom filter per on-flash incarnation (§5.1 of the
paper).  The filter is built while items are inserted into the in-memory
buffer; when the buffer is flushed, the filter becomes the signature of the
new incarnation and is retained in DRAM until that incarnation is evicted.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.core.hashing import KeyLike, double_hashes


def optimal_num_hashes(bits_per_item: float) -> int:
    """Number of hash functions minimising false positives: ``m/n * ln 2``."""
    if bits_per_item <= 0:
        raise ValueError("bits_per_item must be positive")
    return max(1, round(bits_per_item * math.log(2)))


def false_positive_rate(num_bits: int, num_items: int, num_hashes: int) -> float:
    """Theoretical false-positive probability of a Bloom filter."""
    if num_bits <= 0:
        raise ValueError("num_bits must be positive")
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    if num_hashes <= 0:
        raise ValueError("num_hashes must be positive")
    if num_items == 0:
        return 0.0
    fill = 1.0 - math.exp(-num_hashes * num_items / num_bits)
    return fill ** num_hashes


class BloomFilter:
    """A fixed-size Bloom filter over arbitrary keys.

    The bit array is held as a single Python integer, which keeps membership
    tests cheap and makes the filter trivially copyable when it is "frozen"
    alongside a flushed incarnation.
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "_count")

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = 0
        self._count = 0

    @classmethod
    def for_capacity(cls, capacity: int, bits_per_item: float = 16.0) -> "BloomFilter":
        """Build a filter sized for ``capacity`` items at ``bits_per_item``."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        num_bits = max(8, int(capacity * bits_per_item))
        return cls(num_bits=num_bits, num_hashes=optimal_num_hashes(bits_per_item))

    @property
    def item_count(self) -> int:
        """Number of keys added so far."""
        return self._count

    def bit_positions(self, key: KeyLike) -> list[int]:
        """The bit indices this key maps to."""
        return double_hashes(key, self.num_hashes, self.num_bits)

    def add(self, key: KeyLike) -> None:
        """Insert a key into the filter."""
        for position in self.bit_positions(key):
            self._bits |= 1 << position
        self._count += 1

    def update(self, keys: Iterable[KeyLike]) -> None:
        """Insert many keys."""
        for key in keys:
            self.add(key)

    def __contains__(self, key: KeyLike) -> bool:
        for position in self.bit_positions(key):
            if not (self._bits >> position) & 1:
                return False
        return True

    def may_contain(self, key: KeyLike) -> bool:
        """Alias of ``key in filter`` for readability at call sites."""
        return key in self

    def expected_false_positive_rate(self) -> float:
        """Theoretical false-positive rate at the current fill level."""
        return false_positive_rate(self.num_bits, self._count, self.num_hashes)

    def fill_fraction(self) -> float:
        """Fraction of bits set (useful in tests and diagnostics)."""
        return bin(self._bits).count("1") / self.num_bits

    def clear(self) -> None:
        """Reset the filter to empty."""
        self._bits = 0
        self._count = 0

    def copy(self) -> "BloomFilter":
        """An independent copy (used when freezing the buffer's filter)."""
        clone = BloomFilter(self.num_bits, self.num_hashes)
        clone._bits = self._bits
        clone._count = self._count
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"items={self._count})"
        )
