"""Plain Bloom filter, one per incarnation.

A super table keeps one Bloom filter per on-flash incarnation (§5.1 of the
paper).  The filter is built while items are inserted into the in-memory
buffer; when the buffer is flushed, the filter becomes the signature of the
new incarnation and is retained in DRAM until that incarnation is evicted.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.core.hashing import KeyLike, double_hashes


def optimal_num_hashes(bits_per_item: float) -> int:
    """Number of hash functions minimising false positives: ``m/n * ln 2``."""
    if bits_per_item <= 0:
        raise ValueError("bits_per_item must be positive")
    return max(1, round(bits_per_item * math.log(2)))


def false_positive_rate(num_bits: int, num_items: int, num_hashes: int) -> float:
    """Theoretical false-positive probability of a Bloom filter."""
    if num_bits <= 0:
        raise ValueError("num_bits must be positive")
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    if num_hashes <= 0:
        raise ValueError("num_hashes must be positive")
    if num_items == 0:
        return 0.0
    fill = 1.0 - math.exp(-num_hashes * num_items / num_bits)
    return fill ** num_hashes


class BloomFilter:
    """A fixed-size Bloom filter over arbitrary keys.

    The bit array is a mutable ``bytearray`` (padded to whole 64-bit words),
    so ``add`` flips bits in place in O(1) per hash instead of rebuilding an
    immutable big-int of ``num_bits`` size on every set bit, and
    ``fill_fraction`` popcounts the array a word at a time.  ``copy`` — used
    when the filter is frozen alongside a flushed incarnation — is a single
    ``bytearray`` clone.
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "_count")

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        # Padded to a multiple of 8 bytes so fill_fraction can view the
        # buffer as 64-bit words; bits >= num_bits are never set.
        self._bits = bytearray(((num_bits + 63) // 64) * 8)
        self._count = 0

    @classmethod
    def for_capacity(cls, capacity: int, bits_per_item: float = 16.0) -> "BloomFilter":
        """Build a filter sized for ``capacity`` items at ``bits_per_item``."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        num_bits = max(8, int(capacity * bits_per_item))
        return cls(num_bits=num_bits, num_hashes=optimal_num_hashes(bits_per_item))

    @property
    def item_count(self) -> int:
        """Number of keys added so far."""
        return self._count

    def bit_positions(self, key: KeyLike) -> list[int]:
        """The bit indices this key maps to."""
        return double_hashes(key, self.num_hashes, self.num_bits)

    def add(self, key: KeyLike) -> None:
        """Insert a key into the filter."""
        bits = self._bits
        for position in double_hashes(key, self.num_hashes, self.num_bits):
            bits[position >> 3] |= 1 << (position & 7)
        self._count += 1

    def update(self, keys: Iterable[KeyLike]) -> None:
        """Insert many keys."""
        for key in keys:
            self.add(key)

    def __contains__(self, key: KeyLike) -> bool:
        bits = self._bits
        for position in double_hashes(key, self.num_hashes, self.num_bits):
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def may_contain(self, key: KeyLike) -> bool:
        """Alias of ``key in filter`` for readability at call sites."""
        return key in self

    def iter_set_bits(self) -> Iterator[int]:
        """Indices of set bits in increasing order.

        The bit-sliced array (:mod:`repro.core.sliced_bloom`) transposes a
        frozen filter through this, so alternative bit-storage
        implementations (e.g. the legacy big-int used as the benchmark
        baseline) only need to provide this one accessor.
        """
        for byte_index, byte in enumerate(self._bits):
            if byte:
                base = byte_index << 3
                while byte:
                    low = byte & -byte
                    yield base + low.bit_length() - 1
                    byte ^= low

    def expected_false_positive_rate(self) -> float:
        """Theoretical false-positive rate at the current fill level."""
        return false_positive_rate(self.num_bits, self._count, self.num_hashes)

    def fill_fraction(self) -> float:
        """Fraction of bits set, popcounted a 64-bit word at a time."""
        ones = sum(word.bit_count() for word in memoryview(self._bits).cast("Q"))
        return ones / self.num_bits

    def clear(self) -> None:
        """Reset the filter to empty."""
        self._bits = bytearray(len(self._bits))
        self._count = 0

    def copy(self) -> "BloomFilter":
        """An independent copy (used when freezing the buffer's filter)."""
        clone = type(self)(self.num_bits, self.num_hashes)
        clone._bits = bytearray(self._bits)
        clone._count = self._count
        return clone

    def to_bytes(self) -> bytes:
        """The raw bit array (checkpoint serialisation)."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(
        cls, num_bits: int, num_hashes: int, data: bytes, item_count: int = 0
    ) -> "BloomFilter":
        """Rebuild a filter from :meth:`to_bytes` output (crash recovery)."""
        clone = cls(num_bits, num_hashes)
        if len(data) != len(clone._bits):
            raise ValueError(
                f"bit array of {len(data)} bytes does not match num_bits={num_bits}"
            )
        clone._bits = bytearray(data)
        clone._count = item_count
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"items={self._count})"
        )
