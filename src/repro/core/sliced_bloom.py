"""Bit-sliced, sliding-window organisation of per-incarnation Bloom filters.

Section 5.1.3 of the paper: instead of storing the ``k`` per-incarnation
Bloom filters of a super table as ``k`` separate ``m``-bit arrays, store them
as ``m`` slices of ``k`` bits each, where slice ``i`` concatenates bit ``i``
of every incarnation's filter.  A lookup then retrieves the ``h`` slices
addressed by the key's hash functions and ANDs them; the 1-bits of the result
identify the incarnations that may contain the key — one pass over ``h``
machine words instead of ``h * k`` scattered bit probes.

Eviction uses the sliding-window trick: each slice carries ``w`` spare bits,
the active window of ``k`` bits simply shifts on eviction, and vacated bits
are cleared lazily a whole word at a time, so eviction does not touch all
``m`` slices.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.core.bloom import BloomFilter
from repro.core.hashing import KeyLike, double_hashes


class BitSlicedBloomArray:
    """Bloom filters for the incarnations of one super table, stored bit-sliced.

    Parameters
    ----------
    num_bits:
        Bits per incarnation filter (``m``).
    num_hashes:
        Hash functions per filter (``h``); must match the per-incarnation
        :class:`~repro.core.bloom.BloomFilter` configuration so both
        organisations give identical answers.
    max_incarnations:
        Window size ``k`` — the number of live incarnations.
    spare_bits:
        ``w``, the number of spare columns appended to every slice so vacated
        columns can be cleared lazily in word-sized batches.
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int,
        max_incarnations: int,
        spare_bits: int = 64,
    ) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        if max_incarnations <= 0:
            raise ValueError("max_incarnations must be positive")
        if spare_bits <= 0:
            raise ValueError("spare_bits must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.max_incarnations = max_incarnations
        self.spare_bits = spare_bits
        self.total_columns = max_incarnations + spare_bits

        # One integer per bit position; bit j of _slices[i] is bit i of the
        # Bloom filter whose incarnation occupies column j.
        self._slices: List[int] = [0] * num_bits
        # Columns occupied by live incarnations, oldest first.
        self._columns: Deque[int] = deque()
        # Column -> caller-supplied incarnation identifier.
        self._column_owner: Dict[int, object] = {}
        # OR of the live columns' bits, maintained incrementally so lookups
        # do not rebuild it per query.
        self._live_mask = 0
        self._next_column = 0
        self._vacated_columns: List[int] = []
        self.lazy_clear_batches = 0

    # -- Window management -------------------------------------------------------

    @property
    def live_count(self) -> int:
        """Number of incarnations currently represented."""
        return len(self._columns)

    def append_filter(self, bloom: BloomFilter, incarnation_id: object) -> None:
        """Install the (frozen) buffer filter as the newest incarnation's filter."""
        if bloom.num_bits != self.num_bits or bloom.num_hashes != self.num_hashes:
            raise ValueError("Bloom filter geometry does not match the sliced array")
        if len(self._columns) >= self.max_incarnations:
            raise RuntimeError(
                "sliced array is full; evict the oldest incarnation before appending"
            )
        column = self._allocate_column()
        column_bit = 1 << column
        slices = self._slices
        # Walk only the set bits of the source filter.
        for position in bloom.iter_set_bits():
            slices[position] |= column_bit
        self._columns.append(column)
        self._column_owner[column] = incarnation_id
        self._live_mask |= column_bit

    def evict_oldest(self) -> Optional[object]:
        """Slide the window past the oldest incarnation; returns its identifier."""
        if not self._columns:
            return None
        column = self._columns.popleft()
        owner = self._column_owner.pop(column)
        self._live_mask &= ~(1 << column)
        # The paper's lazy clearing: vacated columns keep their stale bits
        # until a whole word's worth has accumulated, then are cleared at once.
        self._vacated_columns.append(column)
        if len(self._vacated_columns) >= self.spare_bits:
            self._clear_vacated()
        return owner

    def _allocate_column(self) -> int:
        """Next free column, wrapping around the (k + w)-bit slice width."""
        for _ in range(self.total_columns):
            column = self._next_column
            self._next_column = (self._next_column + 1) % self.total_columns
            if column not in self._column_owner and column not in self._vacated_columns:
                return column
        # All columns either live or awaiting lazy clearing: force a clear.
        self._clear_vacated()
        column = self._next_column
        self._next_column = (self._next_column + 1) % self.total_columns
        return column

    def _clear_vacated(self) -> None:
        """Clear all vacated columns across every slice in one batch."""
        if not self._vacated_columns:
            return
        mask = 0
        for column in self._vacated_columns:
            mask |= 1 << column
        keep = ~mask
        for index, slice_bits in enumerate(self._slices):
            if slice_bits & mask:
                self._slices[index] = slice_bits & keep
        self._vacated_columns.clear()
        self.lazy_clear_batches += 1

    # -- Lookup --------------------------------------------------------------------

    def candidates(self, key: KeyLike) -> List[object]:
        """Incarnation identifiers that may contain ``key``, newest first."""
        if not self._columns:
            return []
        slices = self._slices
        combined = self._live_mask
        for position in double_hashes(key, self.num_hashes, self.num_bits):
            combined &= slices[position]
            if combined == 0:
                return []
        matches = []
        # Newest-first so the caller sees the most recent value for a key.
        for column in reversed(self._columns):
            if (combined >> column) & 1:
                matches.append(self._column_owner[column])
        return matches

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitSlicedBloomArray(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"live={self.live_count}/{self.max_incarnations})"
        )
