"""On-flash incarnations: immutable hash tables produced by buffer flushes.

When a super table's in-memory buffer fills, its contents are written to
flash sequentially as a new *incarnation* (§5.1).  An incarnation is itself a
small hash table: keys are assigned to pages by hash, so a later lookup can
read just the one page that could contain the key instead of the whole
incarnation.  Pages that overflow spill into the following page and set a
continuation flag, which is why a small fraction of lookups in Table 2 of the
paper need two or three flash reads.

This module handles only the *layout* (serialising items into page images and
searching a page image for a key); placement of those pages on a device is
the responsibility of :mod:`repro.core.storage`.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.errors import KeyTooLargeError
from repro.core.hashing import PAGE_SEED, KeyLike, canonical_key, hash_key

_PAGE_HEADER = struct.Struct("<HB")  # entry count, overflow flag
_ENTRY_HEADER = struct.Struct("<HH")  # key length, value length

#: Hash seed used for assigning keys to incarnation pages (re-exported for
#: backwards compatibility; the canonical definition lives in
#: :mod:`repro.core.hashing` next to the other per-layer seeds).
_PAGE_SEED = PAGE_SEED


def page_index_for_key(key: KeyLike, num_pages: int) -> int:
    """The page a key hashes to within an incarnation of ``num_pages`` pages.

    Digest-aware: a :class:`~repro.core.hashing.KeyDigest` reuses its
    memoised page digest across the incarnations a lookup probes.
    """
    if num_pages <= 0:
        raise ValueError("num_pages must be positive")
    return hash_key(key, seed=PAGE_SEED) % num_pages


def _encode_entry(key: bytes, value: bytes) -> bytes:
    if len(key) > 0xFFFF or len(value) > 0xFFFF:
        raise KeyTooLargeError("keys and values must fit in 16-bit length fields")
    return _ENTRY_HEADER.pack(len(key), len(value)) + key + value


def _entry_size(key: bytes, value: bytes) -> int:
    return _ENTRY_HEADER.size + len(key) + len(value)


def required_pages(
    items: Dict[bytes, bytes], page_size: int, fill_factor: float = 0.7
) -> int:
    """Minimum page count that comfortably holds ``items``.

    Used by the super table to grow an incarnation beyond its nominal size
    when the actual serialised entries are larger than the configuration's
    ``entry_size_bytes`` estimate (e.g. 20-byte SHA-1 keys with 8-byte
    values).  ``fill_factor`` leaves slack so hash-skewed pages rarely spill.
    """
    if page_size <= _PAGE_HEADER.size + _ENTRY_HEADER.size:
        raise ValueError("page_size too small to hold any entry")
    if not 0.0 < fill_factor <= 1.0:
        raise ValueError("fill_factor must be in (0, 1]")
    total = sum(_entry_size(key, value) for key, value in items.items())
    usable_per_page = (page_size - _PAGE_HEADER.size) * fill_factor
    return max(1, math.ceil(total / usable_per_page))


def build_pages(
    items: Dict[bytes, bytes],
    num_pages: int,
    page_size: int,
    hash_once: bool = False,
) -> List[bytes]:
    """Serialise ``items`` into ``num_pages`` page images of at most ``page_size`` bytes.

    Keys are placed on their hash-assigned page; when a page is full the
    remaining entries spill onto subsequent pages (wrapping around), and every
    page that pushed entries onward has its overflow flag set so lookups know
    to continue.

    ``hash_once`` routes each key's page hash through the digest cache:
    flushed keys are the workload's hot keys, so this reuses page digests
    already computed by lookups and primes the cache for the lookups that
    follow the flush.  It is off by default so the ``use_hash_once=False``
    ablation (and stand-alone callers) stay free of digest machinery; page
    assignment is bit-identical either way.
    """
    if num_pages <= 0:
        raise ValueError("num_pages must be positive")
    if page_size <= _PAGE_HEADER.size + _ENTRY_HEADER.size:
        raise ValueError("page_size too small to hold any entry")

    buckets: List[List[Tuple[bytes, bytes]]] = [[] for _ in range(num_pages)]
    for key, value in items.items():
        entry_size = _entry_size(key, value)
        if entry_size + _PAGE_HEADER.size > page_size:
            raise KeyTooLargeError(
                f"entry of {entry_size} bytes cannot fit in a {page_size}-byte page"
            )
        buckets[page_index_for_key(canonical_key(key, hash_once), num_pages)].append(
            (key, value)
        )

    # Assign entries to physical pages with wrap-around overflow.
    page_entries: List[List[Tuple[bytes, bytes]]] = [[] for _ in range(num_pages)]
    page_space = [page_size - _PAGE_HEADER.size] * num_pages
    overflowed = [False] * num_pages

    for bucket_index, bucket in enumerate(buckets):
        for key, value in bucket:
            entry_size = _entry_size(key, value)
            placed = False
            for probe in range(num_pages):
                target = (bucket_index + probe) % num_pages
                if page_space[target] >= entry_size:
                    page_entries[target].append((key, value))
                    page_space[target] -= entry_size
                    placed = True
                    # Every page between the home page and the landing page
                    # (exclusive) must signal overflow so lookups keep probing.
                    for passed in range(probe):
                        overflowed[(bucket_index + passed) % num_pages] = True
                    break
            if not placed:
                raise KeyTooLargeError(
                    "incarnation overflow: items do not fit in the configured pages; "
                    "reduce buffer utilisation or increase page count"
                )

    pages: List[bytes] = []
    for index in range(num_pages):
        body = b"".join(_encode_entry(key, value) for key, value in page_entries[index])
        header = _PAGE_HEADER.pack(len(page_entries[index]), 1 if overflowed[index] else 0)
        image = header + body
        if len(image) > page_size:  # pragma: no cover - guarded by space accounting
            raise KeyTooLargeError("serialised page exceeded page_size")
        pages.append(image)
    return pages


def iter_page_entries(page_image: bytes) -> Iterator[Tuple[bytes, bytes]]:
    """Iterate over the (key, value) entries stored in one page image."""
    if not page_image:
        return
    count, _flag = _PAGE_HEADER.unpack_from(page_image, 0)
    offset = _PAGE_HEADER.size
    for _ in range(count):
        key_len, value_len = _ENTRY_HEADER.unpack_from(page_image, offset)
        offset += _ENTRY_HEADER.size
        key = page_image[offset : offset + key_len]
        offset += key_len
        value = page_image[offset : offset + value_len]
        offset += value_len
        yield key, value


def page_overflowed(page_image: bytes) -> bool:
    """Whether the page pushed entries onto the following page."""
    if not page_image:
        return False
    _count, flag = _PAGE_HEADER.unpack_from(page_image, 0)
    return bool(flag)


def search_page(page_image: bytes, key: bytes) -> Tuple[Optional[bytes], bool]:
    """Search one page image for ``key``.

    Returns ``(value, overflowed)`` where ``value`` is ``None`` when the key is
    not on this page and ``overflowed`` tells the caller whether probing the
    next page could still find it.

    This sits on the lookup fast path (one call per flash page read), so it
    scans the raw image with ``startswith`` at computed offsets instead of
    materialising a (key, value) slice pair per entry the way
    :func:`iter_page_entries` does.
    """
    if not page_image:
        return None, False
    count, flag = _PAGE_HEADER.unpack_from(page_image, 0)
    offset = _PAGE_HEADER.size
    key_size = len(key)
    unpack_entry = _ENTRY_HEADER.unpack_from
    entry_header_size = _ENTRY_HEADER.size
    for _ in range(count):
        key_len, value_len = unpack_entry(page_image, offset)
        offset += entry_header_size
        if key_len == key_size and page_image.startswith(key, offset):
            value_start = offset + key_len
            return page_image[value_start : value_start + value_len], bool(flag)
        offset += key_len + value_len
    return None, bool(flag)


@dataclass(frozen=True)
class IncarnationHandle:
    """In-memory metadata describing one on-flash incarnation.

    Attributes
    ----------
    incarnation_id:
        Monotonically increasing identifier within a super table (larger is
        newer).
    address:
        Device page index of the incarnation's first page (assigned by the
        incarnation store).
    num_pages:
        Number of device pages the incarnation occupies.
    item_count:
        Number of entries it holds (informational; used by eviction stats).
    """

    incarnation_id: int
    address: int
    num_pages: int
    item_count: int
