"""A single super table: buffer + on-flash incarnations + Bloom filters (§5.1).

The super table is where all of BufferHash's mechanisms meet:

* inserts go to the in-memory :class:`~repro.core.buffer.Buffer`; when it
  fills, its contents are written sequentially to flash as a new incarnation
  and its Bloom filter is frozen in DRAM;
* lookups check the buffer, then consult the Bloom filters (either one per
  incarnation or the bit-sliced sliding-window array) and read at most one
  flash page per candidate incarnation, newest first;
* updates are lazy (a new value simply shadows older ones) and deletes go to
  an in-memory delete list;
* evictions operate on whole incarnations through an
  :class:`~repro.core.eviction.EvictionPolicy`, with full or partial discard
  and cascaded evictions when nothing can be dropped.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.bloom import BloomFilter
from repro.core.buffer import Buffer
from repro.core.config import MemoryCostModel
from repro.core.errors import ConfigurationError
from repro.core.eviction import EvictionContext, EvictionPolicy, FIFOEviction
from repro.core.hashing import KeyLike, key_data
from repro.core.incarnation import (
    IncarnationHandle,
    build_pages,
    iter_page_entries,
    page_index_for_key,
    required_pages,
    search_page,
)
from repro.core.results import (
    DeleteResult,
    FlushResult,
    InsertResult,
    LookupResult,
    ServedFrom,
)
from repro.core.sliced_bloom import BitSlicedBloomArray
from repro.core.storage import IncarnationStore
from repro.flashsim.clock import SimulationClock


class SuperTable:
    """One partition of a BufferHash (Figure 1 of the paper)."""

    def __init__(
        self,
        table_id: int,
        store: IncarnationStore,
        clock: SimulationClock,
        buffer_capacity_items: int,
        buffer_slots: int,
        max_incarnations: int,
        page_size: int,
        pages_per_incarnation: int,
        bloom_bits: int,
        memory_cost: Optional[MemoryCostModel] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        use_bloom_filters: bool = True,
        use_bit_slicing: bool = True,
        use_hash_once: bool = True,
    ) -> None:
        if max_incarnations <= 0:
            raise ConfigurationError("max_incarnations must be positive")
        if pages_per_incarnation <= 0:
            raise ConfigurationError("pages_per_incarnation must be positive")
        self.table_id = table_id
        self.store = store
        self.clock = clock
        self.max_incarnations = max_incarnations
        self.page_size = page_size
        self.pages_per_incarnation = pages_per_incarnation
        self.memory_cost = memory_cost if memory_cost is not None else MemoryCostModel()
        self.eviction_policy = eviction_policy if eviction_policy is not None else FIFOEviction()
        self.use_bloom_filters = use_bloom_filters
        self.use_bit_slicing = use_bit_slicing
        self.use_hash_once = use_hash_once

        self.buffer = Buffer(
            capacity_items=buffer_capacity_items,
            num_slots=buffer_slots,
            bloom_bits=bloom_bits,
        )
        # Incarnations ordered oldest -> newest.
        self._incarnations: List[IncarnationHandle] = []
        # incarnation_id -> handle, kept in sync with _incarnations so the
        # bit-sliced candidate path resolves ids without a per-lookup rebuild.
        self._by_id: Dict[int, IncarnationHandle] = {}
        # Per-incarnation Bloom filters (same order as _incarnations).
        self._filters: Dict[int, BloomFilter] = {}
        self._sliced = BitSlicedBloomArray(
            num_bits=self.buffer.bloom_bits,
            num_hashes=self.buffer.bloom_hashes,
            max_incarnations=max_incarnations,
        )
        self._next_incarnation_id = 0
        self._delete_list: set[bytes] = set()
        # Counters used by experiments and tests.
        self.flush_count = 0
        self.eviction_count = 0
        self.cascade_histogram: Dict[int, int] = {}
        self.reinsert_latency_total_ms = 0.0

    # -- Small helpers -------------------------------------------------------------

    @property
    def incarnation_count(self) -> int:
        """Number of on-flash incarnations currently live."""
        return len(self._incarnations)

    @property
    def delete_list_size(self) -> int:
        """Entries currently on the in-memory delete list."""
        return len(self._delete_list)

    def _charge_memory(self, cost_ms: float) -> float:
        self.clock.advance(cost_ms)
        return cost_ms

    def _write_incarnation_pages(self, pages: List[bytes]) -> Tuple[int, float]:
        # Stores that place data per super table (chip partitions, multi-SSD
        # distribution) receive the table id; the single shared log does not
        # care which table a flush came from.
        writer = getattr(self.store, "write_incarnation_for", None)
        if writer is not None:
            return writer(self.table_id, pages)
        return self.store.write_incarnation(pages)

    # -- Candidate selection ---------------------------------------------------------

    def _candidate_incarnations(self, key: KeyLike) -> Tuple[List[IncarnationHandle], float]:
        """Incarnations that may hold ``key`` (newest first) and the DRAM cost.

        ``key`` may be a :class:`~repro.core.hashing.KeyDigest`; the Bloom
        probes below then reuse its memoised positions instead of re-hashing
        the key bytes per incarnation.
        """
        if not self._incarnations:
            return [], 0.0
        if not self.use_bloom_filters:
            # Ablation: every incarnation is a candidate, newest first.
            return list(reversed(self._incarnations)), 0.0
        cost = self.memory_cost.bloom_query_cost(
            num_incarnations=len(self._incarnations),
            bit_sliced=self.use_bit_slicing,
        )
        if self.use_bit_slicing:
            ids = self._sliced.candidates(key)
            by_id = self._by_id
            return [by_id[i] for i in ids if i in by_id], cost
        candidates = [
            handle
            for handle in reversed(self._incarnations)
            if key in self._filters[handle.incarnation_id]
        ]
        return candidates, cost

    # -- Lookup -----------------------------------------------------------------------

    def lookup(self, key: KeyLike) -> LookupResult:
        """Find the most recent value for ``key`` (bytes or a KeyDigest)."""
        data = key_data(key)
        latency = self._charge_memory(self.memory_cost.delete_list_probe_ms)
        if data in self._delete_list:
            return LookupResult(
                key=data,
                value=None,
                latency_ms=latency,
                served_from=ServedFrom.DELETED,
            )
        latency += self._charge_memory(self.memory_cost.buffer_op_ms)
        value = self.buffer.get(key)
        if value is not None:
            return LookupResult(
                key=data,
                value=value,
                latency_ms=latency,
                served_from=ServedFrom.BUFFER,
            )

        candidates, bloom_cost = self._candidate_incarnations(key)
        latency += self._charge_memory(bloom_cost)
        flash_reads = 0
        false_positive_reads = 0
        for handle in candidates:
            value, reads = self._search_incarnation(handle, key, data)
            flash_reads += reads
            latency += self._last_flash_latency
            latency += self._charge_memory(self.memory_cost.page_scan_ms * reads)
            if value is not None:
                result = LookupResult(
                    key=data,
                    value=value,
                    latency_ms=latency,
                    served_from=ServedFrom.INCARNATION,
                    flash_reads=flash_reads,
                    incarnations_checked=len(candidates),
                    false_positive_reads=false_positive_reads,
                )
                self._maybe_reinsert_on_use(key, value)
                return result
            false_positive_reads += reads
        return LookupResult(
            key=data,
            value=None,
            latency_ms=latency,
            served_from=ServedFrom.MISSING,
            flash_reads=flash_reads,
            incarnations_checked=len(candidates),
            false_positive_reads=false_positive_reads,
        )

    _last_flash_latency: float = 0.0

    def _search_incarnation(
        self, handle: IncarnationHandle, key: KeyLike, data: bytes
    ) -> Tuple[Optional[bytes], int]:
        """Search one incarnation for ``key``; reads at most a few pages.

        ``key`` addresses the page (digest-aware hash), ``data`` is the
        canonical bytes compared against page entries.
        """
        self._last_flash_latency = 0.0
        page = page_index_for_key(key, handle.num_pages)
        reads = 0
        for probe in range(handle.num_pages):
            target = (page + probe) % handle.num_pages
            image, read_latency = self.store.read_page(handle.address, target)
            self._last_flash_latency += read_latency
            reads += 1
            value, overflowed = search_page(image, data)
            if value is not None:
                return value, reads
            if not overflowed:
                return None, reads
        return None, reads

    def _maybe_reinsert_on_use(self, key: KeyLike, value: bytes) -> None:
        """LRU emulation: items found on flash are re-inserted into the buffer.

        The re-insertion happens off the lookup's critical path (the paper
        performs it asynchronously), so its latency is tracked separately.
        """
        if not self.eviction_policy.reinsert_on_use:
            return
        result = self.insert(key, value)
        self.reinsert_latency_total_ms += result.latency_ms

    # -- Insert / update / delete -------------------------------------------------------

    def insert(self, key: KeyLike, value: bytes) -> InsertResult:
        """Insert or (lazily) update ``key`` (bytes or a KeyDigest)."""
        data = key_data(key)
        latency = self._charge_memory(
            self.memory_cost.buffer_op_ms + self.memory_cost.bloom_update_ms
        )
        self._delete_list.discard(data)
        flushed = False
        flush_result = FlushResult()
        if not self.buffer.put(key, value):
            flush_result = self.flush()
            flushed = True
            latency += flush_result.latency_ms
            if not self.buffer.put(key, value):  # pragma: no cover - flush always makes room
                raise ConfigurationError("buffer rejected an insert immediately after flush")
        return InsertResult(
            key=data,
            latency_ms=latency,
            flushed=flushed,
            flush_latency_ms=flush_result.latency_ms,
            incarnations_tried=flush_result.incarnations_tried,
            flash_writes=flush_result.flash_writes,
            flash_reads=flush_result.flash_reads,
        )

    def update(self, key: KeyLike, value: bytes) -> InsertResult:
        """Lazy update: identical to insert; newer values shadow older ones."""
        return self.insert(key, value)

    def delete(self, key: KeyLike) -> DeleteResult:
        """Delete ``key`` lazily via the in-memory delete list."""
        data = key_data(key)
        latency = self._charge_memory(
            self.memory_cost.buffer_op_ms + self.memory_cost.delete_list_probe_ms
        )
        removed = self.buffer.delete(key)
        # Older copies may still exist on flash, so the delete list entry is
        # needed even when the buffer held the key.
        if self._incarnations:
            self._delete_list.add(data)
        elif not removed:
            self._delete_list.add(data)
        return DeleteResult(key=data, latency_ms=latency, removed_from_buffer=removed)

    # -- Flush and eviction ----------------------------------------------------------------

    def flush(self) -> FlushResult:
        """Write the buffer to flash as a new incarnation, evicting as needed.

        Handles cascaded evictions for partial-discard policies: when an
        evicted incarnation retains (almost) everything, the retained items
        themselves fill the buffer and force another flush/eviction round,
        until something can be discarded or every incarnation has been tried
        (at which point the oldest incarnation is fully discarded, as §7.4
        describes).
        """
        result = FlushResult()
        items, frozen_filter = self.buffer.drain()
        pending: Optional[Dict[bytes, bytes]] = items
        pending_filter: Optional[BloomFilter] = frozen_filter
        incarnations_tried = 0

        while pending is not None:
            retained: Dict[bytes, bytes] = {}
            if len(self._incarnations) >= self.max_incarnations:
                force_full = incarnations_tried >= self.max_incarnations
                retained, evict_latency, evict_reads = self._evict_oldest(force_full)
                incarnations_tried += 1
                result.incarnations_evicted += 1
                result.latency_ms += evict_latency
                result.flash_reads += evict_reads
                result.forced_full_discard = result.forced_full_discard or force_full

            write_latency, pages_written = self._write_incarnation(pending, pending_filter)
            result.latency_ms += write_latency
            result.flash_writes += pages_written
            result.incarnations_written += 1

            if retained and len(retained) >= self.buffer.capacity_items:
                # Cascade: the retained items fill the buffer outright, so they
                # become the next incarnation to write.
                pending = retained
                pending_filter = None
                result.items_retained += len(retained)
            else:
                reinsert_cost = 0.0
                for key, value in retained.items():
                    self.buffer.put(key, value)
                    reinsert_cost += (
                        self.memory_cost.buffer_op_ms + self.memory_cost.bloom_update_ms
                    )
                if reinsert_cost:
                    result.latency_ms += self._charge_memory(reinsert_cost)
                result.items_retained += len(retained)
                pending = None

        result.incarnations_tried = incarnations_tried
        self.flush_count += 1
        self.cascade_histogram[incarnations_tried] = (
            self.cascade_histogram.get(incarnations_tried, 0) + 1
        )
        return result

    def _write_incarnation(
        self, items: Dict[bytes, bytes], frozen_filter: Optional[BloomFilter]
    ) -> Tuple[float, int]:
        """Serialise ``items`` and append them to flash as a new incarnation."""
        # The nominal incarnation size assumes the configuration's estimated
        # entry size; when actual entries are larger (long keys or values),
        # grow this incarnation rather than failing the flush.
        num_pages = max(self.pages_per_incarnation, required_pages(items, self.page_size))
        pages = build_pages(items, num_pages, self.page_size, hash_once=self.use_hash_once)
        address, latency = self._write_incarnation_pages(pages)
        handle = IncarnationHandle(
            incarnation_id=self._next_incarnation_id,
            address=address,
            num_pages=len(pages),
            item_count=len(items),
        )
        self._next_incarnation_id += 1
        self._incarnations.append(handle)
        self._by_id[handle.incarnation_id] = handle
        if frozen_filter is None:
            frozen_filter = BloomFilter(self.buffer.bloom_bits, self.buffer.bloom_hashes)
            frozen_filter.update(items.keys())
        self._filters[handle.incarnation_id] = frozen_filter
        self._sliced.append_filter(frozen_filter, handle.incarnation_id)
        return latency, len(pages)

    def _evict_oldest(self, force_full_discard: bool) -> Tuple[Dict[bytes, bytes], float, int]:
        """Evict the oldest incarnation; returns (retained items, latency, flash reads)."""
        handle = self._incarnations.pop(0)
        self._by_id.pop(handle.incarnation_id, None)
        self.eviction_count += 1
        latency = 0.0
        flash_reads = 0
        retained: Dict[bytes, bytes] = {}
        policy = self.eviction_policy
        if policy.requires_scan and not force_full_discard:
            pages, read_latency = self.store.read_incarnation(handle.address, handle.num_pages)
            latency += read_latency
            flash_reads += handle.num_pages
            items: Dict[bytes, bytes] = {}
            for image in pages:
                for key, value in iter_page_entries(image):
                    items[key] = value
            latency += self._charge_memory(self.memory_cost.page_scan_ms * len(pages))
            context = EvictionContext(
                incarnation_id=handle.incarnation_id,
                is_deleted=self._delete_list.__contains__,
                superseded=lambda key, evicted=handle: self._superseded(key, evicted),
            )
            retained = policy.select_retained(items, context)
            # Deleted keys evicted with their last on-flash copy can leave the
            # delete list, reclaiming its memory.
            for key in items:
                if key in self._delete_list and not self._superseded(key, handle):
                    self._delete_list.discard(key)
        self._filters.pop(handle.incarnation_id, None)
        self._sliced.evict_oldest()
        self.store.release(handle.address, handle.num_pages)
        return retained, latency, flash_reads

    def _superseded(self, key: bytes, evicted: IncarnationHandle) -> bool:
        """Does a newer copy of ``key`` exist (buffer or newer incarnation)?

        Uses only in-memory state (buffer + Bloom filters), as the paper
        specifies; Bloom false positives can very occasionally discard a live
        item, which footnote 2 of §5.1.2 explicitly accepts.
        """
        if self.buffer.get(key) is not None:
            return True
        for handle in self._incarnations:
            if handle.incarnation_id <= evicted.incarnation_id:
                continue
            bloom = self._filters.get(handle.incarnation_id)
            if bloom is not None and key in bloom:
                return True
        return False

    # -- Crash recovery (used by repro.core.durable / repro.core.recovery) ------------------

    @property
    def incarnation_handles(self) -> Tuple[IncarnationHandle, ...]:
        """Live incarnation handles, oldest first (checkpoint serialisation)."""
        return tuple(self._incarnations)

    @property
    def next_incarnation_id(self) -> int:
        """Identifier the next flushed incarnation will receive."""
        return self._next_incarnation_id

    def filter_for(self, incarnation_id: int) -> BloomFilter:
        """The Bloom filter of one live incarnation (checkpoint serialisation)."""
        return self._filters[incarnation_id]

    def delete_list_snapshot(self) -> Tuple[bytes, ...]:
        """Current lazy-delete entries (checkpoint serialisation)."""
        return tuple(self._delete_list)

    def advance_incarnation_counter(self, next_id: int) -> None:
        """Ensure future incarnation ids start at ``next_id`` or later.

        Recovery calls this with the checkpointed counter so ids stay
        monotonic even when the newest incarnations were evicted (and thus
        are not re-registered) before the crash.
        """
        self._next_incarnation_id = max(self._next_incarnation_id, next_id)

    def restore_incarnation(self, handle: IncarnationHandle, bloom: BloomFilter) -> None:
        """Re-register an on-flash incarnation after a crash or reopen.

        Must be called oldest-first per table (ascending ``incarnation_id``),
        matching the order :meth:`flush` created them; ``bloom`` is the
        incarnation's signature filter, either deserialised from a checkpoint
        or rebuilt by re-reading the incarnation's pages.
        """
        if bloom.num_bits != self.buffer.bloom_bits or bloom.num_hashes != self.buffer.bloom_hashes:
            raise ConfigurationError(
                "restored Bloom filter geometry does not match the configuration"
            )
        if self._incarnations and handle.incarnation_id <= self._incarnations[-1].incarnation_id:
            raise ConfigurationError(
                "incarnations must be restored oldest-first "
                f"(got id {handle.incarnation_id} after {self._incarnations[-1].incarnation_id})"
            )
        if len(self._incarnations) >= self.max_incarnations:
            raise ConfigurationError(
                f"cannot restore more than max_incarnations={self.max_incarnations}"
            )
        self._incarnations.append(handle)
        self._by_id[handle.incarnation_id] = handle
        self._filters[handle.incarnation_id] = bloom
        self._sliced.append_filter(bloom, handle.incarnation_id)
        self._next_incarnation_id = max(self._next_incarnation_id, handle.incarnation_id + 1)

    def restore_delete_list(self, keys: Iterable[bytes]) -> None:
        """Reload the lazy delete list from a checkpoint."""
        self._delete_list.update(bytes(key) for key in keys)

    # -- Bulk iteration (used by dedup merge and tests) -------------------------------------

    def snapshot_items(self) -> Dict[bytes, bytes]:
        """All live (key, value) pairs, newest value per key, ignoring deletes.

        Reads every incarnation; intended for tests and offline jobs such as
        the deduplication index merge, not for the fast path.
        """
        merged: Dict[bytes, bytes] = {}
        for handle in self._incarnations:  # oldest first so newer overwrite older
            pages, _latency = self.store.read_incarnation(handle.address, handle.num_pages)
            for image in pages:
                for key, value in iter_page_entries(image):
                    merged[key] = value
        merged.update(self.buffer.items())
        for key in self._delete_list:
            merged.pop(key, None)
        return merged
