"""Durable on-flash formats for CLAM: superblock, incarnation log, checkpoints.

Three persistent structures live on a
:class:`~repro.flashsim.persistent.PersistentFlashDevice`, one per partition
of its :class:`~repro.flashsim.persistent.FlashLayout`:

``superblock``
    One JSON-encoded page recording the :class:`~repro.core.config.CLAMConfig`
    the CLAM was created with, so a bare ``DurableCLAM(path)`` reopens with
    identical structural parameters.

``log``
    The incarnation log, managed by :class:`DurableLogStore`.  Each buffer
    flush appends one *record*: a header page (magic, owning super table,
    incarnation id, a device-wide monotone sequence number, page count)
    followed by the incarnation's data pages, all written as a single
    streaming write.  The address handed back to the super table points at
    the first *data* page, so the lookup path's ``read_page(address,
    offset)`` arithmetic is identical to the in-memory stores'.  Space is
    reclaimed circularly; blocks whose pages are all released get erased,
    which both models real flash housekeeping and makes interrupted erases a
    reachable power-loss state.

``checkpoint``
    Two ping-pong slots of serialised DRAM state (per-table incarnation
    handles with their Bloom filter bits, delete lists, id counters, log-head
    position), written by :meth:`~repro.core.recovery.DurableCLAM.checkpoint`.
    Recovery restores the newest intact checkpoint and replays only the log
    records with a higher sequence number — the checkpoint+suffix path — or
    cold-rebuilds from the whole log when no checkpoint survives.  Alternating
    slots means a power cut mid-checkpoint can only tear the slot being
    written; the previous checkpoint stays intact.

Every page is CRC-framed by the device itself, so torn pages are detected at
read time; formats here add magics and a payload CRC over multi-page
checkpoints so *logically* incomplete structures are also detected.
"""

from __future__ import annotations

import dataclasses
import json
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from repro.core.bloom import BloomFilter
from repro.core.config import CLAMConfig, MemoryCostModel
from repro.core.errors import ConfigurationError, TornPageError
from repro.core.incarnation import IncarnationHandle
from repro.core.storage import IncarnationStore
from repro.core.supertable import SuperTable
from repro.flashsim.persistent import FlashPartition, PageState, PersistentFlashDevice

#: Magic prefix of the superblock page.
SUPERBLOCK_MAGIC = b"CLAMSUP1"
#: Magic prefix of an incarnation-log record header page.
RECORD_MAGIC = b"CLAMINCR"
#: Magic prefix of a checkpoint header page.
CHECKPOINT_MAGIC = b"CLAMCKPT"

#: Log record header: magic, owner table id, incarnation id, global sequence
#: number, number of data pages.
RECORD_HEADER = struct.Struct("<8sIIQI")

#: Checkpoint header: magic, sequence number, payload length, payload CRC32,
#: clean-shutdown flag.
CHECKPOINT_HEADER = struct.Struct("<8sQIIB")

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


# ---------------------------------------------------------------------------
# Superblock
# ---------------------------------------------------------------------------


def write_superblock(device: PersistentFlashDevice, config: CLAMConfig) -> float:
    """Write ``config`` to the first page of the superblock partition."""
    partition = device.layout.partition("superblock")
    payload = SUPERBLOCK_MAGIC + json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > device.geometry.page_size:
        raise ConfigurationError(
            "CLAMConfig does not fit in one superblock page "
            f"({len(payload)} > {device.geometry.page_size} bytes)"
        )
    return device.write_page(partition.start_page(device.geometry), payload)


def read_superblock(device: PersistentFlashDevice) -> Tuple[CLAMConfig, float]:
    """Read the configuration back from the superblock partition."""
    partition = device.layout.partition("superblock")
    payload, latency = device.read_page(partition.start_page(device.geometry))
    if not payload.startswith(SUPERBLOCK_MAGIC):
        raise ConfigurationError(
            f"device {device.name!r} has no CLAM superblock; "
            "was it created by DurableCLAM?"
        )
    fields = json.loads(payload[len(SUPERBLOCK_MAGIC) :].decode("utf-8"))
    memory_cost = MemoryCostModel(**fields.pop("memory_cost"))
    return CLAMConfig(memory_cost=memory_cost, **fields), latency


# ---------------------------------------------------------------------------
# Incarnation log
# ---------------------------------------------------------------------------


class DurableLogStore(IncarnationStore):
    """Circular incarnation log inside one partition of a persistent device.

    The layout mirrors :class:`~repro.core.storage.WholeDeviceLogStore` —
    one shared log, incarnations from every super table appended in flush
    order — with two durability additions: every incarnation is preceded by
    a self-describing header page (so recovery can find records by scanning),
    and fully released erase blocks are erased eagerly (so the log exercises
    real erase traffic and interrupted-erase states).
    """

    def __init__(self, device: PersistentFlashDevice, partition_name: str = "log") -> None:
        self.device = device
        self.partition: FlashPartition = device.layout.partition(partition_name)
        geometry = device.geometry
        self._start = self.partition.start_page(geometry)
        self._num_pages = self.partition.num_pages(geometry)
        self._end = self._start + self._num_pages
        self._head = self._start
        self._wraps = 0
        # header page -> whole record span in pages (header + data).
        self._live: Dict[int, int] = {}
        self._released_pages: set[int] = set()
        # owner (super table id) -> next incarnation id, mirroring each
        # SuperTable's counter so record headers carry the real id.
        self._owner_next_id: Dict[int, int] = {}
        self._next_seq = 1

    # -- Introspection ---------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        return self._num_pages

    @property
    def wrap_count(self) -> int:
        return self._wraps

    @property
    def next_sequence(self) -> int:
        """Sequence number the next record will receive."""
        return self._next_seq

    @property
    def live_records(self) -> Dict[int, int]:
        """Header page -> record span, for live records (copy)."""
        return dict(self._live)

    # -- Allocation ------------------------------------------------------------

    def _region_is_free(self, start: int, num_pages: int) -> bool:
        for address, length in self._live.items():
            if start < address + length and address < start + num_pages:
                return False
        return True

    def _advance_head(self, num_pages: int) -> int:
        if num_pages > self._num_pages:
            raise ConfigurationError(
                f"record of {num_pages} pages exceeds log partition capacity "
                f"{self._num_pages} pages"
            )
        attempts = 0
        while attempts < self._num_pages:
            if self._head + num_pages > self._end:
                self._head = self._start
                self._wraps += 1
            start = self._head
            if self._region_is_free(start, num_pages):
                self._head = start + num_pages
                return start
            blocking_end = start + 1
            for address, length in self._live.items():
                if address <= start < address + length:
                    blocking_end = max(blocking_end, address + length)
            attempts += blocking_end - self._head
            self._head = blocking_end
        raise ConfigurationError(
            "incarnation log is full: no released space to reuse; "
            "the log partition is too small for the configured incarnations"
        )

    # -- IncarnationStore API --------------------------------------------------

    def write_incarnation_for(self, owner_id: int, pages: List[bytes]) -> Tuple[int, float]:
        """Append one record for ``owner_id``; returns (data address, latency)."""
        if not pages:
            raise ValueError("pages must be non-empty")
        span = len(pages) + 1
        header_page = self._advance_head(span)
        incarnation_id = self._owner_next_id.get(owner_id, 0)
        sequence = self._next_seq
        header = RECORD_HEADER.pack(
            RECORD_MAGIC, owner_id, incarnation_id, sequence, len(pages)
        )
        latency = self.device.write_range(header_page, [header] + list(pages))
        # State advances only after the write survived (a power cut raises
        # out of write_range; the reopened store rebuilds state from media).
        self._owner_next_id[owner_id] = incarnation_id + 1
        self._next_seq = sequence + 1
        self._live[header_page] = span
        for page in range(header_page, header_page + span):
            self._released_pages.discard(page)
        return header_page + 1, latency

    def write_incarnation(self, pages: List[bytes]) -> Tuple[int, float]:
        return self.write_incarnation_for(0, pages)

    def read_page(self, address: int, page_offset: int) -> Tuple[bytes, float]:
        return self.device.read_page(address + page_offset)

    def read_incarnation(self, address: int, num_pages: int) -> Tuple[List[bytes], float]:
        return self.device.read_range(address, num_pages)

    def release(self, address: int, num_pages: int) -> None:
        header_page = address - 1
        span = self._live.pop(header_page, num_pages + 1)
        for page in range(header_page, header_page + span):
            self._released_pages.add(page)
        self._erase_reclaimable_blocks(header_page, span)

    def _erase_reclaimable_blocks(self, start: int, span: int) -> None:
        """Erase blocks of the just-released span that hold no live pages."""
        pages_per_block = self.device.geometry.pages_per_block
        first_block = start // pages_per_block
        last_block = (start + span - 1) // pages_per_block
        for block in range(first_block, last_block + 1):
            block_start = block * pages_per_block
            block_end = block_start + pages_per_block
            if block_start < self._start or block_end > self._end:
                continue
            if not self._region_is_free(block_start, pages_per_block):
                continue
            if not any(
                page in self._released_pages for page in range(block_start, block_end)
            ):
                continue
            self.device.erase_block(block)
            self._released_pages.difference_update(range(block_start, block_end))

    # -- Recovery hooks --------------------------------------------------------

    def restore_state(
        self,
        next_seq: int,
        head: int,
        wraps: int,
        owner_next_ids: Dict[int, int],
        live: Dict[int, int],
    ) -> None:
        """Install state rebuilt by recovery (checkpoint and/or log scan)."""
        self._next_seq = max(self._next_seq, next_seq)
        if not self._start <= head <= self._end:
            head = self._start
        self._head = head
        self._wraps = wraps
        for owner, next_id in owner_next_ids.items():
            self._owner_next_id[owner] = max(self._owner_next_id.get(owner, 0), next_id)
        self._live = dict(live)


# ---------------------------------------------------------------------------
# Checkpoint serialisation
# ---------------------------------------------------------------------------


class _Writer:
    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def u16(self, value: int) -> None:
        self._parts.append(_U16.pack(value))

    def u32(self, value: int) -> None:
        self._parts.append(_U32.pack(value))

    def u64(self, value: int) -> None:
        self._parts.append(_U64.pack(value))

    def blob(self, data: bytes) -> None:
        self._parts.append(_U32.pack(len(data)))
        self._parts.append(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def u16(self) -> int:
        (value,) = _U16.unpack_from(self._data, self._offset)
        self._offset += _U16.size
        return value

    def u32(self) -> int:
        (value,) = _U32.unpack_from(self._data, self._offset)
        self._offset += _U32.size
        return value

    def u64(self) -> int:
        (value,) = _U64.unpack_from(self._data, self._offset)
        self._offset += _U64.size
        return value

    def blob(self) -> bytes:
        length = self.u32()
        data = self._data[self._offset : self._offset + length]
        if len(data) != length:
            raise ValueError("truncated checkpoint payload")
        self._offset += length
        return data


def serialize_checkpoint(store: DurableLogStore, tables: List[SuperTable]) -> bytes:
    """Serialise the recoverable DRAM state into one checkpoint payload.

    Buffers are deliberately *not* serialised: buffered-but-unflushed writes
    are DRAM-only by the acknowledged-write contract and die with the power.
    """
    writer = _Writer()
    writer.u64(store.next_sequence)
    writer.u64(store._head)
    writer.u32(store.wrap_count)
    owners = sorted(store._owner_next_id.items())
    writer.u32(len(owners))
    for owner, next_id in owners:
        writer.u32(owner)
        writer.u32(next_id)
    live = sorted(store.live_records.items())
    writer.u32(len(live))
    for header_page, span in live:
        writer.u64(header_page)
        writer.u32(span)
    writer.u32(len(tables))
    for table in tables:
        writer.u32(table.table_id)
        writer.u32(table.next_incarnation_id)
        deletes = table.delete_list_snapshot()
        writer.u32(len(deletes))
        for key in deletes:
            writer.blob(key)
        handles = table.incarnation_handles
        writer.u16(len(handles))
        for handle in handles:
            writer.u32(handle.incarnation_id)
            writer.u64(handle.address)
            writer.u32(handle.num_pages)
            writer.u32(handle.item_count)
            bloom = table.filter_for(handle.incarnation_id)
            writer.u32(bloom.num_bits)
            writer.u16(bloom.num_hashes)
            writer.u32(bloom.item_count)
            writer.blob(bloom.to_bytes())
    return writer.getvalue()


@dataclasses.dataclass(frozen=True)
class CheckpointTableState:
    """One super table's state as recorded in a checkpoint."""

    table_id: int
    next_incarnation_id: int
    delete_list: Tuple[bytes, ...]
    incarnations: Tuple[Tuple[IncarnationHandle, BloomFilter], ...]


@dataclasses.dataclass(frozen=True)
class CheckpointState:
    """A deserialised checkpoint."""

    sequence: int
    clean: bool
    next_seq: int
    head: int
    wraps: int
    owner_next_ids: Dict[int, int]
    live: Dict[int, int]
    tables: Tuple[CheckpointTableState, ...]


def deserialize_checkpoint(sequence: int, clean: bool, payload: bytes) -> CheckpointState:
    reader = _Reader(payload)
    next_seq = reader.u64()
    head = reader.u64()
    wraps = reader.u32()
    owner_next_ids = {}
    for _ in range(reader.u32()):
        owner = reader.u32()
        owner_next_ids[owner] = reader.u32()
    live = {}
    for _ in range(reader.u32()):
        header_page = reader.u64()
        live[header_page] = reader.u32()
    tables = []
    for _ in range(reader.u32()):
        table_id = reader.u32()
        next_id = reader.u32()
        deletes = tuple(reader.blob() for _ in range(reader.u32()))
        incarnations = []
        for _ in range(reader.u16()):
            incarnation_id = reader.u32()
            address = reader.u64()
            num_pages = reader.u32()
            item_count = reader.u32()
            num_bits = reader.u32()
            num_hashes = reader.u16()
            bloom_items = reader.u32()
            bits = reader.blob()
            handle = IncarnationHandle(
                incarnation_id=incarnation_id,
                address=address,
                num_pages=num_pages,
                item_count=item_count,
            )
            bloom = BloomFilter.from_bytes(num_bits, num_hashes, bits, bloom_items)
            incarnations.append((handle, bloom))
        tables.append(
            CheckpointTableState(
                table_id=table_id,
                next_incarnation_id=next_id,
                delete_list=deletes,
                incarnations=tuple(incarnations),
            )
        )
    return CheckpointState(
        sequence=sequence,
        clean=clean,
        next_seq=next_seq,
        head=head,
        wraps=wraps,
        owner_next_ids=owner_next_ids,
        live=live,
        tables=tuple(tables),
    )


# ---------------------------------------------------------------------------
# Checkpoint region (two ping-pong slots)
# ---------------------------------------------------------------------------


class CheckpointRegion:
    """Writes/reads checkpoints into the two halves of the checkpoint partition.

    Alternating slots by sequence number guarantees that a power cut during a
    checkpoint write can only damage the slot being written; the previous
    checkpoint in the other slot stays intact and recovery falls back to it.
    """

    def __init__(self, device: PersistentFlashDevice, partition_name: str = "checkpoint") -> None:
        self.device = device
        self.partition = device.layout.partition(partition_name)
        geometry = device.geometry
        start = self.partition.start_page(geometry)
        total = self.partition.num_pages(geometry)
        self._slot_pages = total // 2
        if self._slot_pages < 2:
            raise ConfigurationError(
                "checkpoint partition too small: needs at least 2 pages per slot"
            )
        self._slot_starts = (start, start + self._slot_pages)
        self._next_sequence = 1

    @property
    def next_sequence(self) -> int:
        return self._next_sequence

    def note_sequence(self, sequence: int) -> None:
        """Recovery hook: future checkpoints must use a higher sequence."""
        self._next_sequence = max(self._next_sequence, sequence + 1)

    def write(self, payload: bytes, clean: bool) -> Tuple[int, float]:
        """Write one checkpoint; returns (sequence, latency_ms)."""
        sequence = self._next_sequence
        page_size = self.device.geometry.page_size
        chunks = [payload[i : i + page_size] for i in range(0, len(payload), page_size)]
        if 1 + len(chunks) > self._slot_pages:
            raise ConfigurationError(
                f"checkpoint of {len(payload)} bytes does not fit in a "
                f"{self._slot_pages}-page slot"
            )
        header = CHECKPOINT_HEADER.pack(
            CHECKPOINT_MAGIC, sequence, len(payload), zlib.crc32(payload), 1 if clean else 0
        )
        slot_start = self._slot_starts[sequence % 2]
        latency = self.device.write_range(slot_start, [header] + chunks)
        self._next_sequence = sequence + 1
        return sequence, latency

    def _read_slot(self, slot_start: int) -> Optional[Tuple[int, bool, bytes, float]]:
        """Decode one slot; None when absent, torn or CRC-inconsistent."""
        if self.device.page_state(slot_start) is not PageState.VALID:
            return None
        header, latency = self.device.read_page(slot_start)
        if len(header) < CHECKPOINT_HEADER.size or not header.startswith(CHECKPOINT_MAGIC):
            return None
        _magic, sequence, length, crc, clean = CHECKPOINT_HEADER.unpack_from(header, 0)
        page_size = self.device.geometry.page_size
        num_chunks = (length + page_size - 1) // page_size if length else 0
        if 1 + num_chunks > self._slot_pages:
            return None
        for offset in range(num_chunks):
            if self.device.page_state(slot_start + 1 + offset) is not PageState.VALID:
                return None
        try:
            chunks, read_latency = (
                self.device.read_range(slot_start + 1, num_chunks) if num_chunks else ([], 0.0)
            )
        except TornPageError:  # pragma: no cover - states checked above
            return None
        payload = b"".join(chunks)[:length]
        if len(payload) != length or zlib.crc32(payload) != crc:
            return None
        return sequence, bool(clean), payload, latency + read_latency

    def read_latest(self) -> Optional[Tuple[int, bool, bytes, float]]:
        """The intact checkpoint with the highest sequence, if any.

        Returns ``(sequence, clean, payload, latency_ms)``.
        """
        best: Optional[Tuple[int, bool, bytes, float]] = None
        total_latency = 0.0
        for slot_start in self._slot_starts:
            decoded = self._read_slot(slot_start)
            if decoded is None:
                continue
            total_latency += decoded[3]
            if best is None or decoded[0] > best[0]:
                best = decoded
        if best is None:
            return None
        return best[0], best[1], best[2], total_latency
