"""Partitioned BufferHash: many super tables behind one hash-table interface (§5.2).

The key space is partitioned by hashing each key to one of ``2^k1`` super
tables; the remaining hash bits address the key within that super table.
Partitioning keeps every buffer small (ideally one flash block), so flushes
are short, blocking lookups rarely wait behind them and evictions stay cheap.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import CLAMConfig
from repro.core.errors import ConfigurationError
from repro.core.eviction import EvictionPolicy, make_policy
from repro.core.hashing import PARTITION_SEED, KeyLike, canonical_key, hash_key
from repro.core.results import DeleteResult, InsertResult, LookupResult
from repro.core.storage import (
    IncarnationStore,
    MultiDeviceLogStore,
    PartitionedChipStore,
    WholeDeviceLogStore,
)
from repro.core.supertable import SuperTable
from repro.flashsim.clock import SimulationClock
from repro.flashsim.device import StorageDevice
from repro.flashsim.flash_chip import FlashChip

#: Backwards-compatible alias; the canonical seed lives in repro.core.hashing.
_PARTITION_SEED = PARTITION_SEED


class BufferHash:
    """A hash table over (key, value) byte strings, spread across super tables.

    Parameters
    ----------
    config:
        Structural parameters (:class:`~repro.core.config.CLAMConfig`).
    device:
        The flash/SSD/disk device holding incarnations, or a *list* of SSDs
        to distribute super tables across (§5.2's multi-SSD deployment).
    clock:
        Simulation clock shared with the device(s).
    eviction_policy:
        Optional policy instance; when omitted it is built from
        ``config.eviction_policy_name``.
    store:
        Optional pre-built :class:`~repro.core.storage.IncarnationStore`,
        overriding the automatically selected layout.
    """

    def __init__(
        self,
        config: CLAMConfig,
        device,
        clock: Optional[SimulationClock] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        store: Optional[IncarnationStore] = None,
    ) -> None:
        self.config = config
        if isinstance(device, (list, tuple)):
            if not device:
                raise ConfigurationError("device list must not be empty")
            self.devices: List[StorageDevice] = list(device)
            self.device = self.devices[0]
        else:
            self.devices = [device]
            self.device = device
        self.clock = clock if clock is not None else self.device.clock
        for member in self.devices:
            if self.clock is not member.clock:
                raise ConfigurationError("BufferHash and its devices must share a clock")

        page_size = config.page_size_bytes or self.device.geometry.page_size
        if page_size > self.device.geometry.block_size:
            raise ConfigurationError("page_size cannot exceed the device block size")
        self.page_size = page_size
        self.pages_per_incarnation = config.pages_per_incarnation(page_size)

        self.store = store if store is not None else self._build_store()
        self.incarnations_per_table = self._resolve_incarnations_per_table()

        if eviction_policy is None:
            eviction_policy = make_policy(config.eviction_policy_name)
        self.eviction_policy = eviction_policy

        self.tables: List[SuperTable] = [
            SuperTable(
                table_id=index,
                store=self.store,
                clock=self.clock,
                buffer_capacity_items=config.buffer_capacity_items,
                buffer_slots=config.buffer_slots,
                max_incarnations=self.incarnations_per_table,
                page_size=page_size,
                pages_per_incarnation=self.pages_per_incarnation,
                bloom_bits=config.bloom_bits_per_incarnation(),
                memory_cost=config.memory_cost,
                eviction_policy=eviction_policy,
                use_bloom_filters=config.use_bloom_filters,
                use_bit_slicing=config.use_bit_slicing,
                use_hash_once=config.use_hash_once,
            )
            for index in range(config.num_super_tables)
        ]

    # -- Construction helpers ---------------------------------------------------------

    def _build_store(self) -> IncarnationStore:
        if len(self.devices) > 1:
            return MultiDeviceLogStore(self.devices)
        device = self.device
        if isinstance(device, FlashChip):
            return PartitionedChipStore(
                chip=device,
                num_partitions=self.config.num_super_tables,
                pages_per_incarnation=self._chip_aligned_pages(device),
            )
        return WholeDeviceLogStore(device)

    def _chip_aligned_pages(self, chip: FlashChip) -> int:
        """On raw chips incarnation slots are rounded up to whole blocks."""
        pages_per_block = chip.geometry.pages_per_block
        pages = self.pages_per_incarnation
        if pages % pages_per_block:
            pages = ((pages // pages_per_block) + 1) * pages_per_block
        self.pages_per_incarnation = pages
        return pages

    def _resolve_incarnations_per_table(self) -> int:
        """Use the configured k, or derive the largest k the device(s) can hold."""
        capacity_pages = sum(member.geometry.total_pages for member in self.devices)
        max_total_incarnations = capacity_pages // self.pages_per_incarnation
        max_per_table = max_total_incarnations // self.config.num_super_tables
        if max_per_table < 1:
            raise ConfigurationError(
                "device too small: cannot hold one incarnation per super table "
                f"(pages={capacity_pages}, pages_per_incarnation={self.pages_per_incarnation}, "
                f"super_tables={self.config.num_super_tables})"
            )
        configured = self.config.incarnations_per_table
        if configured is None:
            return max_per_table
        if configured > max_per_table:
            raise ConfigurationError(
                f"incarnations_per_table={configured} exceeds device capacity "
                f"(max {max_per_table} per super table)"
            )
        return configured

    # -- Partitioning -------------------------------------------------------------------

    def _canonical(self, key: KeyLike) -> KeyLike:
        """Canonicalise ``key`` exactly once at this API boundary.

        Hash-once mode wraps the key in a (cached) KeyDigest that every layer
        below reuses; the ablation mode reproduces the original per-layer
        re-hashing by passing plain canonical bytes through (shared policy:
        :func:`repro.core.hashing.canonical_key`).
        """
        return canonical_key(key, self.config.use_hash_once)

    def _table_for_canonical(self, key: KeyLike) -> SuperTable:
        """Partition an already-canonicalised key (first k1 hash bits)."""
        return self.tables[hash_key(key, seed=PARTITION_SEED) % len(self.tables)]

    def table_for(self, key: KeyLike) -> SuperTable:
        """The super table owning ``key`` (first k1 hash bits in the paper)."""
        return self._table_for_canonical(self._canonical(key))

    # -- Hash-table operations ------------------------------------------------------------

    def insert(self, key: KeyLike, value: bytes) -> InsertResult:
        """Insert or update a key."""
        key = self._canonical(key)
        return self._table_for_canonical(key).insert(key, bytes(value))

    def update(self, key: KeyLike, value: bytes) -> InsertResult:
        """Lazy update (alias of insert)."""
        return self.insert(key, value)

    def lookup(self, key: KeyLike) -> LookupResult:
        """Return the most recent value for a key."""
        key = self._canonical(key)
        return self._table_for_canonical(key).lookup(key)

    def delete(self, key: KeyLike) -> DeleteResult:
        """Delete a key lazily."""
        key = self._canonical(key)
        return self._table_for_canonical(key).delete(key)

    def get(self, key: KeyLike) -> Optional[bytes]:
        """Convenience accessor returning just the value (or ``None``)."""
        return self.lookup(key).value

    def __contains__(self, key: KeyLike) -> bool:
        return self.lookup(key).found

    # -- Aggregate state --------------------------------------------------------------------

    @property
    def total_incarnations(self) -> int:
        """Live incarnations across every super table."""
        return sum(table.incarnation_count for table in self.tables)

    @property
    def total_flushes(self) -> int:
        """Buffer flushes performed so far."""
        return sum(table.flush_count for table in self.tables)

    @property
    def total_evictions(self) -> int:
        """Incarnation evictions performed so far."""
        return sum(table.eviction_count for table in self.tables)

    def cascade_histogram(self) -> Dict[int, int]:
        """Histogram of incarnations tried per flush (Figure 8b)."""
        merged: Dict[int, int] = {}
        for table in self.tables:
            for tried, count in table.cascade_histogram.items():
                merged[tried] = merged.get(tried, 0) + count
        return merged

    def snapshot_items(self) -> Dict[bytes, bytes]:
        """All live items across every super table (offline/test helper)."""
        merged: Dict[bytes, bytes] = {}
        for table in self.tables:
            merged.update(table.snapshot_items())
        return merged
