"""Crash recovery for CLAMs on persistent flash: DurableCLAM.

The paper's robustness argument (§5) is that flash-resident incarnations are
*persistent*: after a crash only the in-DRAM buffers are lost, and the
hashtable can be rebuilt from flash.  :class:`DurableCLAM` realises that
contract on a :class:`~repro.flashsim.persistent.PersistentFlashDevice`:

* **Acknowledged writes survive.**  A write is acknowledged once the
  incarnation flush containing it completed (the log record's streaming
  write returned).  Recovery re-registers every such incarnation, so the
  crash-at-every-I/O sweep in ``tests/test_crash_recovery.py`` asserts zero
  acknowledged-write loss at every possible power-cut point.
* **Buffered writes die with the power.**  Inserts still sitting in a DRAM
  buffer (and delete-list entries newer than the last checkpoint) are lost;
  the reopened CLAM reports this via a typed :class:`CrashRecoveryReport`
  instead of pretending nothing happened.

Recovery procedure, on opening an existing device file:

1. **Repair interrupted erases** — any block with erased-dirty pages (power
   failed mid-erase) is erased again before use.
2. **Restore the newest intact checkpoint**, if any: per-table incarnation
   handles with their serialised Bloom filter bits, delete lists and id
   counters come back without touching any data page.  Each checkpointed
   incarnation is verified against the media (header page must still carry
   the matching record, no page torn or overwritten) before it is trusted.
3. **Replay the log suffix** — records with a sequence number the checkpoint
   has not seen.  Overlapping claims on the same pages are resolved newest
   sequence first; records with torn tails (the flush the power cut
   interrupted) are discarded.  Surviving records are re-indexed by reading
   their pages and rebuilding their Bloom filters, oldest first per table.
4. **Trim** each table to its ``max_incarnations`` newest incarnations (an
   eviction that happened after the last checkpoint must not resurrect extra
   incarnations past the configured window).

With no checkpoint the same machinery cold-rebuilds from the whole log —
correct but paying one streaming read per surviving incarnation, which is
exactly the recovery-time difference ``benchmarks/bench_recovery.py``
measures.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, List, Optional, Tuple, Union

from repro.core.bloom import BloomFilter
from repro.core.clam import CLAM
from repro.core.config import CLAMConfig
from repro.core.durable import (
    RECORD_HEADER,
    RECORD_MAGIC,
    CheckpointRegion,
    CheckpointState,
    DurableLogStore,
    deserialize_checkpoint,
    read_superblock,
    serialize_checkpoint,
    write_superblock,
)
from repro.core.errors import ConfigurationError
from repro.core.eviction import EvictionPolicy
from repro.core.incarnation import IncarnationHandle, iter_page_entries
from repro.core.results import InsertResult
from repro.core.supertable import SuperTable
from repro.flashsim.clock import SimulationClock
from repro.flashsim.persistent import (
    FlashLayout,
    PageState,
    PersistentFlashDevice,
)
from repro.flashsim.device import DeviceGeometry
from repro.telemetry.events import EventLog


@dataclasses.dataclass(frozen=True)
class CrashRecoveryReport:
    """What recovery found and rebuilt when reopening a durable CLAM.

    Attributes
    ----------
    path:
        Backing file the CLAM was reopened from.
    clean_shutdown:
        True when the last session closed cleanly (final checkpoint carries
        the clean flag and no log record postdates it) — nothing was lost.
    may_have_lost_buffered_writes:
        The inverse contract statement: after an unclean shutdown, inserts
        that were still buffered in DRAM (never flushed to an incarnation)
        are gone, as are delete-list entries newer than the checkpoint.
    checkpoint_seq:
        Sequence of the checkpoint recovery restored from (None = cold
        rebuild from the log alone).
    incarnations_from_checkpoint:
        Incarnations restored straight from checkpointed handles + Bloom
        bits, without reading their data pages.
    log_records_replayed:
        Log-suffix records re-indexed by reading their pages.
    entries_rebuilt:
        Key/value entries re-indexed from those pages.
    pages_scanned:
        Log-partition pages examined by the recovery scan.
    torn_pages_discarded:
        Pages whose CRC framing failed (torn writes / half-programmed pages).
    stale_records_discarded:
        Record headers superseded by newer records claiming the same pages.
    interrupted_erase_blocks:
        Blocks found erased-dirty (power failed mid-erase) and re-erased.
    tables_restored:
        Super tables that came back with at least one incarnation.
    delete_list_entries:
        Lazy-delete entries restored from the checkpoint.
    recovery_io_ms:
        Simulated milliseconds of device I/O spent recovering.
    wall_time_s:
        Real (host) seconds recovery took.
    """

    path: str
    clean_shutdown: bool
    may_have_lost_buffered_writes: bool
    checkpoint_seq: Optional[int]
    incarnations_from_checkpoint: int
    log_records_replayed: int
    entries_rebuilt: int
    pages_scanned: int
    torn_pages_discarded: int
    stale_records_discarded: int
    interrupted_erase_blocks: int
    tables_restored: int
    delete_list_entries: int
    recovery_io_ms: float
    wall_time_s: float

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class _LogRecord:
    """One parsed incarnation-record header found by the log scan."""

    header_page: int
    owner: int
    incarnation_id: int
    sequence: int
    num_pages: int

    @property
    def data_address(self) -> int:
        return self.header_page + 1

    @property
    def span(self) -> Tuple[int, int]:
        """Half-open page interval the whole record occupies."""
        return self.header_page, self.header_page + 1 + self.num_pages


def _overlaps(span: Tuple[int, int], claimed: List[Tuple[int, int]]) -> bool:
    start, end = span
    return any(start < c_end and c_start < end for c_start, c_end in claimed)


class DurableCLAM(CLAM):
    """A CLAM persisted on a file-backed flash device, with crash recovery.

    Opening a path that does not exist (or is empty) creates a fresh device:
    the configuration is stamped into the superblock partition and the CLAM
    starts empty.  Opening an existing file runs the recovery procedure
    described in the module docstring and exposes its findings as
    :attr:`recovery_report`.

    Use as a context manager (or call :meth:`close`) so buffers are flushed,
    a final clean checkpoint is written and the mmap is released::

        with DurableCLAM("shard0.clam") as clam:
            clam.insert(b"key", b"value")
        # reopen: nothing lost
        with DurableCLAM("shard0.clam") as clam:
            assert clam.get(b"key") == b"value"

    Set ``CLAMConfig.checkpoint_interval_flushes`` (e.g. via
    ``CLAMConfig.scaled(checkpoint_interval_flushes=64)``) to also checkpoint
    periodically during operation, so recovery after a hard power cut replays
    a short log suffix instead of cold-rebuilding every incarnation.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        config: Optional[CLAMConfig] = None,
        geometry: Optional[DeviceGeometry] = None,
        layout: Optional[FlashLayout] = None,
        clock: Optional[SimulationClock] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        keep_latency_samples: bool = True,
        events: Optional[EventLog] = None,
        name: Optional[str] = None,
    ) -> None:
        self.path = os.fspath(path)
        existing = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        device = PersistentFlashDevice(
            self.path, geometry=geometry, layout=layout, clock=clock, name=name
        )
        try:
            if existing:
                stored_config, _latency = read_superblock(device)
                if config is not None and config != stored_config:
                    raise ConfigurationError(
                        f"configuration mismatch for {self.path!r}: the superblock "
                        "records different parameters; open without an explicit "
                        "config to adopt the stored one"
                    )
                config = stored_config
            else:
                config = config if config is not None else CLAMConfig.scaled()
                if not config.use_buffering:
                    raise ConfigurationError(
                        "DurableCLAM requires use_buffering=True (the unbuffered "
                        "ablation keeps its data in DRAM and cannot be recovered)"
                    )
                write_superblock(device, config)
        except BaseException:
            device.close()
            raise
        store = DurableLogStore(device)
        super().__init__(
            config=config,
            storage=device,
            eviction_policy=eviction_policy,
            keep_latency_samples=keep_latency_samples,
            store=store,
        )
        self.log_store = store
        self.checkpoints = CheckpointRegion(device)
        self.events = events if events is not None else EventLog(clock=self.clock)
        self._checkpoint_every = config.checkpoint_interval_flushes
        self._flushes_since_checkpoint = 0
        self._closed = False
        #: Populated when the CLAM was reopened from an existing file.
        self.recovery_report: Optional[CrashRecoveryReport] = None
        if existing:
            self.recovery_report = self._recover()

    # -- Properties ------------------------------------------------------------

    @property
    def persistent_device(self) -> PersistentFlashDevice:
        """The file-backed device (typed accessor for callers)."""
        return self.device  # type: ignore[return-value]

    @property
    def closed(self) -> bool:
        return self._closed

    # -- Recovery --------------------------------------------------------------

    def _recover(self) -> CrashRecoveryReport:
        device = self.persistent_device
        wall_start = time.perf_counter()
        io_start_ms = self.clock.now_ms
        self.events.record("crash_recovery_started", path=self.path)

        interrupted_blocks = self._repair_interrupted_erases()
        checkpoint = self._load_checkpoint()
        checkpoint_cutoff = checkpoint.next_seq if checkpoint is not None else 1

        records, pages_scanned, torn_pages = self._scan_log()
        for page in torn_pages:
            self.events.record("torn_page_discarded", page=page, device=device.name)

        # Newest-first overlap resolution: a page belongs to the record with
        # the highest sequence number that claims it.
        records.sort(key=lambda record: record.sequence, reverse=True)
        claimed: List[Tuple[int, int]] = []
        accepted: List[_LogRecord] = []
        stale_records = 0
        torn_records = 0
        for record in records:
            if record.sequence < checkpoint_cutoff:
                # Predates the checkpoint: the checkpoint is authoritative for
                # everything it has seen (live handles restore below; anything
                # else was already released).
                continue
            if _overlaps(record.span, claimed):
                stale_records += 1
                continue
            if any(
                device.page_state(page) is not PageState.VALID
                for page in range(record.data_address, record.data_address + record.num_pages)
            ):
                torn_records += 1
                continue
            accepted.append(record)
            claimed.append(record.span)

        suffix_by_owner: Dict[int, List[_LogRecord]] = {}
        for record in accepted:
            suffix_by_owner.setdefault(record.owner, []).append(record)
        for owner_records in suffix_by_owner.values():
            owner_records.sort(key=lambda record: record.incarnation_id)

        checkpoint_tables = (
            {table.table_id: table for table in checkpoint.tables} if checkpoint else {}
        )

        entries_rebuilt = 0
        replayed = 0
        from_checkpoint = 0
        delete_entries = 0
        tables_restored = 0
        assert self.bufferhash is not None  # guaranteed by the constructor
        for table in self.bufferhash.tables:
            table_state = checkpoint_tables.get(table.table_id)
            candidates: List[
                Tuple[int, Optional[Tuple[IncarnationHandle, BloomFilter]], Optional[_LogRecord]]
            ] = []
            if table_state is not None:
                for handle, bloom in table_state.incarnations:
                    if not self._checkpoint_handle_intact(table.table_id, handle, claimed):
                        stale_records += 1
                        continue
                    candidates.append((handle.incarnation_id, (handle, bloom), None))
            for record in suffix_by_owner.get(table.table_id, ()):
                candidates.append((record.incarnation_id, None, record))
            candidates.sort(key=lambda entry: entry[0])
            kept = candidates[-table.max_incarnations :]
            for _incarnation_id, from_ckpt, record in kept:
                if from_ckpt is not None:
                    table.restore_incarnation(*from_ckpt)
                    from_checkpoint += 1
                else:
                    assert record is not None
                    count = self._replay_record(table, record)
                    entries_rebuilt += count
                    replayed += 1
            if table_state is not None:
                table.restore_delete_list(table_state.delete_list)
                delete_entries += len(table_state.delete_list)
                table.advance_incarnation_counter(table_state.next_incarnation_id)
            if table.incarnation_count:
                tables_restored += 1

        self._restore_store_state(checkpoint, accepted)

        clean = (
            checkpoint is not None
            and checkpoint.clean
            and not accepted
            and not torn_pages
        )
        report = CrashRecoveryReport(
            path=self.path,
            clean_shutdown=clean,
            may_have_lost_buffered_writes=not clean,
            checkpoint_seq=checkpoint.sequence if checkpoint else None,
            incarnations_from_checkpoint=from_checkpoint,
            log_records_replayed=replayed,
            entries_rebuilt=entries_rebuilt,
            pages_scanned=pages_scanned,
            torn_pages_discarded=len(torn_pages) + torn_records,
            stale_records_discarded=stale_records,
            interrupted_erase_blocks=interrupted_blocks,
            tables_restored=tables_restored,
            delete_list_entries=delete_entries,
            recovery_io_ms=self.clock.now_ms - io_start_ms,
            wall_time_s=time.perf_counter() - wall_start,
        )
        self.events.record(
            "crash_recovery_completed",
            clean_shutdown=report.clean_shutdown,
            pages_scanned=report.pages_scanned,
            entries_rebuilt=report.entries_rebuilt,
            incarnations_from_checkpoint=report.incarnations_from_checkpoint,
            log_records_replayed=report.log_records_replayed,
            torn_pages_discarded=report.torn_pages_discarded,
            recovery_io_ms=report.recovery_io_ms,
        )
        return report

    def _repair_interrupted_erases(self) -> int:
        """Re-erase every block left erased-dirty by a mid-erase power cut."""
        device = self.persistent_device
        geometry = device.geometry
        repaired = 0
        for block in range(geometry.num_blocks):
            start = block * geometry.pages_per_block
            if any(
                device.page_state(page) is PageState.ERASED_DIRTY
                for page in range(start, start + geometry.pages_per_block)
            ):
                device.erase_block(block)
                repaired += 1
        return repaired

    def _load_checkpoint(self) -> Optional[CheckpointState]:
        decoded = self.checkpoints.read_latest()
        if decoded is None:
            return None
        sequence, clean, payload, _latency = decoded
        try:
            state = deserialize_checkpoint(sequence, clean, payload)
        except (ValueError, KeyError, IndexError):
            return None
        self.checkpoints.note_sequence(state.sequence)
        return state

    def _scan_log(self) -> Tuple[List[_LogRecord], int, List[int]]:
        """Find record headers in the log partition without charging reads.

        Classification uses the per-page frame state (spare-area metadata);
        the pages recovery actually rebuilds from are read — and costed —
        in :meth:`_replay_record`.
        """
        device = self.persistent_device
        partition = device.layout.partition("log")
        start = partition.start_page(device.geometry)
        end = start + partition.num_pages(device.geometry)
        records: List[_LogRecord] = []
        torn_pages: List[int] = []
        pages_scanned = 0
        for page in range(start, end):
            pages_scanned += 1
            state = device.page_state(page)
            if state is PageState.TORN:
                torn_pages.append(page)
                continue
            if state is not PageState.VALID:
                continue
            payload = device.peek_page(page)
            if payload is None or len(payload) < RECORD_HEADER.size:
                continue
            if not payload.startswith(RECORD_MAGIC):
                continue
            _magic, owner, incarnation_id, sequence, num_pages = RECORD_HEADER.unpack_from(
                payload, 0
            )
            if num_pages <= 0 or page + 1 + num_pages > end:
                continue
            records.append(
                _LogRecord(
                    header_page=page,
                    owner=owner,
                    incarnation_id=incarnation_id,
                    sequence=sequence,
                    num_pages=num_pages,
                )
            )
        return records, pages_scanned, torn_pages

    def _checkpoint_handle_intact(
        self,
        table_id: int,
        handle: IncarnationHandle,
        claimed: List[Tuple[int, int]],
    ) -> bool:
        """Is a checkpointed incarnation still fully present on media?

        False when the space was reclaimed after the checkpoint — its header
        no longer matches, a page is torn/erased, or a newer accepted record
        overwrote part of its span.
        """
        device = self.persistent_device
        header_page = handle.address - 1
        span = (header_page, handle.address + handle.num_pages)
        if header_page < 0 or _overlaps(span, claimed):
            return False
        payload = device.peek_page(header_page)
        if payload is None or len(payload) < RECORD_HEADER.size:
            return False
        if not payload.startswith(RECORD_MAGIC):
            return False
        _magic, owner, incarnation_id, _sequence, num_pages = RECORD_HEADER.unpack_from(
            payload, 0
        )
        if owner != table_id or incarnation_id != handle.incarnation_id:
            return False
        if num_pages != handle.num_pages:
            return False
        return all(
            device.page_state(page) is PageState.VALID
            for page in range(handle.address, handle.address + handle.num_pages)
        )

    def _replay_record(self, table: SuperTable, record: _LogRecord) -> int:
        """Re-index one log record: read its pages, rebuild its Bloom filter."""
        pages, _latency = self.persistent_device.read_range(
            record.data_address, record.num_pages
        )
        items: Dict[bytes, bytes] = {}
        for image in pages:
            for key, value in iter_page_entries(image):
                items[key] = value
        bloom = BloomFilter(table.buffer.bloom_bits, table.buffer.bloom_hashes)
        bloom.update(items.keys())
        handle = IncarnationHandle(
            incarnation_id=record.incarnation_id,
            address=record.data_address,
            num_pages=record.num_pages,
            item_count=len(items),
        )
        table.restore_incarnation(handle, bloom)
        return len(items)

    def _restore_store_state(
        self, checkpoint: Optional[CheckpointState], accepted: List[_LogRecord]
    ) -> None:
        """Rebuild the log store's allocator state from the restored tables."""
        assert self.bufferhash is not None
        live: Dict[int, int] = {}
        owner_ids: Dict[int, int] = {}
        for table in self.bufferhash.tables:
            for handle in table.incarnation_handles:
                live[handle.address - 1] = handle.num_pages + 1
            owner_ids[table.table_id] = table.next_incarnation_id
        next_seq = checkpoint.next_seq if checkpoint is not None else 1
        head = checkpoint.head if checkpoint is not None else None
        wraps = checkpoint.wraps if checkpoint is not None else 0
        if accepted:
            newest = max(accepted, key=lambda record: record.sequence)
            next_seq = max(next_seq, newest.sequence + 1)
            head = newest.span[1]
        if head is None:
            partition = self.persistent_device.layout.partition("log")
            head = partition.start_page(self.persistent_device.geometry)
        self.log_store.restore_state(
            next_seq=next_seq, head=head, wraps=wraps, owner_next_ids=owner_ids, live=live
        )

    # -- Checkpointing ---------------------------------------------------------

    def checkpoint(self, clean: bool = False) -> int:
        """Write a checkpoint now; returns its sequence number."""
        assert self.bufferhash is not None
        payload = serialize_checkpoint(self.log_store, self.bufferhash.tables)
        sequence, _latency = self.checkpoints.write(payload, clean=clean)
        self._flushes_since_checkpoint = 0
        self.events.record("checkpoint_written", sequence=sequence, payload_bytes=len(payload))
        return sequence

    def insert(self, key, value) -> InsertResult:
        result = super().insert(key, value)
        if self._checkpoint_every is not None and result.flushed:
            self._flushes_since_checkpoint += 1
            if self._flushes_since_checkpoint >= self._checkpoint_every:
                self.checkpoint()
        return result

    # -- Lifecycle -------------------------------------------------------------

    def flush_buffers(self) -> int:
        """Flush every non-empty buffer to flash; returns flushes performed.

        After this returns, every previously buffered insert is acknowledged
        (it lives in an on-flash incarnation and will survive a power cut).
        """
        assert self.bufferhash is not None
        flushed = 0
        for table in self.bufferhash.tables:
            if len(table.buffer):
                table.flush()
                flushed += 1
        return flushed

    def close(self, flush_buffers: bool = True) -> None:
        """Flush, write a final clean checkpoint and release the device.

        Idempotent.  When the device is dead (crash-stopped or power-cut) the
        flush and checkpoint are skipped — there is no device to write to —
        and only the file mapping is released.
        """
        if self._closed:
            return
        self._closed = True
        device = self.persistent_device
        try:
            if not device.closed and not device.faults.is_crashed:
                if flush_buffers:
                    self.flush_buffers()
                self.checkpoint(clean=True)
                device.flush()
        finally:
            device.close()

    def __enter__(self) -> "DurableCLAM":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
