"""Placement of incarnations on storage devices.

Section 5.2 of the paper describes two layouts:

* on a raw **flash chip**, the chip is statically partitioned, one partition
  per super table, and each super table writes its incarnations circularly
  within its partition, erasing blocks as it wraps;
* on an **SSD**, interleaved writes to per-partition regions defeat the FTL,
  so BufferHash instead treats the whole device as a single circular log and
  appends incarnations from *all* super tables in flush order, remembering
  each incarnation's device address alongside its Bloom filter.

Both layouts are implemented here behind the common :class:`IncarnationStore`
interface used by :class:`~repro.core.supertable.SuperTable`.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Set, Tuple

from repro.core.errors import ConfigurationError
from repro.flashsim.device import StorageDevice
from repro.flashsim.flash_chip import FlashChip


class IncarnationStore(abc.ABC):
    """Writes incarnation page images to a device and reads them back."""

    @abc.abstractmethod
    def write_incarnation(self, pages: List[bytes]) -> Tuple[int, float]:
        """Append an incarnation; returns ``(address, latency_ms)``.

        ``address`` is the device page index of the incarnation's first page
        and remains valid until :meth:`release` is called for it.
        """

    @abc.abstractmethod
    def read_page(self, address: int, page_offset: int) -> Tuple[bytes, float]:
        """Read one page of a previously written incarnation."""

    @abc.abstractmethod
    def read_incarnation(self, address: int, num_pages: int) -> Tuple[List[bytes], float]:
        """Read all pages of an incarnation (used by partial-discard eviction)."""

    @abc.abstractmethod
    def release(self, address: int, num_pages: int) -> None:
        """Mark an incarnation's space as reclaimable."""


class WholeDeviceLogStore(IncarnationStore):
    """Single circular log across the whole device (the SSD/disk layout).

    Incarnations from every super table are appended sequentially in flush
    order.  When the log head wraps around it reuses released regions; live
    regions that have not been released yet are skipped over (this can only
    happen transiently when super tables flush at different rates, and the
    skipped space becomes reusable as soon as its owner evicts).
    """

    def __init__(self, device: StorageDevice, reserve_fraction: float = 0.0) -> None:
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        self.device = device
        self._total_pages = int(device.geometry.total_pages * (1.0 - reserve_fraction))
        if self._total_pages <= 0:
            raise ConfigurationError("device has no usable pages")
        self._head = 0
        self._wraps = 0
        # address -> number of pages, for regions that are currently live.
        self._live: Dict[int, int] = {}
        self._released: Set[int] = set()

    @property
    def capacity_pages(self) -> int:
        """Number of device pages the log may use."""
        return self._total_pages

    @property
    def wrap_count(self) -> int:
        """How many times the log head has wrapped around the device."""
        return self._wraps

    def _region_is_free(self, start: int, num_pages: int) -> bool:
        for address, length in self._live.items():
            if start < address + length and address < start + num_pages:
                return False
        return True

    def _advance_head(self, num_pages: int) -> int:
        """Find the next position with ``num_pages`` of free, contiguous space."""
        if num_pages > self._total_pages:
            raise ConfigurationError(
                f"incarnation of {num_pages} pages exceeds device capacity "
                f"{self._total_pages} pages"
            )
        attempts = 0
        while attempts < self._total_pages:
            if self._head + num_pages > self._total_pages:
                self._head = 0
                self._wraps += 1
            start = self._head
            if self._region_is_free(start, num_pages):
                self._head = start + num_pages
                return start
            # Skip past the blocking live region.
            blocking_end = start + 1
            for address, length in self._live.items():
                if address <= start < address + length:
                    blocking_end = max(blocking_end, address + length)
            attempts += blocking_end - self._head
            self._head = blocking_end
        raise ConfigurationError(
            "incarnation store is full: no released space to reuse; "
            "the flash is too small for the configured number of incarnations"
        )

    def write_incarnation(self, pages: List[bytes]) -> Tuple[int, float]:
        if not pages:
            raise ValueError("pages must be non-empty")
        address = self._advance_head(len(pages))
        latency = self.device.write_range(address, pages)
        self._live[address] = len(pages)
        self._released.discard(address)
        return address, latency

    def read_page(self, address: int, page_offset: int) -> Tuple[bytes, float]:
        return self.device.read_page(address + page_offset)

    def read_incarnation(self, address: int, num_pages: int) -> Tuple[List[bytes], float]:
        return self.device.read_range(address, num_pages)

    def release(self, address: int, num_pages: int) -> None:
        self._live.pop(address, None)
        self._released.add(address)


class PartitionedDeviceStore(IncarnationStore):
    """Per-super-table partitions on a single SSD/disk — the layout §5.2 rejects.

    Each super table owns a statically assigned region of the device and
    writes its incarnations circularly within it.  Although every partition
    is written sequentially *from its own point of view*, consecutive flushes
    come from different super tables, so the device sees writes jumping
    between far-apart regions — which defeats the FTL's sequential-write
    optimisation exactly as the paper describes ("writes from different super
    tables to different partitions may be interleaved, resulting in a
    performance worse than a single sequential write").

    Provided for the layout ablation benchmark; production use should prefer
    :class:`WholeDeviceLogStore`.
    """

    def __init__(self, device: StorageDevice, num_partitions: int, pages_per_incarnation: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if pages_per_incarnation <= 0:
            raise ValueError("pages_per_incarnation must be positive")
        total_pages = device.geometry.total_pages
        partition_pages = total_pages // num_partitions
        if partition_pages < pages_per_incarnation:
            raise ConfigurationError(
                "each partition must hold at least one incarnation: "
                f"partition_pages={partition_pages}, needed={pages_per_incarnation}"
            )
        self.device = device
        self.num_partitions = num_partitions
        self.pages_per_incarnation = pages_per_incarnation
        self.partition_pages = partition_pages
        self.slots_per_partition = partition_pages // pages_per_incarnation
        self._next_slot: Dict[int, int] = {}
        self._partition_of_owner: Dict[int, int] = {}
        self._next_partition = 0

    def _partition_for(self, owner_id: int) -> int:
        if owner_id not in self._partition_of_owner:
            if self._next_partition >= self.num_partitions:
                raise ConfigurationError("more super tables than partitions")
            self._partition_of_owner[owner_id] = self._next_partition
            self._next_partition += 1
        return self._partition_of_owner[owner_id]

    def write_incarnation_for(self, owner_id: int, pages: List[bytes]) -> Tuple[int, float]:
        """Write an incarnation into ``owner_id``'s partition slot ring."""
        if len(pages) > self.pages_per_incarnation:
            raise ConfigurationError(
                f"incarnation has {len(pages)} pages but slots hold {self.pages_per_incarnation}"
            )
        partition = self._partition_for(owner_id)
        slot = self._next_slot.get(partition, 0)
        address = partition * self.partition_pages + slot * self.pages_per_incarnation
        # Writing page-by-page (each partition maintains its own write point)
        # prevents the device from recognising one long sequential stream.
        latency = 0.0
        for offset, image in enumerate(pages):
            latency += self.device.write_page(address + offset, image)
        self._next_slot[partition] = (slot + 1) % self.slots_per_partition
        return address, latency

    def write_incarnation(self, pages: List[bytes]) -> Tuple[int, float]:
        return self.write_incarnation_for(0, pages)

    def read_page(self, address: int, page_offset: int) -> Tuple[bytes, float]:
        return self.device.read_page(address + page_offset)

    def read_incarnation(self, address: int, num_pages: int) -> Tuple[List[bytes], float]:
        return self.device.read_range(address, num_pages)

    def release(self, address: int, num_pages: int) -> None:
        # Slots are reused in place when the partition ring wraps.
        return None


class MultiDeviceLogStore(IncarnationStore):
    """Distributes super tables across several SSDs (§5.2, last paragraph).

    "Partitioning also naturally supports using multiple SSDs in parallel, by
    distributing partitions to different SSDs."  Each backing device runs its
    own whole-device circular log; a super table's incarnations always go to
    the device its partition is assigned to (round robin by owner id), so
    each device still sees purely sequential incarnation writes.

    Addresses returned to callers are globally unique: the owning device's
    index is encoded in the high part of the address.
    """

    def __init__(self, devices: List[StorageDevice], reserve_fraction: float = 0.0) -> None:
        if not devices:
            raise ConfigurationError("at least one device is required")
        clock = devices[0].clock
        for device in devices[1:]:
            if device.clock is not clock:
                raise ConfigurationError("all devices must share one simulation clock")
        self.devices = list(devices)
        self._stores = [WholeDeviceLogStore(device, reserve_fraction) for device in devices]
        # Address stride large enough to keep per-device page indexes disjoint.
        self._stride = max(device.geometry.total_pages for device in devices)

    def _device_index_for_owner(self, owner_id: int) -> int:
        return owner_id % len(self._stores)

    def _encode(self, device_index: int, address: int) -> int:
        return device_index * self._stride + address

    def _decode(self, address: int) -> Tuple[int, int]:
        return address // self._stride, address % self._stride

    def write_incarnation_for(self, owner_id: int, pages: List[bytes]) -> Tuple[int, float]:
        """Append an incarnation to the device owning ``owner_id``'s partition."""
        device_index = self._device_index_for_owner(owner_id)
        address, latency = self._stores[device_index].write_incarnation(pages)
        return self._encode(device_index, address), latency

    def write_incarnation(self, pages: List[bytes]) -> Tuple[int, float]:
        return self.write_incarnation_for(0, pages)

    def read_page(self, address: int, page_offset: int) -> Tuple[bytes, float]:
        device_index, local = self._decode(address)
        return self._stores[device_index].read_page(local, page_offset)

    def read_incarnation(self, address: int, num_pages: int) -> Tuple[List[bytes], float]:
        device_index, local = self._decode(address)
        return self._stores[device_index].read_incarnation(local, num_pages)

    def release(self, address: int, num_pages: int) -> None:
        device_index, local = self._decode(address)
        self._stores[device_index].release(local, num_pages)


class PartitionedChipStore(IncarnationStore):
    """Per-partition circular layout on a raw flash chip.

    The chip is divided into equal partitions, one per super table.  Each
    partition is written circularly; before reusing a slot the store erases
    the blocks that slot occupies (the erase-before-write constraint of raw
    NAND).  Partition boundaries and incarnation sizes must be block aligned
    so that erasing one slot never destroys a neighbouring incarnation.
    """

    def __init__(self, chip: FlashChip, num_partitions: int, pages_per_incarnation: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if pages_per_incarnation <= 0:
            raise ValueError("pages_per_incarnation must be positive")
        geometry = chip.geometry
        pages_per_block = geometry.pages_per_block
        if pages_per_incarnation % pages_per_block != 0 and pages_per_block % pages_per_incarnation != 0:
            raise ConfigurationError(
                "pages_per_incarnation must align with the flash block size "
                f"(pages_per_block={pages_per_block})"
            )
        total_pages = geometry.total_pages
        partition_pages = total_pages // num_partitions
        # Round partitions down to a whole number of blocks.
        partition_pages -= partition_pages % pages_per_block
        if partition_pages < pages_per_incarnation:
            raise ConfigurationError(
                "each partition must hold at least one incarnation: "
                f"partition_pages={partition_pages}, needed={pages_per_incarnation}"
            )
        self.chip = chip
        self.num_partitions = num_partitions
        self.pages_per_incarnation = pages_per_incarnation
        self.partition_pages = partition_pages
        self.slots_per_partition = partition_pages // pages_per_incarnation
        self._next_slot: List[int] = [0] * num_partitions
        self._next_partition_to_assign = 0
        # Super tables are assigned partitions lazily, in the order they first flush.
        self._partition_of_owner: Dict[int, int] = {}

    def partition_for_owner(self, owner_id: int) -> int:
        """Partition index assigned to ``owner_id`` (a super table index)."""
        if owner_id not in self._partition_of_owner:
            if self._next_partition_to_assign >= self.num_partitions:
                raise ConfigurationError("more super tables than chip partitions")
            self._partition_of_owner[owner_id] = self._next_partition_to_assign
            self._next_partition_to_assign += 1
        return self._partition_of_owner[owner_id]

    def _slot_address(self, partition: int, slot: int) -> int:
        return partition * self.partition_pages + slot * self.pages_per_incarnation

    def _erase_slot(self, address: int) -> float:
        """Erase every block overlapping the slot, if any of its pages are dirty."""
        pages_per_block = self.chip.geometry.pages_per_block
        first_block = address // pages_per_block
        last_block = (address + self.pages_per_incarnation - 1) // pages_per_block
        latency = 0.0
        for block in range(first_block, last_block + 1):
            block_start = block * pages_per_block
            dirty = any(
                self.chip.is_dirty(page)
                for page in range(block_start, block_start + pages_per_block)
            )
            if dirty:
                latency += self.chip.erase_block(block)
        return latency

    def write_incarnation_for(self, owner_id: int, pages: List[bytes]) -> Tuple[int, float]:
        """Write an incarnation inside ``owner_id``'s partition."""
        if len(pages) > self.pages_per_incarnation:
            raise ConfigurationError(
                f"incarnation has {len(pages)} pages but slots hold {self.pages_per_incarnation}"
            )
        partition = self.partition_for_owner(owner_id)
        slot = self._next_slot[partition]
        address = self._slot_address(partition, slot)
        latency = self._erase_slot(address)
        # Pad to the slot size so the layout stays block aligned.
        padded = list(pages) + [b""] * (self.pages_per_incarnation - len(pages))
        latency += self.chip.write_range(address, padded)
        self._next_slot[partition] = (slot + 1) % self.slots_per_partition
        return address, latency

    # The generic interface routes through owner 0; BufferHash uses
    # write_incarnation_for() directly so each super table stays in its partition.
    def write_incarnation(self, pages: List[bytes]) -> Tuple[int, float]:
        return self.write_incarnation_for(0, pages)

    def read_page(self, address: int, page_offset: int) -> Tuple[bytes, float]:
        return self.chip.read_page(address + page_offset)

    def read_incarnation(self, address: int, num_pages: int) -> Tuple[List[bytes], float]:
        return self.chip.read_range(address, num_pages)

    def release(self, address: int, num_pages: int) -> None:
        # Space is reclaimed by the erase that precedes the slot's reuse;
        # nothing to do eagerly.
        return None
