"""Result records returned by BufferHash / CLAM operations.

Every operation reports the simulated latency it incurred and how it was
served, so experiments can build the latency CDFs (Figures 6-8), the flash
I/O distribution (Table 2) and the per-operation breakdowns (§7.3) without
instrumenting the data structure from outside.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class ServedFrom(enum.Enum):
    """Where a lookup was resolved."""

    BUFFER = "buffer"
    INCARNATION = "incarnation"
    DELETED = "deleted"
    MISSING = "missing"


@dataclass
class LookupResult:
    """Outcome of one lookup."""

    key: bytes
    value: Optional[bytes]
    latency_ms: float
    served_from: ServedFrom
    flash_reads: int = 0
    incarnations_checked: int = 0
    false_positive_reads: int = 0

    @property
    def found(self) -> bool:
        """Whether a value was returned."""
        return self.value is not None


@dataclass
class InsertResult:
    """Outcome of one insert (or update)."""

    key: bytes
    latency_ms: float
    flushed: bool = False
    flush_latency_ms: float = 0.0
    incarnations_tried: int = 0
    flash_writes: int = 0
    flash_reads: int = 0


@dataclass
class DeleteResult:
    """Outcome of one delete."""

    key: bytes
    latency_ms: float
    removed_from_buffer: bool = False


@dataclass
class FlushResult:
    """Outcome of flushing a buffer to flash."""

    latency_ms: float = 0.0
    incarnations_written: int = 0
    incarnations_evicted: int = 0
    incarnations_tried: int = 0
    items_retained: int = 0
    flash_writes: int = 0
    flash_reads: int = 0
    forced_full_discard: bool = False


@dataclass
class OperationStats:
    """Running aggregates over many operations (maintained by CLAM)."""

    lookups: int = 0
    lookup_latency_total_ms: float = 0.0
    lookup_latency_max_ms: float = 0.0
    lookup_hits: int = 0
    inserts: int = 0
    insert_latency_total_ms: float = 0.0
    insert_latency_max_ms: float = 0.0
    deletes: int = 0
    flushes: int = 0
    evictions: int = 0
    flash_reads: int = 0
    flash_writes: int = 0
    false_positive_reads: int = 0
    reinsert_latency_total_ms: float = 0.0
    lookup_latencies_ms: list = field(default_factory=list)
    insert_latencies_ms: list = field(default_factory=list)
    keep_samples: bool = True

    def record_lookup(self, result: LookupResult) -> None:
        self.lookups += 1
        self.lookup_latency_total_ms += result.latency_ms
        if result.latency_ms > self.lookup_latency_max_ms:
            self.lookup_latency_max_ms = result.latency_ms
        if result.found:
            self.lookup_hits += 1
        self.flash_reads += result.flash_reads
        self.false_positive_reads += result.false_positive_reads
        if self.keep_samples:
            self.lookup_latencies_ms.append(result.latency_ms)

    def record_insert(self, result: InsertResult) -> None:
        self.inserts += 1
        self.insert_latency_total_ms += result.latency_ms
        if result.latency_ms > self.insert_latency_max_ms:
            self.insert_latency_max_ms = result.latency_ms
        if result.flushed:
            self.flushes += 1
        self.flash_writes += result.flash_writes
        self.flash_reads += result.flash_reads
        if self.keep_samples:
            self.insert_latencies_ms.append(result.latency_ms)

    @property
    def mean_lookup_latency_ms(self) -> float:
        """Mean lookup latency over all recorded lookups."""
        return self.lookup_latency_total_ms / self.lookups if self.lookups else 0.0

    @property
    def mean_insert_latency_ms(self) -> float:
        """Mean insert latency over all recorded inserts."""
        return self.insert_latency_total_ms / self.inserts if self.inserts else 0.0

    @property
    def lookup_success_rate(self) -> float:
        """Fraction of lookups that found a value."""
        return self.lookup_hits / self.lookups if self.lookups else 0.0

    def counters(self) -> dict:
        """Cheap flat snapshot of the aggregate counters (no sample lists).

        This is the per-instance stats hook the service layer merges across
        shards; it deliberately copies only O(1) scalars so polling a large
        fleet stays inexpensive even mid-run.
        """
        return {
            "lookups": float(self.lookups),
            "lookup_hits": float(self.lookup_hits),
            "lookup_latency_total_ms": self.lookup_latency_total_ms,
            "lookup_latency_max_ms": self.lookup_latency_max_ms,
            "inserts": float(self.inserts),
            "insert_latency_total_ms": self.insert_latency_total_ms,
            "insert_latency_max_ms": self.insert_latency_max_ms,
            "deletes": float(self.deletes),
            "flushes": float(self.flushes),
            "evictions": float(self.evictions),
            "flash_reads": float(self.flash_reads),
            "flash_writes": float(self.flash_writes),
            "false_positive_reads": float(self.false_positive_reads),
        }
