"""Configuration objects for BufferHash and CLAMs.

Two concerns live here:

* :class:`MemoryCostModel` — the (small, constant) simulated cost of the
  DRAM-side work each operation performs: probing the cuckoo buffer,
  updating or querying Bloom filters, maintaining the delete list.  These
  costs are what make in-memory hits fast (≈ 0.005-0.02 ms, matching §7.2.1)
  and what the bit-slicing optimisation of §5.1.3 reduces.
* :class:`CLAMConfig` — the structural parameters of a CLAM: how the key
  space is partitioned into super tables, how large each buffer is, how many
  incarnations each super table keeps, and how much memory Bloom filters get.
  :meth:`CLAMConfig.paper_scale` mirrors the paper's 4 GB DRAM / 32 GB flash
  configuration; :meth:`CLAMConfig.scaled` produces laptop-sized equivalents
  with the same ratios for tests and benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryCostModel:
    """Simulated latency (ms) of DRAM-resident work per hash operation."""

    #: One cuckoo-buffer probe or insert.
    buffer_op_ms: float = 0.004
    #: Updating the buffer's Bloom filter on insert.
    bloom_update_ms: float = 0.0005
    #: Probing one incarnation's Bloom filter (naive, per-incarnation organisation).
    bloom_probe_per_incarnation_ms: float = 0.0004
    #: One bit-sliced query across all incarnations of a super table.
    bloom_sliced_query_ms: float = 0.002
    #: Checking the in-memory delete list.
    delete_list_probe_ms: float = 0.0002
    #: Deserialising and scanning one flash page image after it has been read.
    page_scan_ms: float = 0.002

    def bloom_query_cost(self, num_incarnations: int, bit_sliced: bool) -> float:
        """Cost of deciding which incarnations may hold a key."""
        if num_incarnations <= 0:
            return 0.0
        if bit_sliced:
            return self.bloom_sliced_query_ms
        return self.bloom_probe_per_incarnation_ms * num_incarnations


@dataclass(frozen=True)
class CLAMConfig:
    """Structural parameters of a CLAM built from BufferHash.

    Attributes
    ----------
    num_super_tables:
        Number of key-space partitions (``2^k1`` in the paper).
    buffer_capacity_items:
        Items a buffer accepts before it is flushed to flash.
    buffer_utilization:
        Fraction of cuckoo slots the buffer is allowed to fill (the paper
        limits this to 0.5 to keep cuckoo insertion cheap); slot count is
        ``buffer_capacity_items / buffer_utilization``.
    entry_size_bytes:
        Average space one hash entry takes (paper: 16 bytes).
    incarnations_per_table:
        ``k`` — incarnations retained per super table; ``None`` derives the
        largest value the target device can hold.
    page_size_bytes:
        Size of one incarnation page (defaults to the device page/sector size).
    bloom_bits_per_entry:
        DRAM bits spent per entry in each incarnation's Bloom filter.
    use_buffering / use_bloom_filters / use_bit_slicing:
        Ablation switches for §7.3.1.
    use_hash_once:
        When True (default) keys are canonicalised into a memoising
        :class:`~repro.core.hashing.KeyDigest` once at the public API
        boundary, so each layer's seeded hash of the key bytes is computed
        at most once per operation.  Disabling it reproduces the original
        per-layer re-hashing; derived values are bit-identical either way
        (this is a measurement ablation for ``benchmarks/bench_hotpath.py``,
        not a behaviour switch).
    telemetry_enabled:
        When True the CLAM owns a :class:`~repro.telemetry.MetricsRegistry`
        recording per-operation latency histograms and operation counters
        (and a sharded :class:`~repro.service.cluster.ClusterService` gains
        cluster-level request metrics).  Off by default: the hot path then
        pays only a cached ``is None`` check per operation, ratcheted to
        within 5% of the untelemetered throughput by
        ``benchmarks/bench_hotpath.py``.
    eviction_policy_name:
        One of ``fifo``, ``lru``, ``update``, ``priority``.
    checkpoint_interval_flushes:
        Durable CLAMs only (:class:`~repro.core.recovery.DurableCLAM`): write
        a recovery checkpoint after this many buffer flushes, so reopening
        replays just the log suffix instead of cold-rebuilding every
        incarnation.  ``None`` (the default) checkpoints only on clean close;
        ignored entirely by in-memory CLAMs.
    """

    num_super_tables: int = 16
    buffer_capacity_items: int = 256
    buffer_utilization: float = 0.5
    entry_size_bytes: int = 16
    incarnations_per_table: Optional[int] = 16
    page_size_bytes: Optional[int] = None
    bloom_bits_per_entry: float = 16.0
    use_buffering: bool = True
    use_bloom_filters: bool = True
    use_bit_slicing: bool = True
    use_hash_once: bool = True
    telemetry_enabled: bool = False
    eviction_policy_name: str = "fifo"
    checkpoint_interval_flushes: Optional[int] = None
    memory_cost: MemoryCostModel = field(default_factory=MemoryCostModel)

    def __post_init__(self) -> None:
        if self.num_super_tables <= 0:
            raise ConfigurationError("num_super_tables must be positive")
        if self.buffer_capacity_items <= 0:
            raise ConfigurationError("buffer_capacity_items must be positive")
        if not 0.0 < self.buffer_utilization <= 1.0:
            raise ConfigurationError("buffer_utilization must be in (0, 1]")
        if self.entry_size_bytes <= 0:
            raise ConfigurationError("entry_size_bytes must be positive")
        if self.incarnations_per_table is not None and self.incarnations_per_table <= 0:
            raise ConfigurationError("incarnations_per_table must be positive")
        if self.bloom_bits_per_entry <= 0:
            raise ConfigurationError("bloom_bits_per_entry must be positive")
        if self.eviction_policy_name not in {"fifo", "lru", "update", "priority"}:
            raise ConfigurationError(
                f"unknown eviction policy {self.eviction_policy_name!r}"
            )
        if self.checkpoint_interval_flushes is not None and self.checkpoint_interval_flushes <= 0:
            raise ConfigurationError("checkpoint_interval_flushes must be positive")

    # -- Derived quantities ------------------------------------------------------

    @property
    def buffer_slots(self) -> int:
        """Cuckoo slots per buffer."""
        return max(2, int(math.ceil(self.buffer_capacity_items / self.buffer_utilization)))

    @property
    def buffer_bytes(self) -> int:
        """Approximate DRAM footprint of one buffer."""
        return self.buffer_slots * self.entry_size_bytes

    @property
    def total_buffer_bytes(self) -> int:
        """DRAM spent on all buffers."""
        return self.buffer_bytes * self.num_super_tables

    def pages_per_incarnation(self, page_size: int) -> int:
        """Device pages one incarnation occupies."""
        if page_size <= 0:
            raise ConfigurationError("page_size must be positive")
        return max(1, math.ceil(self.buffer_bytes / page_size))

    def total_items_capacity(self, incarnations_per_table: int) -> int:
        """Approximate total items held across buffers and incarnations."""
        per_table = self.buffer_capacity_items * (incarnations_per_table + 1)
        return per_table * self.num_super_tables

    def bloom_bits_per_incarnation(self) -> int:
        """Bits in each incarnation's Bloom filter."""
        return max(8, int(self.buffer_capacity_items * self.bloom_bits_per_entry))

    def with_overrides(self, **kwargs) -> "CLAMConfig":
        """A copy of this configuration with selected fields replaced."""
        return replace(self, **kwargs)

    # -- Canned configurations -----------------------------------------------------

    @classmethod
    def paper_scale(cls) -> "CLAMConfig":
        """The paper's 4 GB DRAM / 32 GB flash configuration (§7.1.1).

        2 GB of buffers split into 16,384 super tables of 128 KB each,
        4,096 entries per buffer at 50 % utilisation, 16 incarnations per
        super table.  Too large to run as-is in pure Python; exposed for the
        analytical model and for documentation.
        """
        return cls(
            num_super_tables=16_384,
            buffer_capacity_items=4_096,
            buffer_utilization=0.5,
            entry_size_bytes=16,
            incarnations_per_table=16,
            bloom_bits_per_entry=16.0,
        )

    @classmethod
    def scaled(
        cls,
        num_super_tables: int = 16,
        buffer_capacity_items: int = 256,
        incarnations_per_table: int = 8,
        **overrides,
    ) -> "CLAMConfig":
        """A laptop-scale configuration preserving the paper's ratios."""
        return cls(
            num_super_tables=num_super_tables,
            buffer_capacity_items=buffer_capacity_items,
            incarnations_per_table=incarnations_per_table,
            **overrides,
        )
