"""Synthetic object traces with controlled redundancy.

The paper evaluates its WAN optimizer on packet traces collected at the
University of Wisconsin (grouped into objects by connection 4-tuple) plus
synthetic traces with varying redundancy fractions, and reports results for
traces with ~50 % and ~15 % redundant bytes.  Those packet traces are not
available, so this module generates the synthetic equivalent: a stream of
objects, each described by its content-defined chunks, where a configurable
fraction of chunk bytes repeats content seen earlier in the trace.

Objects are represented as chunk descriptors (fingerprint + size) rather
than raw payloads — the same simplification the paper itself makes by
pre-computing chunks and SHA-1 hashes before the experiment (§8).
:func:`build_payload_objects` builds small real-payload objects for tests
that exercise the actual Rabin chunker end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.wanopt.chunking import RabinChunker
from repro.wanopt.fingerprint import Chunk, chunk_from_bytes, fingerprint_bytes


@dataclass(frozen=True)
class TraceObject:
    """One object (file / connection payload) in a trace."""

    object_id: int
    chunks: Sequence[Chunk]

    @property
    def size_bytes(self) -> int:
        """Total object size."""
        return sum(chunk.size for chunk in self.chunks)

    @property
    def num_chunks(self) -> int:
        """Number of chunks in the object."""
        return len(self.chunks)


@dataclass
class SyntheticTraceGenerator:
    """Generates object streams with a target redundant-byte fraction.

    Parameters
    ----------
    redundancy:
        Target fraction of bytes that duplicate previously seen chunks
        (0.5 and 0.15 reproduce the paper's two traces).
    num_objects:
        Objects to generate.
    mean_object_size:
        Mean object size in bytes; sizes are drawn log-uniformly between a
        quarter of and four times the mean (matching the 100 KB - 10 MB
        spread of Figure 10).
    mean_chunk_size:
        Mean chunk size (the paper uses 4-8 KB chunks).
    locality_window:
        Redundant chunks are drawn from this many most recent distinct
        chunks, modelling the temporal locality of real traffic and keeping
        matches within the fingerprint index's retention.
    seed:
        RNG seed for reproducibility.
    """

    redundancy: float = 0.5
    num_objects: int = 100
    mean_object_size: int = 512 * 1024
    mean_chunk_size: int = 8 * 1024
    locality_window: int = 20_000
    seed: int = 7
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.redundancy < 1.0:
            raise ValueError("redundancy must be in [0, 1)")
        if self.num_objects <= 0:
            raise ValueError("num_objects must be positive")
        if self.mean_object_size <= 0 or self.mean_chunk_size <= 0:
            raise ValueError("sizes must be positive")
        if self.locality_window <= 0:
            raise ValueError("locality_window must be positive")
        self._rng = random.Random(self.seed)

    def _object_size(self) -> int:
        low = self.mean_object_size // 4
        high = self.mean_object_size * 4
        # Log-uniform between low and high.
        import math

        log_low, log_high = math.log(low), math.log(high)
        return int(math.exp(self._rng.uniform(log_low, log_high)))

    def _chunk_size(self) -> int:
        low = max(256, self.mean_chunk_size // 2)
        high = self.mean_chunk_size * 2
        return self._rng.randint(low, high)

    def generate(self) -> List[TraceObject]:
        """Produce the full object trace."""
        objects: List[TraceObject] = []
        seen_chunks: List[Chunk] = []
        next_chunk_id = 0
        for object_id in range(self.num_objects):
            target_size = self._object_size()
            chunks: List[Chunk] = []
            accumulated = 0
            while accumulated < target_size:
                reuse = seen_chunks and self._rng.random() < self.redundancy
                if reuse:
                    window_start = max(0, len(seen_chunks) - self.locality_window)
                    chunk = seen_chunks[self._rng.randrange(window_start, len(seen_chunks))]
                else:
                    size = self._chunk_size()
                    fingerprint = fingerprint_bytes(
                        b"trace-%d-chunk-%d" % (self.seed, next_chunk_id)
                    )
                    next_chunk_id += 1
                    chunk = Chunk(fingerprint=fingerprint, size=size)
                    seen_chunks.append(chunk)
                chunks.append(chunk)
                accumulated += chunk.size
            objects.append(TraceObject(object_id=object_id, chunks=tuple(chunks)))
        return objects

    def measured_redundancy(self, objects: Optional[List[TraceObject]] = None) -> float:
        """Fraction of bytes in the trace that repeat an earlier chunk."""
        if objects is None:
            objects = self.generate()
        seen: set[bytes] = set()
        redundant = 0
        total = 0
        for obj in objects:
            for chunk in obj.chunks:
                total += chunk.size
                if chunk.fingerprint in seen:
                    redundant += chunk.size
                else:
                    seen.add(chunk.fingerprint)
        return redundant / total if total else 0.0


@dataclass
class BranchTraceGenerator:
    """Per-branch object streams with shared cross-branch content.

    Models N branch offices of one organisation: every branch's traffic
    mixes (a) content drawn from a **shared corporate pool** — the same
    documents, packages and images flowing through every site, which is what
    makes a shared data-center fingerprint index win over per-branch ones —
    with (b) content repeating that branch's own recent history and (c)
    fresh, branch-unique content.

    Two modes share one redundancy model:

    * **descriptor mode** (default) emits synthetic ``(fingerprint, size)``
      chunk descriptors without materialising bytes — the paper's §8
      pre-computed-chunks simplification, cheap at any scale;
    * **real-payload mode** (``real_payloads=True``) materialises the same
      draw sequence as actual bytes: each draw becomes a byte block (shared
      pool blocks are bit-identical across branches), blocks are joined into
      the object payload, and the payload is cut by the optimized
      :class:`~repro.wanopt.chunking.RabinChunker` and SHA-1-fingerprinted
      for real — the full content pipeline, end to end.  Chunk-level dedup
      then *emerges* from repeated byte ranges rather than being asserted by
      construction, so measured hit rates sit slightly below descriptor
      mode's (chunks straddling a block edge mix repeated and fresh bytes).

    Parameters
    ----------
    num_branches / objects_per_branch:
        Stream shape; object ids are globally unique across branches
        (branch ``b``'s objects start at ``b * objects_per_branch``).
    shared_fraction:
        Probability a block/chunk is drawn from the shared pool
        (cross-branch redundancy); 0 makes every branch's content disjoint.
    local_redundancy:
        Probability a block/chunk repeats one this branch has already seen
        (intra-branch redundancy, as in :class:`SyntheticTraceGenerator`).
    shared_pool_size:
        Distinct blocks in the shared pool; smaller pools mean more
        cross-branch matches.
    seed:
        Master seed; each branch derives an independent substream, and the
        same (seed, pool id) always yields the same shared block, so two
        branches drawing pool block 17 really do carry identical content.
    real_payloads:
        Generate actual bytes and run the real chunk-and-fingerprint
        pipeline (see above).
    average_chunk_size:
        Rabin average chunk size for real-payload mode; defaults to
        ``mean_chunk_size // 8`` so several content-defined chunks land
        inside each redundancy block, keeping the chunk-hit-rate dilution
        from chunks straddling block edges to roughly 10 %.  Raising it
        towards ``mean_chunk_size`` trades dedup parity for fewer chunks
        (fewer index operations).
    """

    num_branches: int = 4
    objects_per_branch: int = 25
    mean_object_size: int = 256 * 1024
    mean_chunk_size: int = 8 * 1024
    shared_fraction: float = 0.3
    local_redundancy: float = 0.2
    shared_pool_size: int = 2_000
    seed: int = 7
    real_payloads: bool = False
    average_chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_branches <= 0 or self.objects_per_branch <= 0:
            raise ValueError("num_branches and objects_per_branch must be positive")
        if self.mean_object_size <= 0 or self.mean_chunk_size <= 0:
            raise ValueError("sizes must be positive")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError("shared_fraction must be in [0, 1]")
        if not 0.0 <= self.local_redundancy <= 1.0:
            raise ValueError("local_redundancy must be in [0, 1]")
        if self.shared_fraction + self.local_redundancy > 1.0:
            raise ValueError("shared_fraction + local_redundancy must be at most 1")
        if self.shared_pool_size <= 0:
            raise ValueError("shared_pool_size must be positive")
        if self.average_chunk_size is not None and self.average_chunk_size < 64:
            raise ValueError("average_chunk_size must be at least 64")
        # Shared-pool payload blocks, materialised lazily (real mode only)
        # and shared across branches so pool block i is bit-identical fleet-wide.
        self._pool_payloads: dict = {}

    def _pool_chunk(self, pool_id: int) -> Chunk:
        """The shared pool's chunk ``pool_id`` — identical for every branch."""
        fingerprint = fingerprint_bytes(
            b"wanopt-shared-%d-%d" % (self.seed, pool_id)
        )
        # Size must be a pure function of the fingerprint so every branch
        # sees the same (fingerprint, size) pair for one piece of content.
        low = max(256, self.mean_chunk_size // 2)
        span = max(1, self.mean_chunk_size * 2 - low)
        size = low + int.from_bytes(fingerprint[:4], "big") % span
        return Chunk(fingerprint=fingerprint, size=size)

    def _pool_payload(self, pool_id: int) -> bytes:
        """The shared pool's *bytes* for ``pool_id`` — identical for every branch.

        Sized exactly like the descriptor-mode pool chunk, derived from a
        seed-and-id keyed RNG so the same (seed, pool id) always yields the
        same content, and cached so a pool block is generated at most once.
        """
        payload = self._pool_payloads.get(pool_id)
        if payload is None:
            size = self._pool_chunk(pool_id).size
            payload = random.Random(b"wanopt-shared-%d-%d" % (self.seed, pool_id)).randbytes(size)
            self._pool_payloads[pool_id] = payload
        return payload

    def generate(self) -> List[List[TraceObject]]:
        """One object stream per branch, ``generate()[b]`` for branch ``b``."""
        if self.real_payloads:
            return self._generate_real()
        streams: List[List[TraceObject]] = []
        for branch in range(self.num_branches):
            rng = random.Random(self.seed * 1_000_003 + branch)
            local_chunks: List[Chunk] = []
            next_local_id = 0
            objects: List[TraceObject] = []
            for index in range(self.objects_per_branch):
                target = int(
                    self.mean_object_size
                    * (0.5 + rng.random())  # spread sizes around the mean
                )
                chunks: List[Chunk] = []
                accumulated = 0
                while accumulated < target:
                    draw = rng.random()
                    if draw < self.shared_fraction:
                        chunk = self._pool_chunk(rng.randrange(self.shared_pool_size))
                    elif draw < self.shared_fraction + self.local_redundancy and local_chunks:
                        chunk = local_chunks[rng.randrange(len(local_chunks))]
                    else:
                        low = max(256, self.mean_chunk_size // 2)
                        size = rng.randint(low, self.mean_chunk_size * 2)
                        fingerprint = fingerprint_bytes(
                            b"wanopt-branch-%d-%d-%d" % (self.seed, branch, next_local_id)
                        )
                        next_local_id += 1
                        chunk = Chunk(fingerprint=fingerprint, size=size)
                    local_chunks.append(chunk)
                    chunks.append(chunk)
                    accumulated += chunk.size
                objects.append(
                    TraceObject(
                        object_id=branch * self.objects_per_branch + index,
                        chunks=tuple(chunks),
                    )
                )
            streams.append(objects)
        return streams

    def _generate_real(self) -> List[List[TraceObject]]:
        """Real-payload mode: the same draw model, materialised as bytes.

        Every draw that descriptor mode turns into a synthetic chunk becomes
        a byte block here (shared pool / branch-local repeat / fresh random
        bytes); the blocks are joined into one payload per object — the only
        full copy the pipeline makes — and the payload is cut by the
        optimized Rabin chunker into zero-copy ``memoryview`` chunks with
        real SHA-1 fingerprints.
        """
        chunker = RabinChunker(
            average_size=(
                self.average_chunk_size
                if self.average_chunk_size is not None
                else max(64, self.mean_chunk_size // 8)
            )
        )
        streams: List[List[TraceObject]] = []
        for branch in range(self.num_branches):
            rng = random.Random(self.seed * 1_000_003 + branch)
            local_blocks: List[bytes] = []
            objects: List[TraceObject] = []
            for index in range(self.objects_per_branch):
                target = int(self.mean_object_size * (0.5 + rng.random()))
                blocks: List[bytes] = []
                accumulated = 0
                while accumulated < target:
                    draw = rng.random()
                    if draw < self.shared_fraction:
                        block = self._pool_payload(rng.randrange(self.shared_pool_size))
                    elif draw < self.shared_fraction + self.local_redundancy and local_blocks:
                        block = local_blocks[rng.randrange(len(local_blocks))]
                    else:
                        low = max(256, self.mean_chunk_size // 2)
                        block = rng.randbytes(rng.randint(low, self.mean_chunk_size * 2))
                    local_blocks.append(block)
                    blocks.append(block)
                    accumulated += len(block)
                payload = b"".join(blocks)
                chunks = tuple(
                    Chunk(fingerprint=fingerprint_bytes(piece), size=len(piece), payload=piece)
                    for piece in chunker.split(payload)
                )
                objects.append(
                    TraceObject(
                        object_id=branch * self.objects_per_branch + index,
                        chunks=tuple(chunks),
                    )
                )
            streams.append(objects)
        return streams


def build_payload_objects(
    num_objects: int = 4,
    object_size: int = 64 * 1024,
    redundancy: float = 0.5,
    average_chunk_size: int = 4096,
    seed: int = 11,
) -> List[TraceObject]:
    """Small objects with *real payloads*, chunked by the Rabin chunker.

    Redundancy is produced by repeating byte ranges from earlier objects;
    used by integration tests and the quickstart example, where running the
    per-byte rolling hash is affordable.
    """
    if not 0.0 <= redundancy < 1.0:
        raise ValueError("redundancy must be in [0, 1)")
    rng = random.Random(seed)
    chunker = RabinChunker(average_size=average_chunk_size)
    previous_payloads: List[bytes] = []
    objects: List[TraceObject] = []
    for object_id in range(num_objects):
        parts: List[bytes] = []
        size = 0
        while size < object_size:
            if previous_payloads and rng.random() < redundancy:
                source = previous_payloads[rng.randrange(len(previous_payloads))]
                start = rng.randrange(max(1, len(source) - average_chunk_size))
                piece = source[start : start + average_chunk_size * 2]
            else:
                piece = rng.randbytes(average_chunk_size * 2)
            parts.append(piece)
            size += len(piece)
        payload = b"".join(parts)[:object_size]
        previous_payloads.append(payload)
        chunks = tuple(chunk_from_bytes(piece) for piece in chunker.split(payload))
        objects.append(TraceObject(object_id=object_id, chunks=chunks))
    return objects
