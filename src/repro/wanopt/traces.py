"""Synthetic object traces with controlled redundancy.

The paper evaluates its WAN optimizer on packet traces collected at the
University of Wisconsin (grouped into objects by connection 4-tuple) plus
synthetic traces with varying redundancy fractions, and reports results for
traces with ~50 % and ~15 % redundant bytes.  Those packet traces are not
available, so this module generates the synthetic equivalent: a stream of
objects, each described by its content-defined chunks, where a configurable
fraction of chunk bytes repeats content seen earlier in the trace.

Objects are represented as chunk descriptors (fingerprint + size) rather
than raw payloads — the same simplification the paper itself makes by
pre-computing chunks and SHA-1 hashes before the experiment (§8).
:func:`build_payload_objects` builds small real-payload objects for tests
that exercise the actual Rabin chunker end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.wanopt.chunking import RabinChunker
from repro.wanopt.fingerprint import Chunk, chunk_from_bytes, fingerprint_bytes


@dataclass(frozen=True)
class TraceObject:
    """One object (file / connection payload) in a trace."""

    object_id: int
    chunks: Sequence[Chunk]

    @property
    def size_bytes(self) -> int:
        """Total object size."""
        return sum(chunk.size for chunk in self.chunks)

    @property
    def num_chunks(self) -> int:
        """Number of chunks in the object."""
        return len(self.chunks)


@dataclass
class SyntheticTraceGenerator:
    """Generates object streams with a target redundant-byte fraction.

    Parameters
    ----------
    redundancy:
        Target fraction of bytes that duplicate previously seen chunks
        (0.5 and 0.15 reproduce the paper's two traces).
    num_objects:
        Objects to generate.
    mean_object_size:
        Mean object size in bytes; sizes are drawn log-uniformly between a
        quarter of and four times the mean (matching the 100 KB - 10 MB
        spread of Figure 10).
    mean_chunk_size:
        Mean chunk size (the paper uses 4-8 KB chunks).
    locality_window:
        Redundant chunks are drawn from this many most recent distinct
        chunks, modelling the temporal locality of real traffic and keeping
        matches within the fingerprint index's retention.
    seed:
        RNG seed for reproducibility.
    """

    redundancy: float = 0.5
    num_objects: int = 100
    mean_object_size: int = 512 * 1024
    mean_chunk_size: int = 8 * 1024
    locality_window: int = 20_000
    seed: int = 7
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.redundancy < 1.0:
            raise ValueError("redundancy must be in [0, 1)")
        if self.num_objects <= 0:
            raise ValueError("num_objects must be positive")
        if self.mean_object_size <= 0 or self.mean_chunk_size <= 0:
            raise ValueError("sizes must be positive")
        if self.locality_window <= 0:
            raise ValueError("locality_window must be positive")
        self._rng = random.Random(self.seed)

    def _object_size(self) -> int:
        low = self.mean_object_size // 4
        high = self.mean_object_size * 4
        # Log-uniform between low and high.
        import math

        log_low, log_high = math.log(low), math.log(high)
        return int(math.exp(self._rng.uniform(log_low, log_high)))

    def _chunk_size(self) -> int:
        low = max(256, self.mean_chunk_size // 2)
        high = self.mean_chunk_size * 2
        return self._rng.randint(low, high)

    def generate(self) -> List[TraceObject]:
        """Produce the full object trace."""
        objects: List[TraceObject] = []
        seen_chunks: List[Chunk] = []
        next_chunk_id = 0
        for object_id in range(self.num_objects):
            target_size = self._object_size()
            chunks: List[Chunk] = []
            accumulated = 0
            while accumulated < target_size:
                reuse = seen_chunks and self._rng.random() < self.redundancy
                if reuse:
                    window_start = max(0, len(seen_chunks) - self.locality_window)
                    chunk = seen_chunks[self._rng.randrange(window_start, len(seen_chunks))]
                else:
                    size = self._chunk_size()
                    fingerprint = fingerprint_bytes(
                        b"trace-%d-chunk-%d" % (self.seed, next_chunk_id)
                    )
                    next_chunk_id += 1
                    chunk = Chunk(fingerprint=fingerprint, size=size)
                    seen_chunks.append(chunk)
                chunks.append(chunk)
                accumulated += chunk.size
            objects.append(TraceObject(object_id=object_id, chunks=tuple(chunks)))
        return objects

    def measured_redundancy(self, objects: Optional[List[TraceObject]] = None) -> float:
        """Fraction of bytes in the trace that repeat an earlier chunk."""
        if objects is None:
            objects = self.generate()
        seen: set[bytes] = set()
        redundant = 0
        total = 0
        for obj in objects:
            for chunk in obj.chunks:
                total += chunk.size
                if chunk.fingerprint in seen:
                    redundant += chunk.size
                else:
                    seen.add(chunk.fingerprint)
        return redundant / total if total else 0.0


def build_payload_objects(
    num_objects: int = 4,
    object_size: int = 64 * 1024,
    redundancy: float = 0.5,
    average_chunk_size: int = 4096,
    seed: int = 11,
) -> List[TraceObject]:
    """Small objects with *real payloads*, chunked by the Rabin chunker.

    Redundancy is produced by repeating byte ranges from earlier objects;
    used by integration tests and the quickstart example, where running the
    per-byte rolling hash is affordable.
    """
    if not 0.0 <= redundancy < 1.0:
        raise ValueError("redundancy must be in [0, 1)")
    rng = random.Random(seed)
    chunker = RabinChunker(average_size=average_chunk_size)
    previous_payloads: List[bytes] = []
    objects: List[TraceObject] = []
    for object_id in range(num_objects):
        parts: List[bytes] = []
        size = 0
        while size < object_size:
            if previous_payloads and rng.random() < redundancy:
                source = previous_payloads[rng.randrange(len(previous_payloads))]
                start = rng.randrange(max(1, len(source) - average_chunk_size))
                piece = source[start : start + average_chunk_size * 2]
            else:
                piece = rng.randbytes(average_chunk_size * 2)
            parts.append(piece)
            size += len(piece)
        payload = b"".join(parts)[:object_size]
        previous_payloads.append(payload)
        chunks = tuple(chunk_from_bytes(piece) for piece in chunker.split(payload))
        objects.append(TraceObject(object_id=object_id, chunks=chunks))
    return objects
