"""End-to-end WAN optimizer and the paper's two evaluation scenarios (§8).

Scenario 1 — *throughput test*: all objects are available immediately; the
metric is the **effective bandwidth improvement factor**, the ratio of the
time needed to transmit the raw objects at link speed to the time needed to
fingerprint, deduplicate and transmit the compressed objects (Figure 9).

Scenario 2 — *acceleration under high load*: objects arrive at exactly link
rate (the link is 100 % utilised without compression); the metric is the
**per-object throughput improvement factor**, the ratio of each object's
achieved throughput with and without the optimizer (Figure 10).

Beyond the paper, :class:`MultiBranchThroughputTest` runs Scenario 1 over a
:class:`~repro.wanopt.topology.MultiBranchTopology`: N branch offices share
one replicated data-center fingerprint index, a failure schedule can crash
and recover shards mid-run, and the report carries per-branch and aggregate
bandwidth-improvement factors plus cross-branch dedup hit rates and the far
side's reconstruction verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.flashsim.clock import SimulationClock
from repro.service.recovery import RecoveryReport
from repro.service.simulator import FailureEvent
from repro.wanopt.engine import CompressionEngine
from repro.wanopt.network import Link
from repro.wanopt.topology import BranchOffice, MultiBranchTopology
from repro.wanopt.traces import TraceObject


@dataclass(frozen=True)
class ThroughputTestResult:
    """Outcome of the Scenario-1 throughput test."""

    link_mbps: float
    total_original_bytes: int
    total_compressed_bytes: int
    time_without_optimizer_ms: float
    time_with_optimizer_ms: float
    processing_time_ms: float
    transmit_time_ms: float

    @property
    def effective_bandwidth_improvement(self) -> float:
        """time(raw at link speed) / time(optimized) — Figure 9's y-axis."""
        if self.time_with_optimizer_ms <= 0:
            return float("inf")
        return self.time_without_optimizer_ms / self.time_with_optimizer_ms

    @property
    def ideal_improvement(self) -> float:
        """The compression ratio, i.e. the best possible improvement."""
        if self.total_compressed_bytes <= 0:
            return float("inf")
        return self.total_original_bytes / self.total_compressed_bytes


@dataclass(frozen=True)
class ObjectTimeline:
    """Per-object record for the Scenario-2 high-load test."""

    object_id: int
    size_bytes: int
    arrival_ms: float
    completion_ms: float
    baseline_duration_ms: float

    @property
    def duration_ms(self) -> float:
        """Arrival-to-last-byte latency with the optimizer."""
        return self.completion_ms - self.arrival_ms

    @property
    def throughput_improvement(self) -> float:
        """throughput(with optimizer) / throughput(without) — Figure 10's y-axis."""
        if self.duration_ms <= 0:
            return float("inf")
        return self.baseline_duration_ms / self.duration_ms


@dataclass
class HighLoadResult:
    """Outcome of the Scenario-2 acceleration test."""

    link_mbps: float
    objects: List[ObjectTimeline] = field(default_factory=list)

    @property
    def mean_throughput_improvement(self) -> float:
        """Average per-object improvement factor."""
        if not self.objects:
            return 0.0
        return sum(obj.throughput_improvement for obj in self.objects) / len(self.objects)

    def improvements_by_size(self) -> List[tuple]:
        """(object size, improvement factor) pairs, as plotted in Figure 10."""
        return [(obj.size_bytes, obj.throughput_improvement) for obj in self.objects]

    def fraction_worse_than(self, factor: float) -> float:
        """Fraction of objects whose throughput *dropped* below ``factor``×."""
        if not self.objects:
            return 0.0
        worse = sum(1 for obj in self.objects if obj.throughput_improvement < factor)
        return worse / len(self.objects)


class WANOptimizer:
    """Connection manager + compression engine + network subsystem."""

    def __init__(
        self,
        engine: CompressionEngine,
        link: Link,
        clock: SimulationClock,
    ) -> None:
        self.engine = engine
        self.link = link
        self.clock = clock
        if link.clock is not clock:
            raise ValueError("link and optimizer must share the simulation clock")

    # -- Scenario 1: throughput test -----------------------------------------------------

    def run_throughput_test(self, objects: Sequence[TraceObject]) -> ThroughputTestResult:
        """All objects arrive at once; measure total transfer time with/without.

        Like real WAN optimizers (and the paper's testbed), the compression
        engine and the link work as a pipeline: object ``i+1`` is fingerprinted
        and deduplicated while object ``i`` is still being transmitted.  The
        simulation clock is driven by the compression engine (its index and
        cache I/O); the link is modelled as a second resource whose busy time
        overlaps engine time, so the total transfer time is the larger of the
        two plus any residual.
        """
        start_ms = self.clock.now_ms
        processing_ms = 0.0
        transmit_ms = 0.0
        total_original = 0
        total_compressed = 0
        link_free_at_ms = start_ms
        for obj in objects:
            before = self.clock.now_ms
            result = self.engine.process_object(obj)
            processing_ms += self.clock.now_ms - before
            # The compressed object starts transmitting as soon as both it is
            # ready (now) and the link has drained the previous object.
            serialization = self.link.serialization_delay_ms(result.compressed_bytes)
            transmit_start = max(self.clock.now_ms, link_free_at_ms)
            link_free_at_ms = transmit_start + serialization
            transmit_ms += serialization
            self.link.bytes_sent += result.compressed_bytes
            self.link.busy_ms += serialization
            total_original += result.original_bytes
            total_compressed += result.compressed_bytes
        finish_ms = max(self.clock.now_ms, link_free_at_ms)
        time_with = finish_ms - start_ms
        time_without = self.link.serialization_delay_ms(total_original)
        return ThroughputTestResult(
            link_mbps=self.link.bandwidth_mbps,
            total_original_bytes=total_original,
            total_compressed_bytes=total_compressed,
            time_without_optimizer_ms=time_without,
            time_with_optimizer_ms=time_with,
            processing_time_ms=processing_ms,
            transmit_time_ms=transmit_ms,
        )

    # -- Scenario 2: acceleration under high load ------------------------------------------

    def run_high_load_test(self, objects: Sequence[TraceObject]) -> HighLoadResult:
        """Objects arrive at link rate; measure per-object completion latency."""
        result = HighLoadResult(link_mbps=self.link.bandwidth_mbps)
        experiment_start = self.clock.now_ms
        arrival_ms = experiment_start
        for obj in objects:
            baseline_duration = self.link.serialization_delay_ms(obj.size_bytes)
            # The optimizer can only start once the object has arrived and the
            # previous object has been fully handled (single pipeline).
            if self.clock.now_ms < arrival_ms:
                self.clock.advance(arrival_ms - self.clock.now_ms)
            compression = self.engine.process_object(obj)
            self.link.transmit(compression.compressed_bytes)
            result.objects.append(
                ObjectTimeline(
                    object_id=obj.object_id,
                    size_bytes=obj.size_bytes,
                    arrival_ms=arrival_ms,
                    completion_ms=self.clock.now_ms,
                    baseline_duration_ms=baseline_duration,
                )
            )
            # Next object arrives when the raw link would have finished this one.
            arrival_ms += baseline_duration
        return result


# -- Scenario 1 at scale: multi-branch deployments ------------------------------------------


@dataclass(frozen=True)
class BranchThroughputResult:
    """One branch office's Scenario-1 outcome inside a multi-branch run."""

    branch_id: str
    link_mbps: float
    objects: int
    pass_through_objects: int
    total_original_bytes: int
    total_compressed_bytes: int
    time_without_optimizer_ms: float
    time_with_optimizer_ms: float
    processing_time_ms: float
    transmit_time_ms: float
    chunks_total: int
    chunks_matched: int
    cross_branch_matched: int

    @property
    def effective_bandwidth_improvement(self) -> float:
        """time(raw at link speed) / time(optimized) — Figure 9's metric."""
        if self.time_with_optimizer_ms <= 0:
            return float("inf")
        return self.time_without_optimizer_ms / self.time_with_optimizer_ms

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of this branch's chunks replaced by references."""
        return self.chunks_matched / self.chunks_total if self.chunks_total else 0.0

    @property
    def cross_branch_hit_rate(self) -> float:
        """Fraction of chunks matched against *another* branch's uploads."""
        return self.cross_branch_matched / self.chunks_total if self.chunks_total else 0.0


@dataclass
class MultiBranchThroughputResult:
    """Aggregate outcome of a multi-branch Scenario-1 run."""

    branches: List[BranchThroughputResult] = field(default_factory=list)
    objects_total: int = 0
    objects_compressed: int = 0
    objects_pass_through: int = 0
    chunks_total: int = 0
    chunks_matched: int = 0
    cross_branch_matched: int = 0
    objects_reconstructed_exactly: int = 0
    chunks_lost: int = 0
    #: Schedule events that fired, as (object_no, action, shard).
    fired_events: List[Tuple[int, str, Optional[str]]] = field(default_factory=list)
    #: Reports from scheduled ``recover`` events, in firing order.
    recovery_reports: List[RecoveryReport] = field(default_factory=list)

    @property
    def aggregate_bandwidth_improvement(self) -> float:
        """Total raw transmission time over total optimized time, all branches.

        Branch links run in parallel, so this is a work ratio: how much
        link-time the fleet of branches saved overall.  With one branch it
        reduces to that branch's effective bandwidth improvement factor.
        """
        time_without = sum(b.time_without_optimizer_ms for b in self.branches)
        time_with = sum(b.time_with_optimizer_ms for b in self.branches)
        if time_with <= 0:
            return float("inf")
        return time_without / time_with

    @property
    def availability(self) -> float:
        """Objects compressed over objects issued (pass-through = degraded)."""
        if self.objects_total == 0:
            return 1.0
        return self.objects_compressed / self.objects_total

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of all chunks (fleet-wide) replaced by references."""
        return self.chunks_matched / self.chunks_total if self.chunks_total else 0.0

    @property
    def cross_branch_hit_rate(self) -> float:
        """Fraction of all chunks matched against another branch's uploads."""
        return self.cross_branch_matched / self.chunks_total if self.chunks_total else 0.0

    @property
    def reconstruction_exact(self) -> bool:
        """Whether every object reassembled byte-exactly on the far side."""
        return self.objects_reconstructed_exactly == self.objects_total


class MultiBranchThroughputTest:
    """Scenario 1 over a multi-branch topology with a failure schedule.

    Branches are interleaved round-robin object by object (the deterministic
    analogue of concurrent uploads), each branch running the same
    engine-and-link pipeline as :meth:`WANOptimizer.run_throughput_test` on
    its own clock, with every fingerprint lookup/insert flowing to the
    shared data-center index as one batched round trip per object.
    ``schedule`` events fire just before the Nth object (globally) is
    dispatched, exactly like the traffic simulator's request counter.
    """

    def __init__(self, topology: MultiBranchTopology) -> None:
        self.topology = topology

    def run(
        self,
        branch_objects: Sequence[Sequence[TraceObject]],
        schedule: Sequence[FailureEvent] = (),
    ) -> MultiBranchThroughputResult:
        """Process per-branch object streams and report the fleet outcome."""
        topology = self.topology
        if len(branch_objects) != len(topology.branches):
            raise ValueError(
                f"{len(branch_objects)} object streams for "
                f"{len(topology.branches)} branches"
            )
        pending = sorted(schedule, key=lambda event: event.at_request)
        next_event = 0
        dispatched = 0
        result = MultiBranchThroughputResult()

        accumulators = [
            _BranchAccumulator(branch, objects)
            for branch, objects in zip(topology.branches, branch_objects)
        ]
        rounds = max((len(objects) for objects in branch_objects), default=0)
        for position in range(rounds):
            for accumulator in accumulators:
                if position >= len(accumulator.objects):
                    continue
                while next_event < len(pending) and pending[next_event].at_request <= dispatched:
                    event = pending[next_event]
                    report = topology.fire_event(event)
                    result.fired_events.append((dispatched, event.action, event.shard_id))
                    if report is not None:
                        result.recovery_reports.append(report)
                    next_event += 1
                accumulator.process(topology, accumulator.objects[position])
                dispatched += 1

        for accumulator in accumulators:
            result.branches.append(accumulator.finish())
        result.objects_total = topology.objects_total
        result.objects_compressed = topology.objects_compressed
        result.objects_pass_through = topology.objects_pass_through
        result.chunks_total = sum(b.chunks_total for b in result.branches)
        result.chunks_matched = sum(b.chunks_matched for b in result.branches)
        result.cross_branch_matched = sum(b.cross_branch_matched for b in result.branches)
        result.objects_reconstructed_exactly = topology.receiver.objects_exact
        result.chunks_lost = topology.receiver.chunks_lost
        return result


class _BranchAccumulator:
    """Per-branch pipeline state while a multi-branch run is in flight."""

    def __init__(self, branch: BranchOffice, objects: Sequence[TraceObject]) -> None:
        self.branch = branch
        self.objects = objects
        self.start_ms = branch.clock.now_ms
        self.processing_ms = 0.0
        self.transmit_ms = 0.0
        self.total_original = 0
        self.total_compressed = 0
        self.chunks_total = 0
        self.chunks_matched = 0
        self.cross_branch_matched = 0
        self.pass_through = 0
        branch.link_free_at_ms = self.start_ms

    def process(self, topology: MultiBranchTopology, obj: TraceObject) -> None:
        branch = self.branch
        before = branch.clock.now_ms
        outcome = topology.process_branch_object(branch, obj)
        self.processing_ms += branch.clock.now_ms - before
        self.total_original += obj.size_bytes
        self.total_compressed += outcome.wire_bytes
        self.chunks_total += obj.num_chunks
        self.cross_branch_matched += outcome.cross_branch_matched
        if outcome.pass_through:
            self.pass_through += 1
        else:
            self.chunks_matched += outcome.result.chunks_matched
        # The (compressed or raw) object starts transmitting once it is ready
        # and the branch link has drained the previous one — same pipeline as
        # the single-box throughput test.
        serialization = branch.link.serialization_delay_ms(outcome.wire_bytes)
        transmit_start = max(branch.clock.now_ms, branch.link_free_at_ms)
        branch.link_free_at_ms = transmit_start + serialization
        self.transmit_ms += serialization
        branch.link.bytes_sent += outcome.wire_bytes
        branch.link.busy_ms += serialization

    def finish(self) -> BranchThroughputResult:
        branch = self.branch
        finish_ms = max(branch.clock.now_ms, branch.link_free_at_ms)
        return BranchThroughputResult(
            branch_id=branch.branch_id,
            link_mbps=branch.link.bandwidth_mbps,
            objects=len(self.objects),
            pass_through_objects=self.pass_through,
            total_original_bytes=self.total_original,
            total_compressed_bytes=self.total_compressed,
            time_without_optimizer_ms=branch.link.serialization_delay_ms(self.total_original),
            time_with_optimizer_ms=finish_ms - self.start_ms,
            processing_time_ms=self.processing_ms,
            transmit_time_ms=self.transmit_ms,
            chunks_total=self.chunks_total,
            chunks_matched=self.chunks_matched,
            cross_branch_matched=self.cross_branch_matched,
        )
