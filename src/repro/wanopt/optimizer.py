"""End-to-end WAN optimizer and the paper's two evaluation scenarios (§8).

Scenario 1 — *throughput test*: all objects are available immediately; the
metric is the **effective bandwidth improvement factor**, the ratio of the
time needed to transmit the raw objects at link speed to the time needed to
fingerprint, deduplicate and transmit the compressed objects (Figure 9).

Scenario 2 — *acceleration under high load*: objects arrive at exactly link
rate (the link is 100 % utilised without compression); the metric is the
**per-object throughput improvement factor**, the ratio of each object's
achieved throughput with and without the optimizer (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.flashsim.clock import SimulationClock
from repro.wanopt.engine import CompressionEngine
from repro.wanopt.network import Link
from repro.wanopt.traces import TraceObject


@dataclass(frozen=True)
class ThroughputTestResult:
    """Outcome of the Scenario-1 throughput test."""

    link_mbps: float
    total_original_bytes: int
    total_compressed_bytes: int
    time_without_optimizer_ms: float
    time_with_optimizer_ms: float
    processing_time_ms: float
    transmit_time_ms: float

    @property
    def effective_bandwidth_improvement(self) -> float:
        """time(raw at link speed) / time(optimized) — Figure 9's y-axis."""
        if self.time_with_optimizer_ms <= 0:
            return float("inf")
        return self.time_without_optimizer_ms / self.time_with_optimizer_ms

    @property
    def ideal_improvement(self) -> float:
        """The compression ratio, i.e. the best possible improvement."""
        if self.total_compressed_bytes <= 0:
            return float("inf")
        return self.total_original_bytes / self.total_compressed_bytes


@dataclass(frozen=True)
class ObjectTimeline:
    """Per-object record for the Scenario-2 high-load test."""

    object_id: int
    size_bytes: int
    arrival_ms: float
    completion_ms: float
    baseline_duration_ms: float

    @property
    def duration_ms(self) -> float:
        """Arrival-to-last-byte latency with the optimizer."""
        return self.completion_ms - self.arrival_ms

    @property
    def throughput_improvement(self) -> float:
        """throughput(with optimizer) / throughput(without) — Figure 10's y-axis."""
        if self.duration_ms <= 0:
            return float("inf")
        return self.baseline_duration_ms / self.duration_ms


@dataclass
class HighLoadResult:
    """Outcome of the Scenario-2 acceleration test."""

    link_mbps: float
    objects: List[ObjectTimeline] = field(default_factory=list)

    @property
    def mean_throughput_improvement(self) -> float:
        """Average per-object improvement factor."""
        if not self.objects:
            return 0.0
        return sum(obj.throughput_improvement for obj in self.objects) / len(self.objects)

    def improvements_by_size(self) -> List[tuple]:
        """(object size, improvement factor) pairs, as plotted in Figure 10."""
        return [(obj.size_bytes, obj.throughput_improvement) for obj in self.objects]

    def fraction_worse_than(self, factor: float) -> float:
        """Fraction of objects whose throughput *dropped* below ``factor``×."""
        if not self.objects:
            return 0.0
        worse = sum(1 for obj in self.objects if obj.throughput_improvement < factor)
        return worse / len(self.objects)


class WANOptimizer:
    """Connection manager + compression engine + network subsystem."""

    def __init__(
        self,
        engine: CompressionEngine,
        link: Link,
        clock: SimulationClock,
    ) -> None:
        self.engine = engine
        self.link = link
        self.clock = clock
        if link.clock is not clock:
            raise ValueError("link and optimizer must share the simulation clock")

    # -- Scenario 1: throughput test -----------------------------------------------------

    def run_throughput_test(self, objects: Sequence[TraceObject]) -> ThroughputTestResult:
        """All objects arrive at once; measure total transfer time with/without.

        Like real WAN optimizers (and the paper's testbed), the compression
        engine and the link work as a pipeline: object ``i+1`` is fingerprinted
        and deduplicated while object ``i`` is still being transmitted.  The
        simulation clock is driven by the compression engine (its index and
        cache I/O); the link is modelled as a second resource whose busy time
        overlaps engine time, so the total transfer time is the larger of the
        two plus any residual.
        """
        start_ms = self.clock.now_ms
        processing_ms = 0.0
        transmit_ms = 0.0
        total_original = 0
        total_compressed = 0
        link_free_at_ms = start_ms
        for obj in objects:
            before = self.clock.now_ms
            result = self.engine.process_object(obj)
            processing_ms += self.clock.now_ms - before
            # The compressed object starts transmitting as soon as both it is
            # ready (now) and the link has drained the previous object.
            serialization = self.link.serialization_delay_ms(result.compressed_bytes)
            transmit_start = max(self.clock.now_ms, link_free_at_ms)
            link_free_at_ms = transmit_start + serialization
            transmit_ms += serialization
            self.link.bytes_sent += result.compressed_bytes
            self.link.busy_ms += serialization
            total_original += result.original_bytes
            total_compressed += result.compressed_bytes
        finish_ms = max(self.clock.now_ms, link_free_at_ms)
        time_with = finish_ms - start_ms
        time_without = self.link.serialization_delay_ms(total_original)
        return ThroughputTestResult(
            link_mbps=self.link.bandwidth_mbps,
            total_original_bytes=total_original,
            total_compressed_bytes=total_compressed,
            time_without_optimizer_ms=time_without,
            time_with_optimizer_ms=time_with,
            processing_time_ms=processing_ms,
            transmit_time_ms=transmit_ms,
        )

    # -- Scenario 2: acceleration under high load ------------------------------------------

    def run_high_load_test(self, objects: Sequence[TraceObject]) -> HighLoadResult:
        """Objects arrive at link rate; measure per-object completion latency."""
        result = HighLoadResult(link_mbps=self.link.bandwidth_mbps)
        experiment_start = self.clock.now_ms
        arrival_ms = experiment_start
        for obj in objects:
            baseline_duration = self.link.serialization_delay_ms(obj.size_bytes)
            # The optimizer can only start once the object has arrived and the
            # previous object has been fully handled (single pipeline).
            if self.clock.now_ms < arrival_ms:
                self.clock.advance(arrival_ms - self.clock.now_ms)
            compression = self.engine.process_object(obj)
            self.link.transmit(compression.compressed_bytes)
            result.objects.append(
                ObjectTimeline(
                    object_id=obj.object_id,
                    size_bytes=obj.size_bytes,
                    arrival_ms=arrival_ms,
                    completion_ms=self.clock.now_ms,
                    baseline_duration_ms=baseline_duration,
                )
            )
            # Next object arrives when the raw link would have finished this one.
            arrival_ms += baseline_duration
        return result
