"""WAN optimizer built on a CLAM fingerprint index (§8 of the paper).

A WAN optimizer suppresses redundant bytes from network transfers:

* the **connection manager** accumulates incoming bytes into objects and cuts
  them into content-defined chunks (Rabin-Karp fingerprinting);
* the **compression engine** looks each chunk's SHA-1 fingerprint up in a
  large hash table (the CLAM, or a Berkeley-DB-style baseline), replaces
  chunks seen before with small references, stores new chunks in an on-disk
  content cache and inserts their fingerprints into the index;
* the **network subsystem** transmits the compressed object over the WAN
  link.

The package also contains the synthetic trace generator used in place of the
paper's university packet traces (see DESIGN.md, substitutions table).
"""

from repro.wanopt.chunking import RabinChunker, ChunkBoundary
from repro.wanopt.connection import ConnectionManager
from repro.wanopt.fingerprint import Chunk, fingerprint_bytes, chunk_from_bytes
from repro.wanopt.cache import ContentCache
from repro.wanopt.network import Link, TransmissionResult
from repro.wanopt.engine import (
    CompressionEngine,
    FingerprintIndex,
    ObjectCompressionResult,
)
from repro.wanopt.topology import (
    BranchObjectOutcome,
    BranchOffice,
    DedupReceiver,
    MultiBranchTopology,
)
from repro.wanopt.optimizer import (
    WANOptimizer,
    ThroughputTestResult,
    HighLoadResult,
    ObjectTimeline,
    BranchThroughputResult,
    MultiBranchThroughputResult,
    MultiBranchThroughputTest,
)
from repro.wanopt.traces import (
    TraceObject,
    SyntheticTraceGenerator,
    BranchTraceGenerator,
    build_payload_objects,
)

__all__ = [
    "RabinChunker",
    "ChunkBoundary",
    "ConnectionManager",
    "Chunk",
    "fingerprint_bytes",
    "chunk_from_bytes",
    "ContentCache",
    "Link",
    "TransmissionResult",
    "CompressionEngine",
    "FingerprintIndex",
    "ObjectCompressionResult",
    "WANOptimizer",
    "ThroughputTestResult",
    "HighLoadResult",
    "ObjectTimeline",
    "BranchOffice",
    "BranchObjectOutcome",
    "DedupReceiver",
    "MultiBranchTopology",
    "BranchThroughputResult",
    "MultiBranchThroughputResult",
    "MultiBranchThroughputTest",
    "TraceObject",
    "SyntheticTraceGenerator",
    "BranchTraceGenerator",
    "build_payload_objects",
]
