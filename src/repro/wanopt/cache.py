"""On-disk content cache of the WAN optimizer's compression engine.

The compression engine keeps the actual chunk payloads in a large content
cache on a magnetic disk (§8, "The CE maintains a large content cache on a
magnetic disk"); the fingerprint index (CLAM or BDB) maps fingerprints to
the cache addresses of those chunks.  Chunks are appended sequentially — the
cheapest write pattern for a disk — and read back randomly when an object is
reconstructed on the far side.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.flashsim.device import StorageDevice
from repro.wanopt.fingerprint import BytesLike


class ContentCache:
    """Append-only chunk store on a simulated disk (or any storage device)."""

    def __init__(self, device: StorageDevice) -> None:
        self.device = device
        self._next_page = 0
        # fingerprint -> (start page, length in bytes)
        self._directory: Dict[bytes, Tuple[int, int]] = {}
        self.bytes_stored = 0
        self.chunks_stored = 0

    @property
    def capacity_bytes(self) -> int:
        """Raw capacity of the backing device."""
        return self.device.geometry.capacity_bytes

    def _pages_for(self, nbytes: int) -> int:
        page_size = self.device.geometry.page_size
        return max(1, -(-nbytes // page_size))

    def store(
        self, fingerprint: bytes, size: int, payload: Optional[BytesLike] = None
    ) -> Tuple[int, float]:
        """Append a chunk; returns ``(address, latency_ms)``.

        The cache wraps around when full (oldest content is overwritten),
        mirroring the FIFO behaviour of commercial WAN optimizer stores.
        ``payload`` may be any bytes-like buffer; page images are cut as
        zero-copy ``memoryview`` slices (no intermediate per-page ``bytes``
        here — the simulated device still copies each page image into its
        own page store, as a real device would).
        """
        pages_needed = self._pages_for(size)
        total_pages = self.device.geometry.total_pages
        if pages_needed > total_pages:
            raise ValueError("chunk larger than the entire content cache")
        if self._next_page + pages_needed > total_pages:
            self._next_page = 0
        address = self._next_page
        page_size = self.device.geometry.page_size
        images = []
        if payload is None:
            images = [b""] * pages_needed
        else:
            view = payload if isinstance(payload, memoryview) else memoryview(payload)
            for page_offset in range(pages_needed):
                images.append(view[page_offset * page_size : (page_offset + 1) * page_size])
        latency = self.device.write_range(address, images)
        self._next_page += pages_needed
        self._directory[fingerprint] = (address, size)
        self.bytes_stored += size
        self.chunks_stored += 1
        return address, latency

    def contains(self, fingerprint: bytes) -> bool:
        """Whether the cache currently holds a chunk with this fingerprint."""
        return fingerprint in self._directory

    def read(self, fingerprint: bytes) -> Tuple[Optional[bytes], float]:
        """Read a chunk back; returns ``(payload or None, latency_ms)``."""
        entry = self._directory.get(fingerprint)
        if entry is None:
            return None, 0.0
        address, size = entry
        pages, latency = self.device.read_range(address, self._pages_for(size))
        payload = b"".join(pages)[:size]
        return payload, latency

    def address_of(self, fingerprint: bytes) -> Optional[int]:
        """Cache address of a chunk (what the fingerprint index stores)."""
        entry = self._directory.get(fingerprint)
        return entry[0] if entry is not None else None
