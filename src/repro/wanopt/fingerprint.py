"""Chunk fingerprints (SHA-1) and the chunk descriptor used across the WAN optimizer.

The compression engine never needs the chunk payload once its fingerprint is
known — the index maps fingerprints to content-cache addresses, and the trace
generator can therefore describe multi-terabyte workloads as streams of
(fingerprint, size) descriptors without materialising the bytes, exactly as
the paper's evaluation pre-computes chunks and SHA-1 hashes (§8).

The real-byte pipeline is zero-copy end to end: :func:`fingerprint_bytes`
and :class:`Chunk` accept any bytes-like buffer (``bytes``, ``bytearray``,
``memoryview``), so the ``memoryview`` slices yielded by
:meth:`~repro.wanopt.chunking.RabinChunker.split` flow through fingerprinting,
the content cache and far-side reassembly without per-chunk copies.
``Chunk.payload`` still exposes owned ``bytes`` at the public edge (the
materialisation happens at most once and is cached); internal consumers read
``Chunk.raw`` instead.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

#: Anything the buffer-protocol consumers of this module accept.
BytesLike = Union[bytes, bytearray, memoryview]


def fingerprint_bytes(payload: BytesLike, length: int = 20) -> bytes:
    """SHA-1 fingerprint of a chunk payload, truncated to ``length`` bytes.

    ``payload`` may be any bytes-like buffer; a ``memoryview`` slice is
    hashed in place without materialising intermediate ``bytes``.
    """
    if length <= 0 or length > 20:
        raise ValueError("length must be in 1..20")
    return hashlib.sha1(payload).digest()[:length]


class Chunk:
    """A content chunk as seen by the compression engine.

    Attributes
    ----------
    fingerprint:
        SHA-1 (or synthetic) fingerprint identifying the chunk's content.
    size:
        Chunk length in bytes.
    payload:
        The raw bytes as ``bytes``, when available (real-payload paths);
        ``None`` for descriptor-only traces.  When the chunk was built from
        a ``memoryview`` slice, the ``bytes`` object is materialised lazily
        on first access and cached.
    raw:
        The payload as whatever buffer the chunk was built from (``bytes``,
        ``bytearray`` or ``memoryview``) — the zero-copy accessor used by
        the engine, content cache and dedup receiver.
    """

    __slots__ = ("_fingerprint", "_size", "_raw")

    def __init__(
        self,
        fingerprint: bytes,
        size: int,
        payload: Optional[BytesLike] = None,
    ) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        if not fingerprint:
            raise ValueError("fingerprint must be non-empty")
        if payload is not None and len(payload) != size:
            raise ValueError("payload length must match size")
        self._fingerprint = fingerprint
        self._size = size
        self._raw = payload

    # fingerprint and size are read-only: chunks are hashable value objects
    # (dict/set keys across the dedup pipeline) and the payload-length
    # invariant is only checked at construction.
    @property
    def fingerprint(self) -> bytes:
        return self._fingerprint

    @property
    def size(self) -> int:
        return self._size

    @property
    def raw(self) -> Optional[BytesLike]:
        """The payload buffer exactly as provided (no copy)."""
        return self._raw

    @property
    def payload(self) -> Optional[bytes]:
        """The payload as owned ``bytes`` (materialised once, then cached)."""
        raw = self._raw
        if raw is None or type(raw) is bytes:
            return raw
        materialised = bytes(raw)
        self._raw = materialised
        return materialised

    def __repr__(self) -> str:
        return (
            f"Chunk(fingerprint={self.fingerprint!r}, size={self.size}, "
            f"payload={'<bytes>' if self._raw is not None else None})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Chunk):
            return NotImplemented
        return (
            self.fingerprint == other.fingerprint
            and self.size == other.size
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.fingerprint, self.size, self.payload))


def chunk_from_bytes(payload: BytesLike) -> Chunk:
    """Build a :class:`Chunk` (fingerprint + size + payload) from raw bytes.

    Accepts any bytes-like buffer; a ``memoryview`` slice is fingerprinted
    and stored without copying.
    """
    return Chunk(fingerprint=fingerprint_bytes(payload), size=len(payload), payload=payload)
