"""Chunk fingerprints (SHA-1) and the chunk descriptor used across the WAN optimizer.

The compression engine never needs the chunk payload once its fingerprint is
known — the index maps fingerprints to content-cache addresses, and the trace
generator can therefore describe multi-terabyte workloads as streams of
(fingerprint, size) descriptors without materialising the bytes, exactly as
the paper's evaluation pre-computes chunks and SHA-1 hashes (§8).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


def fingerprint_bytes(payload: bytes, length: int = 20) -> bytes:
    """SHA-1 fingerprint of a chunk payload, truncated to ``length`` bytes."""
    if length <= 0 or length > 20:
        raise ValueError("length must be in 1..20")
    return hashlib.sha1(payload).digest()[:length]


@dataclass(frozen=True)
class Chunk:
    """A content chunk as seen by the compression engine.

    Attributes
    ----------
    fingerprint:
        SHA-1 (or synthetic) fingerprint identifying the chunk's content.
    size:
        Chunk length in bytes.
    payload:
        The raw bytes, when available (real-payload paths); ``None`` for
        descriptor-only traces.
    """

    fingerprint: bytes
    size: int
    payload: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be non-negative")
        if not self.fingerprint:
            raise ValueError("fingerprint must be non-empty")
        if self.payload is not None and len(self.payload) != self.size:
            raise ValueError("payload length must match size")


def chunk_from_bytes(payload: bytes) -> Chunk:
    """Build a :class:`Chunk` (fingerprint + size + payload) from raw bytes."""
    return Chunk(fingerprint=fingerprint_bytes(payload), size=len(payload), payload=payload)
