"""Connection-management (CM) front end of the WAN optimizer (§8, component 1).

The CM receives the raw byte stream of each TCP connection, accumulates the
bytes of a connection for a short window (the paper uses 25 ms), and hands
the accumulated object to the compression engine after cutting it into
content-defined chunks and computing their SHA-1 fingerprints.

This module implements that front end for the real-payload path: callers
feed `(connection id, bytes)` segments plus the current simulated time, and
completed :class:`~repro.wanopt.traces.TraceObject` instances pop out when a
connection's buffer window expires (or the connection is explicitly flushed).
The large-scale benchmarks bypass the CM with pre-computed chunk descriptors,
exactly as the paper's evaluation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.flashsim.clock import SimulationClock
from repro.wanopt.chunking import RabinChunker
from repro.wanopt.fingerprint import chunk_from_bytes
from repro.wanopt.traces import TraceObject


@dataclass
class _ConnectionBuffer:
    """Bytes accumulated for one connection, waiting for its window to expire."""

    connection_id: Hashable
    opened_at_ms: float
    segments: List[bytes] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(len(segment) for segment in self.segments)

    def payload(self) -> bytes:
        return b"".join(self.segments)


class ConnectionManager:
    """Accumulates per-connection bytes into objects and chunks them.

    Parameters
    ----------
    clock:
        Shared simulation clock (used to time the accumulation window).
    window_ms:
        How long a connection's bytes are buffered before being emitted as an
        object (the paper uses 25 ms).
    chunker:
        Content-defined chunker; defaults to a 4 KB-average Rabin chunker.
    max_object_bytes:
        Objects are emitted early if a connection accumulates this much data,
        so a long-lived bulk transfer does not buffer unboundedly.
    chunking_cost_ms_per_kb:
        Simulated CPU cost of fingerprinting, charged per KB of object data
        when the object is emitted.
    object_id_start:
        First object id this manager assigns.  A multi-branch deployment
        runs one connection manager per branch office; giving each branch a
        disjoint id range (e.g. ``branch_index * 1_000_000``) keeps object
        ids globally unique across the fleet's aggregated reports.
    """

    def __init__(
        self,
        clock: SimulationClock,
        window_ms: float = 25.0,
        chunker: Optional[RabinChunker] = None,
        max_object_bytes: int = 1 << 20,
        chunking_cost_ms_per_kb: float = 0.01,
        object_id_start: int = 0,
    ) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if max_object_bytes <= 0:
            raise ValueError("max_object_bytes must be positive")
        if object_id_start < 0:
            raise ValueError("object_id_start must be non-negative")
        self.clock = clock
        self.window_ms = window_ms
        self.chunker = chunker if chunker is not None else RabinChunker(average_size=4096)
        self.max_object_bytes = max_object_bytes
        self.chunking_cost_ms_per_kb = chunking_cost_ms_per_kb
        self._buffers: Dict[Hashable, _ConnectionBuffer] = {}
        self._next_object_id = object_id_start
        self.objects_emitted = 0
        self.bytes_received = 0

    # -- Ingest -------------------------------------------------------------------

    def receive(self, connection_id: Hashable, data: bytes) -> List[TraceObject]:
        """Accept a segment of bytes for a connection.

        Returns any objects that completed as a result (because this
        connection hit the size cap, or because other connections' windows
        expired at the current simulated time).
        """
        self.bytes_received += len(data)
        buffer = self._buffers.get(connection_id)
        if buffer is None:
            buffer = _ConnectionBuffer(connection_id=connection_id, opened_at_ms=self.clock.now_ms)
            self._buffers[connection_id] = buffer
        buffer.segments.append(bytes(data))

        completed: List[TraceObject] = []
        if buffer.size_bytes >= self.max_object_bytes:
            completed.append(self._emit(connection_id))
        completed.extend(self.poll())
        return completed

    def poll(self) -> List[TraceObject]:
        """Emit every connection whose accumulation window has expired."""
        now = self.clock.now_ms
        expired = [
            connection_id
            for connection_id, buffer in self._buffers.items()
            if now - buffer.opened_at_ms >= self.window_ms
        ]
        return [self._emit(connection_id) for connection_id in expired]

    def flush(self, connection_id: Optional[Hashable] = None) -> List[TraceObject]:
        """Force-emit one connection (or all of them) regardless of the window."""
        if connection_id is not None:
            if connection_id not in self._buffers:
                return []
            return [self._emit(connection_id)]
        return [self._emit(cid) for cid in list(self._buffers)]

    # -- Internals ----------------------------------------------------------------

    def _emit(self, connection_id: Hashable) -> TraceObject:
        buffer = self._buffers.pop(connection_id)
        payload = buffer.payload()
        if payload and self.chunking_cost_ms_per_kb:
            self.clock.advance(self.chunking_cost_ms_per_kb * len(payload) / 1024.0)
        chunks = tuple(chunk_from_bytes(piece) for piece in self.chunker.split(payload))
        obj = TraceObject(object_id=self._next_object_id, chunks=chunks)
        self._next_object_id += 1
        self.objects_emitted += 1
        return obj

    # -- Introspection --------------------------------------------------------------

    @property
    def open_connections(self) -> int:
        """Connections currently buffering data."""
        return len(self._buffers)

    def pending_bytes(self, connection_id: Hashable) -> int:
        """Bytes currently buffered for one connection (0 if unknown)."""
        buffer = self._buffers.get(connection_id)
        return buffer.size_bytes if buffer is not None else 0
