"""Content-defined chunking with a Rabin-Karp rolling hash.

WAN optimizers and deduplication systems cut byte streams into chunks at
positions determined by the *content* (not fixed offsets), so that inserting
a byte near the start of a file only perturbs one chunk boundary instead of
shifting every subsequent chunk.  The classic scheme (LBFS, cited by the
paper as [34]) slides a fixed-width window over the data, maintains a
Rabin-Karp rolling hash of the window and declares a boundary whenever the
hash matches a target pattern modulo the average chunk size.

The paper's evaluation pre-computes chunk boundaries and SHA-1 hashes (§8)
because content-defined chunking is the CPU bottleneck of a WAN optimizer.
This module makes the real-byte path affordable instead of dodging it; three
implementations produce **bit-identical boundaries** (same polynomial, same
residue rule, frozen by ``tests/test_chunking_golden.py``):

* :meth:`RabinChunker.reference_boundaries` — the original per-byte pure
  Python loop, kept verbatim as the frozen reference for golden and
  property tests and as the "before" side of ``benchmarks/bench_chunking.py``;
* the **table-driven scalar path** — a 256-entry outgoing-byte removal
  table, all attribute lookups hoisted into locals, flat ``(start, end)``
  tuples internally, and **min-size skip-ahead**: after each declared
  boundary the scan jumps straight to ``start + min_size - WINDOW``, since
  no earlier position can produce a boundary (the window resets at a cut, so
  the hash at the first eligible position only depends on the preceding
  ``WINDOW`` bytes).  At the default ``min = average/4`` this eliminates
  roughly a quarter of all byte visits;
* the **vectorised path** (used automatically when numpy is importable and
  ``min_size >= WINDOW``) — inside a chunk, once the window is full, the
  rolling hash at position ``p`` is simply the hash of ``data[p-W:p]``,
  independent of where the chunk started.  So candidate cut points can be
  computed for the whole buffer at once from modular prefix sums
  (``H[p] = B^(p-1) · (S[p] - S[p-W]) mod P`` where
  ``S[p] = Σ data[j]·B^(-j)``), and boundary selection is a cheap walk over
  the sorted candidate positions.  When ``min_size < WINDOW`` a boundary
  may be declared while the window is still filling (the hash then depends
  on the chunk start), so those configurations fall back to the scalar path.

:meth:`RabinChunker.split` yields zero-copy ``memoryview`` slices; callers
that need owned bytes (the public ``Chunk.payload`` edge) materialise them
exactly once per object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

try:  # Optional acceleration: the scalar path is always available.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

#: Whether the vectorised path can run at all — the exact condition the
#: chunker's auto-selection uses; tests and benchmarks gate on this instead
#: of re-probing the import themselves.
HAVE_NUMPY = _np is not None

_WINDOW_SIZE = 48
_PRIME = 1_000_000_007
_BASE = 257

_LEADING_FACTOR = pow(_BASE, _WINDOW_SIZE - 1, _PRIME)

#: ``_REMOVAL_TABLE[b] == (b * BASE^(WINDOW-1)) % PRIME`` — subtracting this
#: from the rolling hash evicts outgoing byte ``b`` with one table lookup
#: instead of a multiply-mod per byte.
_REMOVAL_TABLE = tuple((b * _LEADING_FACTOR) % _PRIME for b in range(256))

#: Modular inverse of the base: ``(BASE * _BASE_INVERSE) % PRIME == 1``.
_BASE_INVERSE = pow(_BASE, _PRIME - 2, _PRIME)

#: Block length for the vectorised prefix sum: raw (un-reduced) cumulative
#: sums of per-byte terms (< 2^38 each) stay below 2^61 per block, so the
#: int64 arithmetic never overflows.
_CUMSUM_BLOCK = 1 << 22

# base -> int64 array q with q[i] = base^i mod PRIME, grown by doubling and
# shared across chunker instances (the powers depend only on the constants).
_POW_CACHE: dict = {}


def _power_table(base: int, length: int):
    """``[base^0, base^1, ...] mod PRIME`` as int64, at least ``length`` long."""
    table = _POW_CACHE.get(base)
    if table is None or len(table) < length:
        size = 1024
        while size < length:
            size *= 2
        table = _np.empty(size, dtype=_np.int64)
        table[0] = 1
        filled = 1
        while filled < size:
            step = min(filled, size - filled)
            multiplier = (int(table[filled - 1]) * base) % _PRIME
            _np.multiply(table[:step], multiplier, out=table[filled : filled + step])
            table[filled : filled + step] %= _PRIME
            filled += step
        _POW_CACHE[base] = table
    return table


@dataclass(frozen=True)
class ChunkBoundary:
    """A [start, end) byte range of one chunk within an object."""

    start: int
    end: int

    @property
    def length(self) -> int:
        """Chunk length in bytes."""
        return self.end - self.start


class RabinChunker:
    """Content-defined chunker with minimum / average / maximum chunk sizes.

    Parameters
    ----------
    average_size:
        Target mean chunk size; a boundary is declared when the rolling hash
        is congruent to a fixed residue modulo ``average_size``.
    min_size / max_size:
        Hard bounds on chunk length; defaults are ``average_size / 4`` and
        ``average_size * 4`` (the paper uses 4-8 KB average chunks).
    vectorized:
        ``None`` (default) picks the numpy candidate-scan path when numpy is
        importable and ``min_size >= WINDOW``; ``False`` forces the
        table-driven scalar path; ``True`` demands the vectorised path and
        raises when it cannot run (numpy missing, or ``min_size`` below the
        rolling window — there the hash at an eligible position depends on
        the chunk start, which the whole-buffer scan cannot express).  All
        paths produce bit-identical boundaries.
    """

    #: Rolling-hash window width in bytes (the LBFS scheme's 48).
    WINDOW_SIZE = _WINDOW_SIZE

    def __init__(
        self,
        average_size: int = 4096,
        min_size: int | None = None,
        max_size: int | None = None,
        vectorized: bool | None = None,
    ) -> None:
        if average_size < 64:
            raise ValueError("average_size must be at least 64 bytes")
        self.average_size = average_size
        self.min_size = min_size if min_size is not None else max(1, average_size // 4)
        self.max_size = max_size if max_size is not None else average_size * 4
        if self.min_size <= 0 or self.min_size > self.max_size:
            raise ValueError("require 0 < min_size <= max_size")
        if vectorized and _np is None:
            raise ValueError("vectorized=True requires numpy, which is not importable")
        if vectorized and self.min_size < _WINDOW_SIZE:
            raise ValueError(
                "vectorized=True requires min_size >= WINDOW_SIZE "
                f"({_WINDOW_SIZE}); use vectorized=None for automatic fallback"
            )
        self._boundary_residue = average_size - 1
        self._leading_factor = _LEADING_FACTOR
        self._vectorized = (
            vectorized
            if vectorized is not None
            else (_np is not None and self.min_size >= _WINDOW_SIZE)
        )
        # Reusable int64 scratch for the vectorised path (grown on demand):
        # avoids re-faulting fresh pages on every call.
        self._scratch_terms = None
        self._scratch_prefix = None

    @property
    def skip_per_chunk(self) -> int:
        """Bytes the scan skips (never hashes) at the head of each chunk."""
        return max(0, self.min_size - _WINDOW_SIZE)

    # -- Public API -------------------------------------------------------------------

    def boundaries(self, data) -> List[ChunkBoundary]:
        """Chunk boundaries covering ``data`` completely and in order.

        ``data`` may be ``bytes``, ``bytearray`` or a ``memoryview``.
        """
        return [ChunkBoundary(start, end) for start, end in self._flat_boundaries(data)]

    def split(self, data) -> Iterator[memoryview]:
        """Yield the chunk payloads of ``data`` as zero-copy memoryview slices."""
        view = memoryview(data)
        for start, end in self._flat_boundaries(data):
            yield view[start:end]

    # -- Boundary computation ---------------------------------------------------------

    def _flat_boundaries(self, data) -> List[Tuple[int, int]]:
        """Flat ``(start, end)`` tuples; the internal form of :meth:`boundaries`."""
        if len(data) == 0:
            return []
        if self._vectorized:  # construction guarantees min_size >= WINDOW here
            return self._boundaries_vectorized(data)
        return self._boundaries_scalar(data)

    def _boundaries_scalar(self, data) -> List[Tuple[int, int]]:
        """Table-driven per-byte scan with min-size skip-ahead.

        Bit-identical to :meth:`reference_boundaries`: same polynomial, same
        residue rule, same forced cut at ``max_size``.  The window resets at
        every cut, so the hash at the first eligible check position
        (``start + min_size``) depends only on the ``WINDOW`` bytes before
        it — positions before ``start + min_size - WINDOW`` need not be
        visited at all.
        """
        length = len(data)
        boundaries: List[Tuple[int, int]] = []
        append = boundaries.append
        # Hoist everything the inner loops touch into locals.
        window, prime, base, table = _WINDOW_SIZE, _PRIME, _BASE, _REMOVAL_TABLE
        min_size, max_size, average = self.min_size, self.max_size, self.average_size
        residue = self._boundary_residue
        power_of_two = average & (average - 1) == 0
        mask = average - 1
        skip = min_size - window if min_size > window else 0
        start = 0
        while start < length:
            first_check = start + min_size
            if first_check > length:
                append((start, length))
                break
            rolling = 0
            pos = start + skip
            # Warm-up: hash up to the first position where a boundary could be
            # declared (no checks can fire before chunk_length == min_size).
            # The span is min(min_size, WINDOW) bytes, so the window never
            # fills *before* the last warm-up byte — no eviction needed here.
            for byte in data[pos:first_check]:
                rolling = (rolling * base + byte) % prime
            pos = first_check
            window_fill = min(min_size, window)
            limit = start + max_size
            if limit > length:
                limit = length
            if (rolling & mask == residue) if power_of_two else (rolling % average == residue):
                cut = pos
            elif window_fill == window:
                # Hot loop: full window, one table lookup + one mod per byte,
                # iterating incoming/outgoing byte pairs without indexing.
                incoming = data[pos:limit]
                outgoing = data[pos - window : limit - window]
                if power_of_two:
                    for inc, out in zip(incoming, outgoing):
                        rolling = ((rolling - table[out]) * base + inc) % prime
                        pos += 1
                        if rolling & mask == residue:
                            break
                else:
                    for inc, out in zip(incoming, outgoing):
                        rolling = ((rolling - table[out]) * base + inc) % prime
                        pos += 1
                        if rolling % average == residue:
                            break
                cut = pos
            else:
                # min_size < WINDOW: checks begin while the window still fills.
                while pos < limit:
                    byte = data[pos]
                    if window_fill < window:
                        rolling = (rolling * base + byte) % prime
                        window_fill += 1
                    else:
                        rolling = ((rolling - table[data[pos - window]]) * base + byte) % prime
                    pos += 1
                    if rolling % average == residue:
                        break
                cut = pos
            append((start, cut))
            start = cut
        return boundaries

    def _boundaries_vectorized(self, data) -> List[Tuple[int, int]]:
        """Whole-buffer candidate scan via modular prefix sums (numpy).

        With ``min_size >= WINDOW`` every eligible check position has a full
        window, and a full window's hash is position-local: the hash at
        ``p`` is ``hash(data[p-W:p])`` regardless of the chunk start.  Using
        ``S[p] = Σ_{j<p} data[j]·B^(-j) mod P``, that hash is
        ``B^(p-1) · (S[p] - S[p-W]) mod P``, so every candidate cut in the
        buffer is found with a handful of array passes; the boundary rule
        (first candidate at or past ``start + min_size``, forced cut at
        ``start + max_size``) is then a cheap walk over sorted candidates.
        """
        n = len(data)
        x = _np.frombuffer(data, dtype=_np.uint8)
        inverse_powers = _power_table(_BASE_INVERSE, n)
        powers = _power_table(_BASE, n)
        if self._scratch_terms is None or len(self._scratch_terms) < n:
            self._scratch_terms = _np.empty(max(n, 1024), dtype=_np.int64)
            self._scratch_prefix = _np.empty(max(n, 1024) + 1, dtype=_np.int64)
        terms = self._scratch_terms[:n]
        _np.multiply(inverse_powers[:n], x, out=terms)  # < 2^38 per element
        prefix = self._scratch_prefix[: n + 1]
        prefix[0] = 0
        if n <= _CUMSUM_BLOCK:
            _np.cumsum(terms, out=prefix[1:])
        else:
            carry = 0
            for offset in range(0, n, _CUMSUM_BLOCK):
                segment = terms[offset : offset + _CUMSUM_BLOCK]
                out = prefix[offset + 1 : offset + 1 + len(segment)]
                _np.cumsum(segment, out=out)
                if carry:
                    out += carry
                out %= _PRIME
                carry = int(out[-1])
        prefix %= _PRIME
        if n < _WINDOW_SIZE:
            candidates = _np.empty(0, dtype=_np.int64)
        else:
            window_hash = terms[: n + 1 - _WINDOW_SIZE]
            _np.subtract(
                prefix[_WINDOW_SIZE:], prefix[: -_WINDOW_SIZE], out=window_hash
            )  # in (-P, P)
            # Shift into (0, 2P) before multiplying: P·B^k ≡ 0 (mod P), so the
            # result is unchanged, the product still fits in int64 (< 2^61)
            # and the reduction below runs on non-negative dividends, which is
            # substantially faster than floor-mod over negatives.
            window_hash += _PRIME
            window_hash *= powers[_WINDOW_SIZE - 1 : n]
            window_hash %= _PRIME
            average = self.average_size
            if average & (average - 1) == 0:
                window_hash &= average - 1
            else:
                window_hash %= average
            candidates = _np.flatnonzero(window_hash == self._boundary_residue) + _WINDOW_SIZE
        boundaries: List[Tuple[int, int]] = []
        append = boundaries.append
        min_size, max_size = self.min_size, self.max_size
        search = candidates.searchsorted
        num_candidates = len(candidates)
        start = 0
        while start < n:
            lowest = start + min_size
            if lowest > n:
                append((start, n))
                break
            forced = start + max_size
            if forced > n:
                forced = n
            index = search(lowest)
            if index < num_candidates:
                candidate = int(candidates[index])
                cut = candidate if candidate < forced else forced
            else:
                cut = forced
            append((start, cut))
            start = cut
        return boundaries

    # -- Frozen reference -------------------------------------------------------------

    def reference_boundaries(self, data: bytes) -> List[ChunkBoundary]:
        """The original per-byte implementation, kept verbatim as the frozen
        reference: golden and property tests prove the optimized paths emit
        bit-identical boundaries, and ``benchmarks/bench_chunking.py`` uses it
        as the "before" measurement."""
        length = len(data)
        if length == 0:
            return []
        boundaries: List[ChunkBoundary] = []
        start = 0
        rolling = 0
        window_fill = 0
        position = 0
        while position < length:
            byte = data[position]
            if window_fill < _WINDOW_SIZE:
                rolling = (rolling * _BASE + byte) % _PRIME
                window_fill += 1
            else:
                outgoing = data[position - _WINDOW_SIZE]
                rolling = (
                    (rolling - outgoing * self._leading_factor) * _BASE + byte
                ) % _PRIME
            position += 1
            chunk_length = position - start
            if chunk_length < self.min_size:
                continue
            at_boundary = (rolling % self.average_size) == self._boundary_residue
            if at_boundary or chunk_length >= self.max_size:
                boundaries.append(ChunkBoundary(start, position))
                start = position
                rolling = 0
                window_fill = 0
        if start < length:
            boundaries.append(ChunkBoundary(start, length))
        return boundaries
