"""Content-defined chunking with a Rabin-Karp rolling hash.

WAN optimizers and deduplication systems cut byte streams into chunks at
positions determined by the *content* (not fixed offsets), so that inserting
a byte near the start of a file only perturbs one chunk boundary instead of
shifting every subsequent chunk.  The classic scheme (LBFS, cited by the
paper as [34]) slides a fixed-width window over the data, maintains a
Rabin-Karp rolling hash of the window and declares a boundary whenever the
hash matches a target pattern modulo the average chunk size.

This implementation is pure Python and intended for correctness tests,
examples and small payloads; the large-scale WAN optimizer experiments use
pre-computed chunk descriptors from :mod:`repro.wanopt.traces`, exactly as
the paper's evaluation pre-computes chunks and SHA-1 hashes (§8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

_WINDOW_SIZE = 48
_PRIME = 1_000_000_007
_BASE = 257
_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class ChunkBoundary:
    """A [start, end) byte range of one chunk within an object."""

    start: int
    end: int

    @property
    def length(self) -> int:
        """Chunk length in bytes."""
        return self.end - self.start


class RabinChunker:
    """Content-defined chunker with minimum / average / maximum chunk sizes.

    Parameters
    ----------
    average_size:
        Target mean chunk size; a boundary is declared when the rolling hash
        is congruent to a fixed residue modulo ``average_size``.
    min_size / max_size:
        Hard bounds on chunk length; defaults are ``average_size / 4`` and
        ``average_size * 4`` (the paper uses 4-8 KB average chunks).
    """

    def __init__(
        self,
        average_size: int = 4096,
        min_size: int | None = None,
        max_size: int | None = None,
    ) -> None:
        if average_size < 64:
            raise ValueError("average_size must be at least 64 bytes")
        self.average_size = average_size
        self.min_size = min_size if min_size is not None else max(1, average_size // 4)
        self.max_size = max_size if max_size is not None else average_size * 4
        if self.min_size <= 0 or self.min_size > self.max_size:
            raise ValueError("require 0 < min_size <= max_size")
        self._boundary_residue = average_size - 1
        # Precompute BASE^(WINDOW-1) for removing the outgoing byte.
        self._leading_factor = pow(_BASE, _WINDOW_SIZE - 1, _PRIME)

    def boundaries(self, data: bytes) -> List[ChunkBoundary]:
        """Chunk boundaries covering ``data`` completely and in order."""
        length = len(data)
        if length == 0:
            return []
        boundaries: List[ChunkBoundary] = []
        start = 0
        rolling = 0
        window_fill = 0
        position = 0
        while position < length:
            byte = data[position]
            if window_fill < _WINDOW_SIZE:
                rolling = (rolling * _BASE + byte) % _PRIME
                window_fill += 1
            else:
                outgoing = data[position - _WINDOW_SIZE]
                rolling = (
                    (rolling - outgoing * self._leading_factor) * _BASE + byte
                ) % _PRIME
            position += 1
            chunk_length = position - start
            if chunk_length < self.min_size:
                continue
            at_boundary = (rolling % self.average_size) == self._boundary_residue
            if at_boundary or chunk_length >= self.max_size:
                boundaries.append(ChunkBoundary(start, position))
                start = position
                rolling = 0
                window_fill = 0
        if start < length:
            boundaries.append(ChunkBoundary(start, length))
        return boundaries

    def split(self, data: bytes) -> Iterator[bytes]:
        """Yield the chunk payloads of ``data``."""
        for boundary in self.boundaries(data):
            yield data[boundary.start : boundary.end]
