"""Compression engine (CE) of the WAN optimizer.

For each arriving object the engine:

1. looks every chunk fingerprint up in the fingerprint index (CLAM or a
   baseline index);
2. replaces chunks whose fingerprints match with small references
   (``reference_size`` bytes each on the wire);
3. appends new chunks to the on-disk content cache and inserts their
   fingerprints (pointing at the cache address) into the index.

The engine reports, per object, the original and compressed sizes and how
much simulated time was spent in index lookups, index inserts and cache
writes — the quantities behind Figures 9 and 10.

Two execution modes are offered.  :meth:`CompressionEngine.process_object`
issues one index operation per chunk, matching the paper's single-box CE.
:meth:`CompressionEngine.process_object_batched` instead makes **one lookup
round trip for the whole object and one insert round trip for its new
chunks**, the traffic pattern of the multi-branch deployment
(:mod:`repro.wanopt.topology`) where the fingerprint index is a remote,
sharded :class:`~repro.service.cluster.ClusterService`; both modes produce
identical compression decisions (compressed bytes, matched chunks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.core.results import InsertResult, LookupResult
from repro.telemetry import trace as _trace
from repro.wanopt.cache import ContentCache
from repro.wanopt.traces import TraceObject


@runtime_checkable
class FingerprintIndex(Protocol):
    """Anything usable as the CE's fingerprint hash table.

    Implementations must offer single-operation ``lookup``/``insert`` plus
    the batched counterparts ``lookup_batch``/``insert_batch`` the
    per-object round-trip path uses.  :class:`repro.core.clam.CLAM` and the
    BDB-style :class:`repro.baselines.disk_hash.ExternalHashIndex` implement
    the batch as a local loop; :class:`repro.service.cluster.ClusterService`
    fans it out across shard sub-batches through its
    :class:`~repro.service.batch.BatchExecutor`.  The protocol is
    ``runtime_checkable`` and every implementation is held to it by
    ``tests/test_fingerprint_index_conformance.py``.
    """

    def lookup(self, key) -> LookupResult: ...

    def insert(self, key, value) -> InsertResult: ...

    def lookup_batch(self, keys: Sequence) -> List[LookupResult]: ...

    def insert_batch(self, items: Sequence) -> List[InsertResult]: ...


@dataclass
class ObjectCompressionResult:
    """Outcome of compressing one object."""

    object_id: int
    original_bytes: int
    compressed_bytes: int
    chunks_total: int
    chunks_matched: int
    lookup_time_ms: float = 0.0
    insert_time_ms: float = 0.0
    cache_write_time_ms: float = 0.0
    fingerprint_time_ms: float = 0.0
    #: Per-chunk outcome, in chunk order (True = replaced by a reference).
    #: The multi-branch topology uses this to attribute cross-branch hits and
    #: to verify the far side can reconstruct every referenced chunk.
    matched_flags: Tuple[bool, ...] = ()

    @property
    def processing_time_ms(self) -> float:
        """Total CE time spent on this object."""
        return (
            self.lookup_time_ms
            + self.insert_time_ms
            + self.cache_write_time_ms
            + self.fingerprint_time_ms
        )

    @property
    def compression_ratio(self) -> float:
        """original / compressed size (>= 1 when compression helps)."""
        if self.compressed_bytes <= 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def bytes_saved(self) -> int:
        """Bytes removed from the wire by redundancy elimination."""
        return self.original_bytes - self.compressed_bytes


@dataclass
class CompressionEngine:
    """Redundancy-elimination engine with a pluggable fingerprint index.

    Parameters
    ----------
    index:
        The fingerprint hash table (a :class:`repro.core.CLAM` or any
        baseline index).
    content_cache:
        On-disk chunk store; optional — when omitted, cache write time is
        approximated as zero (useful for index-only studies).
    reference_size:
        Bytes transmitted for a matched chunk (fingerprint + on-wire header).
    fingerprint_cost_ms:
        Simulated CPU cost of computing one chunk's SHA-1 + Rabin boundaries;
        the paper emulates a "high-speed CM" by pre-computing these, so the
        default is a small constant per chunk.
    """

    index: FingerprintIndex
    content_cache: Optional[ContentCache] = None
    reference_size: int = 40
    fingerprint_cost_ms: float = 0.002
    results: List[ObjectCompressionResult] = field(default_factory=list)

    def process_object(self, obj: TraceObject) -> ObjectCompressionResult:
        """Compress one object and update the index/cache (one op per chunk)."""
        result = ObjectCompressionResult(
            object_id=obj.object_id,
            original_bytes=obj.size_bytes,
            compressed_bytes=0,
            chunks_total=obj.num_chunks,
            chunks_matched=0,
        )
        # A ClockEnsemble (cluster index) satisfies now_ms but is read-only;
        # CPU time then has nowhere sensible to go and is accounted only in
        # the result record (the batched path lets callers pass a clock).
        advance = getattr(getattr(self.index, "clock", None), "advance", None)
        matched_flags: List[bool] = []
        for chunk in obj.chunks:
            if advance is not None and self.fingerprint_cost_ms:
                advance(self.fingerprint_cost_ms)
            result.fingerprint_time_ms += self.fingerprint_cost_ms

            lookup = self.index.lookup(chunk.fingerprint)
            result.lookup_time_ms += lookup.latency_ms
            if lookup.found:
                result.chunks_matched += 1
                result.compressed_bytes += min(self.reference_size, chunk.size)
                matched_flags.append(True)
                continue

            matched_flags.append(False)
            result.compressed_bytes += chunk.size
            cache_address = 0
            if self.content_cache is not None:
                cache_address, cache_latency = self.content_cache.store(
                    chunk.fingerprint, chunk.size, chunk.raw
                )
                result.cache_write_time_ms += cache_latency
            insert = self.index.insert(
                chunk.fingerprint, cache_address.to_bytes(8, "big")
            )
            result.insert_time_ms += insert.latency_ms
        result.matched_flags = tuple(matched_flags)
        self.results.append(result)
        return result

    def process_object_batched(self, obj: TraceObject, clock=None) -> ObjectCompressionResult:
        """Compress one object with one lookup and one insert round trip.

        Every distinct chunk fingerprint of the object is looked up in a
        single :meth:`FingerprintIndex.lookup_batch` call, and the new
        chunks' fingerprints are installed with a single
        :meth:`FingerprintIndex.insert_batch` call — the per-object
        round-trip model of a branch office talking to a remote data-center
        index.  Compression decisions are identical to
        :meth:`process_object`: a chunk repeated *within* the object matches
        from its second occurrence on, exactly as the sequential path's
        insert-then-lookup interleaving produces.

        ``clock`` is the caller's (branch-side) clock.  When it differs from
        the clock a resource already advanced — a remote index on its own
        clock(s), a data-center content cache — the elapsed time of each
        round trip is charged to it, so the branch timeline reflects waiting
        for the remote side.  When a resource shares ``clock`` (the classic
        single-box setup) nothing is double-counted.
        """
        tracer = _trace.ACTIVE
        if tracer is None:
            return self._process_object_batched(obj, clock)
        span = tracer.begin(
            "wanopt.object",
            clock if clock is not None else getattr(self.index, "clock", None),
            object_id=obj.object_id,
            chunks=obj.num_chunks,
            original_bytes=obj.size_bytes,
        )
        try:
            result = self._process_object_batched(obj, clock)
        finally:
            tracer.end(span, clock if clock is not None else getattr(self.index, "clock", None))
        span.attributes["chunks_matched"] = result.chunks_matched
        span.attributes["compressed_bytes"] = result.compressed_bytes
        return result

    def _process_object_batched(self, obj: TraceObject, clock=None) -> ObjectCompressionResult:
        result = ObjectCompressionResult(
            object_id=obj.object_id,
            original_bytes=obj.size_bytes,
            compressed_bytes=0,
            chunks_total=obj.num_chunks,
            chunks_matched=0,
        )
        index_clock = getattr(self.index, "clock", None)
        tick = clock if clock is not None else index_clock
        advance = getattr(tick, "advance", None)

        fingerprint_ms = self.fingerprint_cost_ms * obj.num_chunks
        result.fingerprint_time_ms = fingerprint_ms
        if advance is not None and fingerprint_ms:
            advance(fingerprint_ms)

        # Round trip 1: look up each distinct fingerprint once.
        unique: List[bytes] = []
        seen: set = set()
        for chunk in obj.chunks:
            if chunk.fingerprint not in seen:
                seen.add(chunk.fingerprint)
                unique.append(chunk.fingerprint)
        lookups = self.index.lookup_batch(unique)
        result.lookup_time_ms = self._round_trip_ms(lookups)
        if advance is not None and tick is not index_clock and result.lookup_time_ms:
            advance(result.lookup_time_ms)
        found = {fp: lookup.found for fp, lookup in zip(unique, lookups)}

        # Local pass: decide reference vs literal, store literals in the cache.
        inserted_here: set = set()
        to_insert: List[Tuple[bytes, bytes]] = []
        matched_flags: List[bool] = []
        cache_clock = (
            getattr(self.content_cache.device, "clock", None)
            if self.content_cache is not None
            else None
        )
        for chunk in obj.chunks:
            if found[chunk.fingerprint] or chunk.fingerprint in inserted_here:
                result.chunks_matched += 1
                result.compressed_bytes += min(self.reference_size, chunk.size)
                matched_flags.append(True)
                continue
            matched_flags.append(False)
            result.compressed_bytes += chunk.size
            cache_address = 0
            if self.content_cache is not None:
                cache_address, cache_latency = self.content_cache.store(
                    chunk.fingerprint, chunk.size, chunk.raw
                )
                result.cache_write_time_ms += cache_latency
                if advance is not None and tick is not cache_clock and cache_latency:
                    advance(cache_latency)
            inserted_here.add(chunk.fingerprint)
            to_insert.append((chunk.fingerprint, cache_address.to_bytes(8, "big")))
        result.matched_flags = tuple(matched_flags)

        # Round trip 2: install the new fingerprints in one batch.
        if to_insert:
            inserts = self.index.insert_batch(to_insert)
            result.insert_time_ms = self._round_trip_ms(inserts)
            if advance is not None and tick is not index_clock and result.insert_time_ms:
                advance(result.insert_time_ms)
        self.results.append(result)
        return result

    def _round_trip_ms(self, results: List) -> float:
        """Elapsed time of one batched round trip against the index.

        A sharded index executes sub-batches on parallel shards, so its round
        trip completes at the slowest shard's makespan — exposed through the
        ``last_batch`` attribute :class:`~repro.service.cluster.ClusterService`
        maintains.  A plain local index (loop fallback) is serial: the round
        trip is the sum of per-operation latencies, which its own clock
        already advanced by.
        """
        last_batch = getattr(self.index, "last_batch", None)
        if last_batch is not None:
            return last_batch.makespan_ms
        return sum(r.latency_ms for r in results)

    # -- Aggregates -------------------------------------------------------------------

    @property
    def total_original_bytes(self) -> int:
        """Bytes presented to the engine so far."""
        return sum(result.original_bytes for result in self.results)

    @property
    def total_compressed_bytes(self) -> int:
        """Bytes that still had to cross the wire."""
        return sum(result.compressed_bytes for result in self.results)

    @property
    def overall_compression_ratio(self) -> float:
        """original / compressed across every processed object."""
        compressed = self.total_compressed_bytes
        if compressed <= 0:
            return float("inf")
        return self.total_original_bytes / compressed
