"""Compression engine (CE) of the WAN optimizer.

For each arriving object the engine:

1. looks every chunk fingerprint up in the fingerprint index (CLAM or a
   baseline index);
2. replaces chunks whose fingerprints match with small references
   (``reference_size`` bytes each on the wire);
3. appends new chunks to the on-disk content cache and inserts their
   fingerprints (pointing at the cache address) into the index.

The engine reports, per object, the original and compressed sizes and how
much simulated time was spent in index lookups, index inserts and cache
writes — the quantities behind Figures 9 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol

from repro.core.results import InsertResult, LookupResult
from repro.wanopt.cache import ContentCache
from repro.wanopt.traces import TraceObject


class FingerprintIndex(Protocol):
    """Anything usable as the CE's fingerprint hash table."""

    def lookup(self, key) -> LookupResult:  # pragma: no cover - protocol
        ...

    def insert(self, key, value) -> InsertResult:  # pragma: no cover - protocol
        ...


@dataclass
class ObjectCompressionResult:
    """Outcome of compressing one object."""

    object_id: int
    original_bytes: int
    compressed_bytes: int
    chunks_total: int
    chunks_matched: int
    lookup_time_ms: float = 0.0
    insert_time_ms: float = 0.0
    cache_write_time_ms: float = 0.0
    fingerprint_time_ms: float = 0.0

    @property
    def processing_time_ms(self) -> float:
        """Total CE time spent on this object."""
        return (
            self.lookup_time_ms
            + self.insert_time_ms
            + self.cache_write_time_ms
            + self.fingerprint_time_ms
        )

    @property
    def compression_ratio(self) -> float:
        """original / compressed size (>= 1 when compression helps)."""
        if self.compressed_bytes <= 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def bytes_saved(self) -> int:
        """Bytes removed from the wire by redundancy elimination."""
        return self.original_bytes - self.compressed_bytes


@dataclass
class CompressionEngine:
    """Redundancy-elimination engine with a pluggable fingerprint index.

    Parameters
    ----------
    index:
        The fingerprint hash table (a :class:`repro.core.CLAM` or any
        baseline index).
    content_cache:
        On-disk chunk store; optional — when omitted, cache write time is
        approximated as zero (useful for index-only studies).
    reference_size:
        Bytes transmitted for a matched chunk (fingerprint + on-wire header).
    fingerprint_cost_ms:
        Simulated CPU cost of computing one chunk's SHA-1 + Rabin boundaries;
        the paper emulates a "high-speed CM" by pre-computing these, so the
        default is a small constant per chunk.
    """

    index: FingerprintIndex
    content_cache: Optional[ContentCache] = None
    reference_size: int = 40
    fingerprint_cost_ms: float = 0.002
    results: List[ObjectCompressionResult] = field(default_factory=list)

    def process_object(self, obj: TraceObject) -> ObjectCompressionResult:
        """Compress one object and update the index/cache."""
        result = ObjectCompressionResult(
            object_id=obj.object_id,
            original_bytes=obj.size_bytes,
            compressed_bytes=0,
            chunks_total=obj.num_chunks,
            chunks_matched=0,
        )
        clock = getattr(self.index, "clock", None)
        for chunk in obj.chunks:
            if clock is not None and self.fingerprint_cost_ms:
                clock.advance(self.fingerprint_cost_ms)
            result.fingerprint_time_ms += self.fingerprint_cost_ms

            lookup = self.index.lookup(chunk.fingerprint)
            result.lookup_time_ms += lookup.latency_ms
            if lookup.found:
                result.chunks_matched += 1
                result.compressed_bytes += min(self.reference_size, chunk.size)
                continue

            result.compressed_bytes += chunk.size
            cache_address = 0
            if self.content_cache is not None:
                cache_address, cache_latency = self.content_cache.store(
                    chunk.fingerprint, chunk.size, chunk.payload
                )
                result.cache_write_time_ms += cache_latency
            insert = self.index.insert(
                chunk.fingerprint, cache_address.to_bytes(8, "big")
            )
            result.insert_time_ms += insert.latency_ms
        self.results.append(result)
        return result

    # -- Aggregates -------------------------------------------------------------------

    @property
    def total_original_bytes(self) -> int:
        """Bytes presented to the engine so far."""
        return sum(result.original_bytes for result in self.results)

    @property
    def total_compressed_bytes(self) -> int:
        """Bytes that still had to cross the wire."""
        return sum(result.compressed_bytes for result in self.results)

    @property
    def overall_compression_ratio(self) -> float:
        """original / compressed across every processed object."""
        compressed = self.total_compressed_bytes
        if compressed <= 0:
            return float("inf")
        return self.total_original_bytes / compressed
