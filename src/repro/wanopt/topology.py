"""Multi-branch WAN-optimizer deployment over a replicated CLAM cluster.

The paper's flagship application (§8) is a WAN optimizer whose compression
engine deduplicates chunk fingerprints against a CLAM index.  Its evaluation
is a single box; the deployments the paper motivates — branch offices of one
organisation uploading to a data center — share content *across* sites, so
the fingerprint index wants to be one logical, failure-tolerant service
rather than a per-box table.  This module composes the two halves of the
codebase into exactly that topology:

* **N branch offices**, each with its own simulation clock, WAN
  :class:`~repro.wanopt.network.Link` and local
  :class:`~repro.wanopt.engine.CompressionEngine`;
* **one data-center fingerprint index**, normally a replicated
  :class:`~repro.service.cluster.ClusterService` (``replication_factor >= 2``)
  — branch engines reach it with *one batched round trip per object*
  (:meth:`~repro.wanopt.engine.CompressionEngine.process_object_batched`),
  each round trip fanned out across shard sub-batches by the cluster's
  :class:`~repro.service.batch.BatchExecutor`;
* **one data-center content cache** holding every literal chunk any branch
  uploaded, which is what makes a *cross-branch* match resolvable on the far
  side.

Failure behaviour is first-class: :class:`~repro.service.simulator.FailureEvent`
schedules crash, heal or recover shards mid-run (:meth:`MultiBranchTopology.
fire_event`), reads and writes fail over along each key's preference list,
and when no live replica remains the optimizer **degrades to pass-through** —
the object crosses the wire uncompressed, never as unresolvable references.
The :class:`DedupReceiver` models the far side and proves it: every
referenced chunk must already sit in the shared store, so reconstruction is
byte-exact or the loss is counted, never silent.

The Scenario-1 style harness driving this topology is
:class:`repro.wanopt.optimizer.MultiBranchThroughputTest`;
``benchmarks/bench_wanopt_cluster.py`` sweeps branches × shards × RF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError, ShardUnavailableError
from repro.flashsim.clock import SimulationClock
from repro.flashsim.disk import MagneticDisk
from repro.service.cluster import ClusterService
from repro.service.recovery import RecoveryCoordinator, RecoveryReport
from repro.service.simulator import FailureEvent
from repro.telemetry import trace as _trace
from repro.wanopt.cache import ContentCache
from repro.wanopt.engine import (
    CompressionEngine,
    FingerprintIndex,
    ObjectCompressionResult,
)
from repro.wanopt.network import Link
from repro.wanopt.traces import TraceObject


@dataclass
class BranchOffice:
    """One branch site: its clock, WAN link and local compression engine.

    The engine's fingerprint index and content cache are the *shared*
    data-center resources (every branch engine points at the same ones);
    everything clocked here — fingerprinting CPU, waiting out index round
    trips, link serialisation — runs on the branch's private timeline.
    """

    branch_id: str
    clock: SimulationClock
    link: Link
    engine: CompressionEngine
    #: When the branch's WAN link drains its current object (pipeline state).
    link_free_at_ms: float = 0.0
    objects_processed: int = 0
    pass_through_objects: int = 0


@dataclass
class BranchObjectOutcome:
    """What happened to one object at one branch."""

    branch: BranchOffice
    obj: TraceObject
    #: Engine result, or ``None`` when the object degraded to pass-through.
    result: Optional[ObjectCompressionResult]
    #: Bytes that crossed the WAN link for this object.
    wire_bytes: int = 0
    #: Matched chunks whose first literal upload came from a *different* branch.
    cross_branch_matched: int = 0
    #: Whether the far side reassembled the object byte-exactly.
    reconstructed_exactly: bool = True
    #: Referenced chunks the far side could not resolve (must stay 0).
    chunks_lost: int = 0

    @property
    def pass_through(self) -> bool:
        """Whether the optimizer gave up and sent the object raw."""
        return self.result is None


class DedupReceiver:
    """The decompressing far side of every branch's WAN link.

    The data center reassembles each object from the literal chunks and
    references the branch sent.  A reference is resolvable only if the
    referenced chunk already arrived literally (from any branch) — the
    receiver keeps that arrival log and verifies each object against it, so
    a fingerprint index that claims a match for content the far side never
    received shows up as a *lost chunk*, not as silent corruption.
    """

    def __init__(self) -> None:
        # fingerprint -> owned payload bytes (None for descriptor-only
        # traces).  The receiver stores `chunk.payload` (owned bytes), not
        # the zero-copy view: a memoryview would pin the chunk's entire
        # parent object payload for the receiver's lifetime, making retained
        # memory scale with total traffic instead of unique content.
        self._store: Dict[bytes, Optional[bytes]] = {}
        self.objects_checked = 0
        self.objects_exact = 0
        self.chunks_checked = 0
        self.chunks_lost = 0

    def holds(self, fingerprint: bytes) -> bool:
        """Whether a literal copy of this chunk has arrived."""
        return fingerprint in self._store

    def receive(
        self, obj: TraceObject, result: Optional[ObjectCompressionResult]
    ) -> Tuple[bool, int]:
        """Reassemble one object; returns ``(byte_exact, chunks_lost)``.

        ``result=None`` is the pass-through path: every chunk crossed the
        wire literally, so reconstruction is trivially exact.  The literal
        chunks are still harvested into the dedup store — exactly as real
        optimizers opportunistically index pass-through traffic — which
        also keeps references resolvable when a *partially applied* insert
        batch left fingerprints in the index just before the object
        degraded (the far side has those bytes: they crossed raw).
        """
        self.objects_checked += 1
        if result is None:
            for chunk in obj.chunks:
                if chunk.fingerprint not in self._store:
                    self._store[chunk.fingerprint] = chunk.payload
            self.objects_exact += 1
            return True, 0
        lost = 0
        pieces: List[Optional[bytes]] = []
        for chunk, matched in zip(obj.chunks, result.matched_flags):
            self.chunks_checked += 1
            if matched:
                if chunk.fingerprint in self._store:
                    pieces.append(self._store[chunk.fingerprint])
                else:
                    lost += 1
                    pieces.append(None)
            else:
                self._store[chunk.fingerprint] = chunk.payload
                pieces.append(chunk.payload)
        exact = lost == 0
        if exact and all(piece is not None for piece in pieces):
            # Real-payload traces: check the reassembled bytes, not just the
            # fingerprint bookkeeping.  The original side joins the chunks'
            # zero-copy views transiently (one copy per object, never per
            # chunk); the reassembled side joins the receiver's owned bytes.
            original = b"".join(chunk.raw for chunk in obj.chunks)
            exact = b"".join(pieces) == original  # type: ignore[arg-type]
        self.chunks_lost += lost
        if exact:
            self.objects_exact += 1
        return exact, lost


class MultiBranchTopology:
    """N branch offices sharing one data-center fingerprint index.

    Parameters
    ----------
    num_branches:
        Branch offices to provision (each gets its own clock and link).
    link_mbps:
        WAN bandwidth of every branch's link.
    index:
        The shared fingerprint index.  ``None`` builds a
        :class:`ClusterService` from ``num_shards`` / ``replication_factor``
        / ``config`` / ``storage``; passing an existing index (e.g. a single
        :class:`~repro.core.clam.CLAM`) yields the degenerate one-box
        deployment the equivalence tests compare against.
    num_shards / replication_factor / config / storage:
        Cluster construction knobs (ignored when ``index`` is given).
    cache_device:
        Device for the shared data-center content cache; defaults to a
        magnetic disk on the data-center clock.  ``with_content_cache=False``
        drops the cache entirely (index-only studies).
    reference_size / fingerprint_cost_ms:
        Per-branch engine knobs (see :class:`CompressionEngine`).
    """

    def __init__(
        self,
        num_branches: int = 4,
        link_mbps: float = 100.0,
        index: Optional[FingerprintIndex] = None,
        num_shards: int = 4,
        replication_factor: int = 2,
        config=None,
        storage: str = "intel-ssd",
        cache_device=None,
        with_content_cache: bool = True,
        reference_size: int = 40,
        fingerprint_cost_ms: float = 0.002,
    ) -> None:
        if num_branches <= 0:
            raise ConfigurationError("num_branches must be positive")
        if index is None:
            index = ClusterService(
                num_shards=num_shards,
                config=config,
                storage=storage,
                replication_factor=replication_factor,
            )
        self.index = index
        self.dc_clock = SimulationClock()
        self.content_cache: Optional[ContentCache] = None
        if with_content_cache:
            device = cache_device if cache_device is not None else MagneticDisk(clock=self.dc_clock)
            self.content_cache = ContentCache(device)
        self.receiver = DedupReceiver()
        self.branches: List[BranchOffice] = []
        for branch_index in range(num_branches):
            clock = SimulationClock()
            self.branches.append(
                BranchOffice(
                    branch_id=f"branch-{branch_index}",
                    clock=clock,
                    link=Link(bandwidth_mbps=link_mbps, clock=clock),
                    engine=CompressionEngine(
                        index=index,
                        content_cache=self.content_cache,
                        reference_size=reference_size,
                        fingerprint_cost_ms=fingerprint_cost_ms,
                    ),
                )
            )
        #: Which branch first uploaded each fingerprint's literal bytes.
        self._first_uploader: Dict[bytes, str] = {}
        self.recovery_reports: List[RecoveryReport] = []
        self.objects_total = 0
        self.objects_compressed = 0
        self.objects_pass_through = 0
        self.cross_branch_matched = 0
        self.intra_branch_matched = 0

    # -- The shared cluster, when there is one ------------------------------------------

    @property
    def cluster(self) -> ClusterService:
        """The shared index as a :class:`ClusterService` (or raise)."""
        if not isinstance(self.index, ClusterService):
            raise ConfigurationError(
                "this topology runs on a plain index, not a ClusterService"
            )
        return self.index

    def fire_event(self, event: FailureEvent) -> Optional[RecoveryReport]:
        """Apply one scheduled fault action to the shared cluster.

        Mirrors the traffic simulator's semantics: ``fail`` injects the
        fault (detection happens when operations start failing), ``heal``
        clears it and replays hinted writes, ``recover`` runs a
        :class:`RecoveryCoordinator` pass over whatever the error counters
        marked down.
        """
        cluster = self.cluster
        cluster.events.record(
            "schedule_fired",
            action=event.action,
            shard=event.shard_id,
            at_request=event.at_request,
        )
        if event.action == "fail":
            cluster.fail_shard(event.shard_id, mode=event.mode)
            return None
        if event.action == "heal":
            cluster.heal_shard(event.shard_id)
            return None
        report = RecoveryCoordinator(cluster).recover()
        self.recovery_reports.append(report)
        return report

    # -- Object processing --------------------------------------------------------------

    def process_branch_object(self, branch: BranchOffice, obj: TraceObject) -> BranchObjectOutcome:
        """Run one object through one branch's engine, batched per object.

        A :class:`ShardUnavailableError` from the shared index (no live
        replica for some fingerprint) degrades the object to pass-through:
        the raw bytes cross the wire and nothing is deduplicated.  An insert
        batch that failed *partway* may still have left fingerprints on live
        shards; because the receiver harvests pass-through literals (and the
        upload is attributed below), a later match against those entries
        resolves instead of dangling.  The outcome carries dedup attribution
        (which matches crossed branches) and the receiver's reconstruction
        verdict.
        """
        self.objects_total += 1
        branch.objects_processed += 1
        tracer = _trace.ACTIVE
        span = (
            tracer.begin(
                "branch.transfer",
                branch.clock,
                branch=branch.branch_id,
                object_id=obj.object_id,
            )
            if tracer is not None
            else None
        )
        try:
            return self._process_branch_object(branch, obj, span)
        finally:
            if span is not None:
                tracer.end(span, branch.clock)

    def _process_branch_object(
        self, branch: BranchOffice, obj: TraceObject, span
    ) -> BranchObjectOutcome:
        try:
            result = branch.engine.process_object_batched(obj, clock=branch.clock)
        except ShardUnavailableError:
            if span is not None:
                span.attributes["pass_through"] = True
            branch.pass_through_objects += 1
            self.objects_pass_through += 1
            for chunk in obj.chunks:
                self._first_uploader.setdefault(chunk.fingerprint, branch.branch_id)
            exact, lost = self.receiver.receive(obj, None)
            return BranchObjectOutcome(
                branch=branch,
                obj=obj,
                result=None,
                wire_bytes=obj.size_bytes,
                reconstructed_exactly=exact,
                chunks_lost=lost,
            )
        self.objects_compressed += 1
        cross = 0
        for chunk, matched in zip(obj.chunks, result.matched_flags):
            if matched:
                uploader = self._first_uploader.get(chunk.fingerprint)
                if uploader is None or uploader != branch.branch_id:
                    cross += 1
                    self.cross_branch_matched += 1
                else:
                    self.intra_branch_matched += 1
            else:
                self._first_uploader.setdefault(chunk.fingerprint, branch.branch_id)
        exact, lost = self.receiver.receive(obj, result)
        return BranchObjectOutcome(
            branch=branch,
            obj=obj,
            result=result,
            wire_bytes=result.compressed_bytes,
            cross_branch_matched=cross,
            reconstructed_exactly=exact,
            chunks_lost=lost,
        )

    # -- Reporting ----------------------------------------------------------------------

    @property
    def availability(self) -> float:
        """Fraction of objects the optimizer compressed (vs degraded).

        The same completed-over-issued contract as
        :attr:`repro.service.simulator.TrafficReport.availability`: a
        pass-through is the optimizer failing its request and falling back,
        so RF >= 2 deployments must hold this at 1.0 through a single shard
        crash while RF = 1 deployments dip.
        """
        if self.objects_total == 0:
            return 1.0
        return self.objects_compressed / self.objects_total

    def describe(self) -> Dict[str, float]:
        """Summary counters for tables and benchmark JSON."""
        return {
            "branches": float(len(self.branches)),
            "objects_total": float(self.objects_total),
            "objects_compressed": float(self.objects_compressed),
            "objects_pass_through": float(self.objects_pass_through),
            "availability": self.availability,
            "cross_branch_matched": float(self.cross_branch_matched),
            "intra_branch_matched": float(self.intra_branch_matched),
            "chunks_lost": float(self.receiver.chunks_lost),
            "objects_reconstructed_exactly": float(self.receiver.objects_exact),
        }
