"""Network subsystem: the WAN link the optimizer transmits over.

The paper's network subsystem simply sends bytes at (close to) link speed
(§8, simplification 2: UDP at link rate with flow/congestion control turned
off), so the model is serialisation delay only: transmitting ``n`` bytes over
a ``b`` Mbps link takes ``8n / b`` microseconds of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flashsim.clock import SimulationClock


@dataclass(frozen=True)
class TransmissionResult:
    """Outcome of transmitting one object (or burst of bytes)."""

    bytes_sent: int
    duration_ms: float
    completed_at_ms: float


class Link:
    """A WAN link with a fixed capacity in Mbps."""

    def __init__(self, bandwidth_mbps: float, clock: SimulationClock) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        self.bandwidth_mbps = bandwidth_mbps
        self.clock = clock
        self.bytes_sent = 0
        self.busy_ms = 0.0

    def serialization_delay_ms(self, nbytes: int) -> float:
        """Time to clock ``nbytes`` onto the wire."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        bits = nbytes * 8
        return bits / (self.bandwidth_mbps * 1000.0)  # Mbps = 1000 bits per ms

    def transmit(self, nbytes: int) -> TransmissionResult:
        """Send ``nbytes``, advancing the shared simulation clock."""
        delay = self.serialization_delay_ms(nbytes)
        self.clock.advance(delay)
        self.bytes_sent += nbytes
        self.busy_ms += delay
        return TransmissionResult(
            bytes_sent=nbytes, duration_ms=delay, completed_at_ms=self.clock.now_ms
        )

    def utilization(self, observation_window_ms: float) -> float:
        """Fraction of an observation window the link spent transmitting."""
        if observation_window_ms <= 0:
            raise ValueError("observation_window_ms must be positive")
        return min(1.0, self.busy_ms / observation_window_ms)
