"""Central directory for a data-oriented network architecture (§3).

Data-oriented network proposals name content by hashes of its chunks and
resolve those names to the hosts currently holding the data.  In a
single-organisation deployment the resolution service is a central entity
that must sustain very high insert (publish) and lookup (resolve) rates over
a hash table far larger than DRAM — exactly the CLAM use case.
"""

from repro.directory.resolver import ContentDirectory, Registration, ResolutionResult

__all__ = ["ContentDirectory", "Registration", "ResolutionResult"]
