"""Content-name → host-location resolution service backed by a hash index.

The directory maps content names (hashes of data chunks) to the set of hosts
advertising that content.  Publishes append a host to the name's location
list; withdrawals remove it; resolutions return the current list.  All state
lives in the underlying index (a CLAM or a baseline), so the directory
inherits its performance and eviction behaviour.

Location lists are encoded into the index value as a length-prefixed list of
UTF-8 host identifiers, keeping the index value small (the systems the paper
cites store host addresses or locators, not payloads).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

_COUNT = struct.Struct("<H")
_ENTRY_LEN = struct.Struct("<H")


def _encode_hosts(hosts: List[str]) -> bytes:
    if len(hosts) > 0xFFFF:
        raise ValueError("too many hosts for one content name")
    parts = [_COUNT.pack(len(hosts))]
    for host in hosts:
        raw = host.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise ValueError("host identifier too long")
        parts.append(_ENTRY_LEN.pack(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def _decode_hosts(payload: bytes) -> List[str]:
    if not payload:
        return []
    (count,) = _COUNT.unpack_from(payload, 0)
    offset = _COUNT.size
    hosts: List[str] = []
    for _ in range(count):
        (length,) = _ENTRY_LEN.unpack_from(payload, offset)
        offset += _ENTRY_LEN.size
        hosts.append(payload[offset : offset + length].decode("utf-8"))
        offset += length
    return hosts


@dataclass(frozen=True)
class Registration:
    """Outcome of a publish or withdraw operation."""

    name: bytes
    host: str
    hosts_now: int
    latency_ms: float


@dataclass(frozen=True)
class ResolutionResult:
    """Outcome of resolving a content name."""

    name: bytes
    hosts: List[str]
    latency_ms: float

    @property
    def found(self) -> bool:
        """Whether any host currently advertises the content."""
        return bool(self.hosts)


class ContentDirectory:
    """Publish / withdraw / resolve API over a pluggable hash index."""

    def __init__(self, index, max_hosts_per_name: int = 16) -> None:
        if max_hosts_per_name <= 0:
            raise ValueError("max_hosts_per_name must be positive")
        self.index = index
        self.max_hosts_per_name = max_hosts_per_name
        self.publishes = 0
        self.withdrawals = 0
        self.resolutions = 0

    def publish(self, name: bytes, host: str) -> Registration:
        """Advertise that ``host`` holds the content named ``name``."""
        self.publishes += 1
        lookup = self.index.lookup(name)
        hosts = _decode_hosts(lookup.value) if lookup.found and lookup.value else []
        latency = lookup.latency_ms
        if host not in hosts:
            hosts.append(host)
            if len(hosts) > self.max_hosts_per_name:
                hosts = hosts[-self.max_hosts_per_name :]
        insert = self.index.insert(name, _encode_hosts(hosts))
        latency += insert.latency_ms
        return Registration(name=name, host=host, hosts_now=len(hosts), latency_ms=latency)

    def withdraw(self, name: bytes, host: str) -> Registration:
        """Remove ``host`` from the content's location list."""
        self.withdrawals += 1
        lookup = self.index.lookup(name)
        hosts = _decode_hosts(lookup.value) if lookup.found and lookup.value else []
        latency = lookup.latency_ms
        if host in hosts:
            hosts.remove(host)
        insert = self.index.insert(name, _encode_hosts(hosts))
        latency += insert.latency_ms
        return Registration(name=name, host=host, hosts_now=len(hosts), latency_ms=latency)

    def resolve(self, name: bytes) -> ResolutionResult:
        """Return the hosts currently advertising ``name``."""
        self.resolutions += 1
        lookup = self.index.lookup(name)
        hosts = _decode_hosts(lookup.value) if lookup.found and lookup.value else []
        return ResolutionResult(name=name, hosts=hosts, latency_ms=lookup.latency_ms)
