"""Deduplication index: fingerprint → chunk-store address, on a pluggable hash table.

The index accepts a stream of (fingerprint, size) chunk descriptors, stores
new chunks in the :class:`~repro.dedup.store.ChunkStore` and suppresses
duplicates.  It works with a CLAM or with any baseline index, which is what
allows the merge benchmark to compare the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.core.results import InsertResult, LookupResult
from repro.dedup.store import ChunkStore
from repro.wanopt.fingerprint import Chunk


@dataclass
class DedupStats:
    """Counters describing one ingest run."""

    chunks_seen: int = 0
    chunks_stored: int = 0
    duplicates_suppressed: int = 0
    bytes_seen: int = 0
    bytes_stored: int = 0
    index_time_ms: float = 0.0
    store_time_ms: float = 0.0

    @property
    def dedup_ratio(self) -> float:
        """bytes seen / bytes stored."""
        if self.bytes_stored == 0:
            return 1.0 if self.bytes_seen == 0 else float("inf")
        return self.bytes_seen / self.bytes_stored


class DedupIndex:
    """Fingerprint index + chunk store forming a deduplication pipeline."""

    def __init__(self, index, store: Optional[ChunkStore] = None) -> None:
        self.index = index
        self.store = store
        self.stats = DedupStats()

    def ingest_chunk(self, chunk: Chunk) -> Tuple[bool, float]:
        """Process one chunk; returns ``(was_duplicate, latency_ms)``."""
        self.stats.chunks_seen += 1
        self.stats.bytes_seen += chunk.size
        lookup: LookupResult = self.index.lookup(chunk.fingerprint)
        latency = lookup.latency_ms
        self.stats.index_time_ms += lookup.latency_ms
        if lookup.found:
            self.stats.duplicates_suppressed += 1
            if self.store is not None:
                self.store.note_duplicate(chunk.size)
            return True, latency
        address = 0
        if self.store is not None:
            address, store_latency = self.store.append(chunk.size, chunk.payload)
            self.stats.store_time_ms += store_latency
            latency += store_latency
        insert: InsertResult = self.index.insert(chunk.fingerprint, address.to_bytes(8, "big"))
        self.stats.index_time_ms += insert.latency_ms
        latency += insert.latency_ms
        self.stats.chunks_stored += 1
        self.stats.bytes_stored += chunk.size
        return False, latency

    def ingest(self, chunks: Iterable[Chunk]) -> DedupStats:
        """Process a stream of chunks and return the updated statistics."""
        for chunk in chunks:
            self.ingest_chunk(chunk)
        return self.stats

    def contains(self, fingerprint: bytes) -> bool:
        """Whether a fingerprint is present in the index."""
        return self.index.lookup(fingerprint).found
