"""Merging a smaller deduplication index into a larger one (§3).

"To merge a smaller index into a larger one, fingerprints from the latter
dataset need to be looked up, and the larger index updated with any new
information."  Every fingerprint of the smaller index therefore costs the
larger index one lookup, and the new ones cost an insert as well — which is
why the operation is dominated by the larger index's random-operation
latency, and why the paper estimates ~2 hours on Berkeley-DB versus under
2 minutes on a CLAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class MergeReport:
    """Outcome of one index merge."""

    fingerprints_processed: int
    new_fingerprints: int
    already_present: int
    lookup_time_ms: float
    insert_time_ms: float

    @property
    def total_time_ms(self) -> float:
        """Total simulated time the merge took."""
        return self.lookup_time_ms + self.insert_time_ms

    @property
    def total_time_minutes(self) -> float:
        """Total merge time in simulated minutes (the unit the paper quotes)."""
        return self.total_time_ms / 60_000.0


def merge_indexes(
    larger_index,
    smaller_entries: Iterable[Tuple[bytes, bytes]],
) -> MergeReport:
    """Merge ``smaller_entries`` (fingerprint → value pairs) into ``larger_index``.

    ``larger_index`` is any object with the common ``lookup``/``insert`` API —
    a CLAM or a baseline — so the same function reproduces both sides of the
    paper's 2 h vs 2 min comparison.
    """
    processed = 0
    new = 0
    present = 0
    lookup_ms = 0.0
    insert_ms = 0.0
    for fingerprint, value in smaller_entries:
        processed += 1
        result = larger_index.lookup(fingerprint)
        lookup_ms += result.latency_ms
        if result.found:
            present += 1
            continue
        insert = larger_index.insert(fingerprint, value)
        insert_ms += insert.latency_ms
        new += 1
    return MergeReport(
        fingerprints_processed=processed,
        new_fingerprints=new,
        already_present=present,
        lookup_time_ms=lookup_ms,
        insert_time_ms=insert_ms,
    )


def scale_merge_time(
    report: MergeReport, measured_fingerprints: int, target_fingerprints: int
) -> float:
    """Extrapolate a measured merge to the paper's full-size index (in minutes).

    The merge is a linear pass over the smaller index's fingerprints, so
    per-fingerprint cost times the target count estimates the full-scale
    duration (the paper's 20 GB-index scenario has ~1.25 billion
    fingerprints more than a scaled run touches).
    """
    if measured_fingerprints <= 0 or target_fingerprints <= 0:
        raise ValueError("fingerprint counts must be positive")
    per_fingerprint_ms = report.total_time_ms / measured_fingerprints
    return per_fingerprint_ms * target_fingerprints / 60_000.0
