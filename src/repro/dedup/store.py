"""Chunk store for the deduplication system.

Unique chunks are appended to a large sequential store on disk; the dedup
index maps fingerprints to their addresses.  The store is deliberately
simple — deduplication's hard problem is the index, which is exactly the
paper's point.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.flashsim.device import StorageDevice


class ChunkStore:
    """Append-only store of unique chunks on a simulated device."""

    def __init__(self, device: StorageDevice) -> None:
        self.device = device
        self._next_page = 0
        self._sizes: Dict[int, int] = {}
        self.unique_chunks = 0
        self.unique_bytes = 0
        self.duplicate_chunks = 0
        self.duplicate_bytes = 0

    def _pages_for(self, nbytes: int) -> int:
        page_size = self.device.geometry.page_size
        return max(1, -(-nbytes // page_size))

    def append(self, size: int, payload: Optional[bytes] = None) -> Tuple[int, float]:
        """Store one unique chunk; returns ``(address, latency_ms)``."""
        pages = self._pages_for(size)
        total_pages = self.device.geometry.total_pages
        if self._next_page + pages > total_pages:
            self._next_page = 0
        address = self._next_page
        page_size = self.device.geometry.page_size
        images = []
        for offset in range(pages):
            if payload is None:
                images.append(b"")
            else:
                images.append(payload[offset * page_size : (offset + 1) * page_size])
        latency = self.device.write_range(address, images)
        self._next_page += pages
        self._sizes[address] = size
        self.unique_chunks += 1
        self.unique_bytes += size
        return address, latency

    def note_duplicate(self, size: int) -> None:
        """Record that a duplicate chunk was suppressed (bookkeeping only)."""
        self.duplicate_chunks += 1
        self.duplicate_bytes += size

    def read(self, address: int) -> Tuple[bytes, float]:
        """Read a stored chunk back."""
        size = self._sizes.get(address)
        if size is None:
            raise KeyError(f"no chunk stored at address {address}")
        pages, latency = self.device.read_range(address, self._pages_for(size))
        return b"".join(pages)[:size], latency

    @property
    def dedup_ratio(self) -> float:
        """(unique + duplicate bytes) / unique bytes — the space saving factor."""
        if self.unique_bytes == 0:
            return 1.0
        return (self.unique_bytes + self.duplicate_bytes) / self.unique_bytes
