"""Data deduplication / online backup application (§3 of the paper).

A deduplication system stores each unique chunk of data once; its index maps
chunk fingerprints to stored locations.  The paper highlights one expensive
operation — merging a smaller index (e.g. a branch office's backup set) into
a larger one — and estimates Berkeley-DB would take ~2 hours where a CLAM
finishes in under 2 minutes.  This package implements the chunk store, the
dedup index on a pluggable hash table, and the merge operation behind that
comparison (`benchmarks/bench_dedup_merge.py`).
"""

from repro.dedup.store import ChunkStore
from repro.dedup.index import DedupIndex, DedupStats
from repro.dedup.merge import merge_indexes, MergeReport

__all__ = [
    "ChunkStore",
    "DedupIndex",
    "DedupStats",
    "merge_indexes",
    "MergeReport",
]
