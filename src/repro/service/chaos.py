"""Deterministic network-fault injection for the process-per-shard cluster.

:mod:`repro.flashsim.faults` gives every simulated *device* a seeded,
scriptable failure dial; this module is its twin for the *network hop*
between the parent and a shard worker.  A :class:`ChaosTransport` wraps the
parent side of the worker socketpair and perturbs whole frames in flight —
drop, delay, duplicate, reorder, byte-corrupt, and hang — on a seeded
schedule, so every gray-failure scenario the RPC plane claims to survive can
be replayed bit-for-bit from a seed.

The transport is frame-aware but protocol-agnostic: it never decodes
payloads.  On the send side one ``sendall`` call is one frame (that is how
:func:`repro.service.wire.send_frame` writes); on the receive side it reads
whole frames off the real socket using the same length prefix the wire layer
uses, applies at most one fault per frame, and serves the surviving bytes
through a normal ``recv`` interface.  :class:`RemoteShard` therefore runs
completely unmodified on top of it — which is the point: the deadline,
retry, hedge and circuit-breaker machinery is exercised by the very code
path production uses.

Fault semantics (one fault per frame, chosen by a single seeded draw):

``drop``
    The frame vanishes.  A dropped request is never executed; a dropped
    response leaves the worker idle and the parent waiting — either way the
    parent's per-request deadline expires and its retry resends the same
    sequence number.
``delay``
    The frame is delivered after ``delay_ms`` of real wall-clock sleep —
    enough to trip hedged reads (and deadlines, if ``delay_ms`` exceeds
    them) without losing anything.
``duplicate``
    The frame is delivered twice.  The receiver's sequence-number check
    discards the stale copy.
``reorder``
    The frame is held and delivered after the *next* frame in the same
    direction (or on the next pump if no frame follows, so nothing is held
    forever).
``corrupt``
    One byte after the length prefix is flipped, so framing stays
    synchronised and the receiver sees a typed
    :class:`~repro.service.wire.CorruptFrameError` from the CRC-32 check —
    the retryable corruption case.  (A flipped *length prefix* desynchronises
    the stream entirely; that failure mode is the hang fault's territory,
    and the wire layer's oversize/truncation guards cover it in tests.)
``hang``
    The transport wedges: every later send is swallowed and every receive
    blocks out its timeout then raises ``TimeoutError``, exactly like a
    worker that stopped scheduling mid-conversation.  Only
    :meth:`ChaosTransport.heal` (or removing the transport) un-wedges it.

Every injection invokes the ``on_inject`` callback — the cluster wires that
to a ``chaos_injected`` event in its :class:`~repro.telemetry.events.EventLog`
— so a chaos run's full fault history is replayable *and* auditable.
"""

from __future__ import annotations

import random
import socket
import struct
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.errors import ConfigurationError

__all__ = [
    "CHAOS_FAULTS",
    "ChaosSchedule",
    "ChaosTransport",
    "derive_seed",
]

#: Every fault a schedule can inject, in the order the seeded draw maps them.
CHAOS_FAULTS = ("drop", "delay", "duplicate", "reorder", "corrupt", "hang")

_LEN_PREFIX = struct.Struct("<I")

#: Ceiling on how long a hung transport sleeps per receive before raising —
#: keeps a missing deadline from turning a test into a multi-minute stall.
_MAX_HANG_SLEEP_S = 1.0


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded probability mix plus an exact per-frame script.

    Rates are per-frame probabilities (one seeded draw decides each frame's
    fate, so a schedule replays identically from the same seed); ``script``
    pins specific frames — keyed by the transport's monotonically increasing
    frame index, counted across both directions — to specific faults,
    overriding the rates for those frames.  ``none`` in a script entry
    forces a frame through untouched.
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_rate: float = 0.0
    #: Wall-clock delay applied by the ``delay`` fault.
    delay_ms: float = 20.0
    #: Exact overrides: frame index -> fault name (or ``"none"``).
    script: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        rates = (
            self.drop_rate,
            self.delay_rate,
            self.duplicate_rate,
            self.reorder_rate,
            self.corrupt_rate,
            self.hang_rate,
        )
        if any(rate < 0.0 for rate in rates) or sum(rates) > 1.0:
            raise ConfigurationError(
                "chaos rates must be non-negative and sum to at most 1.0 "
                f"(got {rates})"
            )
        if self.delay_ms < 0.0:
            raise ConfigurationError(f"delay_ms must be non-negative (got {self.delay_ms})")
        for index, fault in self.script.items():
            if fault != "none" and fault not in CHAOS_FAULTS:
                raise ConfigurationError(f"unknown scripted fault {fault!r} at frame {index}")

    @property
    def total_rate(self) -> float:
        return (
            self.drop_rate
            + self.delay_rate
            + self.duplicate_rate
            + self.reorder_rate
            + self.corrupt_rate
            + self.hang_rate
        )

    def pick(self, rng: random.Random, frame_index: int) -> Optional[str]:
        """The fault for one frame: script first, then one seeded draw."""
        scripted = self.script.get(frame_index)
        if scripted is not None:
            return None if scripted == "none" else scripted
        if self.total_rate <= 0.0:
            return None
        draw = rng.random()
        threshold = 0.0
        for fault, rate in zip(
            CHAOS_FAULTS,
            (
                self.drop_rate,
                self.delay_rate,
                self.duplicate_rate,
                self.reorder_rate,
                self.corrupt_rate,
                self.hang_rate,
            ),
        ):
            threshold += rate
            if draw < threshold:
                return fault
        return None


class ChaosTransport:
    """A fault-injecting wrapper around the parent side of a worker socket.

    Duck-types the small socket surface :class:`~repro.service.parallel.
    RemoteShard` uses — ``sendall``/``recv``/``settimeout``/``gettimeout``/
    ``close``/``fileno`` — so it can be slid under an existing proxy (and
    slid back out) without the proxy noticing.  See the module docstring for
    the fault taxonomy; determinism comes from one ``random.Random(seed)``
    consuming exactly one draw per unscripted frame.
    """

    def __init__(
        self,
        sock: socket.socket,
        schedule: ChaosSchedule,
        seed: int = 0,
        on_inject: Optional[Callable[[str, str, int], None]] = None,
    ) -> None:
        #: The real socket underneath (used to unwrap on ``clear_chaos``).
        self.raw = sock
        self.schedule = schedule
        self.seed = seed
        self._rng = random.Random(seed)
        self._on_inject = on_inject
        self._frames = 0  # frames seen, both directions (script key space)
        self._injected = 0
        self._hung = False
        self._eof = False
        self._rx_buffer = bytearray()  # fault-processed bytes ready to serve
        self._rx_held: Optional[bytes] = None  # a reordered inbound frame
        self._tx_held: Optional[bytes] = None  # a reordered outbound frame

    # -- Introspection -----------------------------------------------------------------

    @property
    def injected_faults(self) -> int:
        """How many faults this transport has injected so far."""
        return self._injected

    @property
    def hung(self) -> bool:
        return self._hung

    def heal(self) -> None:
        """Un-wedge a hung transport (frames swallowed while hung stay lost)."""
        self._hung = False

    # -- Fault selection ---------------------------------------------------------------

    def _next_fault(self, direction: str) -> Optional[str]:
        index = self._frames
        self._frames += 1
        fault = self.schedule.pick(self._rng, index)
        if fault is not None:
            self._injected += 1
            if self._on_inject is not None:
                self._on_inject(fault, direction, index)
        return fault

    @staticmethod
    def _corrupt(frame: bytes, rng: random.Random) -> bytes:
        """Flip one byte after the length prefix (framing stays intact)."""
        if len(frame) <= _LEN_PREFIX.size:  # pragma: no cover - frames always have bodies
            return frame
        position = rng.randrange(_LEN_PREFIX.size, len(frame))
        mutated = bytearray(frame)
        mutated[position] ^= 1 << rng.randrange(8)
        return bytes(mutated)

    # -- Send side ---------------------------------------------------------------------

    def sendall(self, data: bytes) -> None:
        """Send one frame (the wire layer writes each frame in one call)."""
        if self._hung:
            return  # swallowed: the worker never sees it
        frame = bytes(data)
        fault = self._next_fault("send")
        if fault == "drop":
            return
        if fault == "hang":
            self._hung = True
            return
        if fault == "corrupt":
            frame = self._corrupt(frame, self._rng)
        elif fault == "delay":
            time.sleep(self.schedule.delay_ms / 1000.0)
        elif fault == "reorder":
            if self._tx_held is None:
                self._tx_held = frame
                return
            # Already holding one: deliver both rather than stack indefinitely.
        held, self._tx_held = self._tx_held, None
        self.raw.sendall(frame)
        if fault == "duplicate":
            self.raw.sendall(frame)
        if held is not None:
            self.raw.sendall(held)

    # -- Receive side ------------------------------------------------------------------

    def _read_exact(self, size: int) -> bytes:
        chunks: List[bytes] = []
        remaining = size
        while remaining:
            chunk = self.raw.recv(min(remaining, 1 << 20))
            if not chunk:
                # EOF.  Surface any partial bytes so the wire layer raises
                # its own TruncatedFrameError; every later recv is EOF too.
                self._eof = True
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> bytes:
        """One whole frame (length prefix included) off the real socket.

        Returns whatever partial bytes arrived on EOF; may raise
        ``TimeoutError`` from the underlying socket timeout, which callers
        propagate as a deadline expiry.
        """
        prefix = self._read_exact(_LEN_PREFIX.size)
        if len(prefix) < _LEN_PREFIX.size:
            return prefix  # EOF (possibly mid-prefix): pass the bytes through
        (body_len,) = _LEN_PREFIX.unpack(prefix)
        return prefix + self._read_exact(body_len)

    def _pump(self) -> None:
        """Read one frame, apply its fault, append survivors to the buffer."""
        try:
            frame = self._read_frame()
        except (TimeoutError, socket.timeout):
            if self._rx_held is not None:
                # Nothing followed the held frame; deliver it instead of
                # letting a reorder masquerade as a hang.
                self._rx_buffer.extend(self._rx_held)
                self._rx_held = None
                return
            raise
        if self._eof:
            # A hangup is the worker-death signal: deliver it untouched
            # (chaos perturbs traffic, it must never mask a real death).
            self._rx_buffer.extend(frame)
            return
        fault = self._next_fault("recv")
        if fault == "drop":
            return
        if fault == "hang":
            self._hung = True
            return
        if fault == "corrupt":
            frame = self._corrupt(frame, self._rng)
        elif fault == "delay":
            time.sleep(self.schedule.delay_ms / 1000.0)
        elif fault == "reorder":
            if self._rx_held is None:
                self._rx_held = frame
                return
        self._rx_buffer.extend(frame)
        if fault == "duplicate":
            self._rx_buffer.extend(frame)
        if self._rx_held is not None and fault != "reorder":
            self._rx_buffer.extend(self._rx_held)
            self._rx_held = None

    def recv(self, size: int) -> bytes:
        if self._hung:
            timeout = self.gettimeout()
            time.sleep(min(timeout if timeout is not None else 0.01, _MAX_HANG_SLEEP_S))
            raise socket.timeout("chaos transport is hung")
        while not self._rx_buffer:
            if self._eof:
                return b""  # the wire layer turns this into TruncatedFrameError
            self._pump()
            if self._hung:
                return self.recv(size)  # the pump just wedged us
            # A dropped frame leaves the buffer empty; loop and wait for the
            # next one (or for the socket timeout to expire in _pump).
        take = min(size, len(self._rx_buffer))
        data = bytes(self._rx_buffer[:take])
        del self._rx_buffer[:take]
        return data

    # -- Socket passthrough ------------------------------------------------------------

    def settimeout(self, timeout: Optional[float]) -> None:
        self.raw.settimeout(timeout)

    def gettimeout(self) -> Optional[float]:
        return self.raw.gettimeout()

    def fileno(self) -> int:
        return self.raw.fileno()

    def close(self) -> None:
        self.raw.close()


def derive_seed(base_seed: int, shard_id: str) -> int:
    """A stable per-shard seed so one cluster seed fans out deterministically."""
    value = base_seed & 0xFFFFFFFF
    for byte in shard_id.encode("utf-8"):
        value = ((value * 1000003) ^ byte) & 0xFFFFFFFFFFFFFFFF
    return value
