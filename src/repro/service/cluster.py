"""A fleet of CLAM shards behind a single hash-table facade.

:class:`ClusterService` composes N independent :class:`~repro.core.clam.CLAM`
instances — each with its own simulated device and clock — behind the exact
``insert``/``lookup``/``update``/``delete`` interface of a single CLAM
(:class:`repro.workloads.runner.HashIndex`), so every existing driver (the
workload runner, the baselines harness, the benchmarks) can operate a whole
cluster unchanged.  Keys are placed by a consistent-hash
:class:`~repro.service.router.ShardRouter`; batches go through a
:class:`~repro.service.batch.BatchExecutor`; cluster time is the
:class:`~repro.flashsim.clock.ClockEnsemble` view over the shard clocks
(parallel shards: elapsed time is the slowest member).

:class:`ClusterStats` merges the cheap per-instance counters
(:meth:`repro.core.clam.CLAM.counters`) across the fleet: flash/DRAM I/O,
flush/eviction counts, hit rates, plus load-balance measures (hottest shard,
imbalance factor) that the traffic simulator's hot-shard reporting builds on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.core.clam import CLAM
from repro.core.config import CLAMConfig
from repro.core.errors import ConfigurationError
from repro.core.eviction import EvictionPolicy
from repro.core.hashing import KeyLike, canonical_key
from repro.core.results import DeleteResult, InsertResult, LookupResult
from repro.flashsim.clock import ClockEnsemble, SimulationClock
from repro.service.batch import (
    DEFAULT_DISPATCH_OVERHEAD_MS,
    DEFAULT_ROUTING_COST_MS,
    BatchExecutor,
    BatchResult,
)
from repro.service.router import HandoffStats, ShardRouter
from repro.workloads.workload import Operation


def imbalance_factor(loads: Iterable[float]) -> float:
    """Hottest load over the mean load (1.0 = perfectly balanced or idle)."""
    loads = list(loads)
    total = sum(loads)
    if not loads or total == 0:
        return 1.0
    return max(loads) / (total / len(loads))


class ClusterStats:
    """Merged statistics over every shard of a :class:`ClusterService`."""

    def __init__(self, shards: Dict[str, CLAM]) -> None:
        self._shards = shards

    def per_shard(self) -> Dict[str, Dict[str, float]]:
        """Each shard's cheap counter snapshot (see :meth:`CLAM.counters`)."""
        return {shard_id: clam.counters() for shard_id, clam in self._shards.items()}

    def combined(self, per_shard: Optional[Dict[str, Dict[str, float]]] = None) -> Dict[str, float]:
        """Counter snapshot summed across shards.

        ``clock_ms`` and the latency maxima are combined with ``max`` (shards
        run in parallel); every other counter is additive.  Pass an existing
        :meth:`per_shard` snapshot to avoid polling the fleet again.
        """
        merged: Dict[str, float] = {}
        max_keys = {"clock_ms", "lookup_latency_max_ms", "insert_latency_max_ms"}
        if per_shard is None:
            per_shard = self.per_shard()
        for counters in per_shard.values():
            for key, value in counters.items():
                if key in max_keys:
                    merged[key] = max(merged.get(key, 0.0), value)
                else:
                    merged[key] = merged.get(key, 0.0) + value
        return merged

    def operations_per_shard(
        self, per_shard: Optional[Dict[str, Dict[str, float]]] = None
    ) -> Dict[str, float]:
        """Hash operations each shard has served."""
        if per_shard is None:
            per_shard = self.per_shard()
        return {
            shard_id: counters["lookups"] + counters["inserts"] + counters["deletes"]
            for shard_id, counters in per_shard.items()
        }

    def hottest_shard(self) -> Tuple[str, float]:
        """(shard id, operation count) of the most loaded shard."""
        loads = self.operations_per_shard()
        if not loads:
            raise ConfigurationError("cluster has no shards")
        shard_id = max(loads, key=lambda s: (loads[s], s))
        return shard_id, loads[shard_id]

    def imbalance_factor(
        self, per_shard: Optional[Dict[str, Dict[str, float]]] = None
    ) -> float:
        """Hottest shard's load over the mean load (1.0 = perfectly balanced)."""
        return imbalance_factor(self.operations_per_shard(per_shard).values())


class ClusterService:
    """N CLAM shards behind the single-index ``HashIndex`` interface.

    Parameters
    ----------
    num_shards:
        Number of shards to create (ignored when ``shard_ids`` is given).
    config:
        Per-shard :class:`CLAMConfig` (each shard gets the full config; size
        the buffers accordingly).  Defaults to :meth:`CLAMConfig.scaled`.
    storage:
        Storage profile name used for every shard's private device.
    virtual_nodes:
        Consistent-hash virtual nodes per shard.
    dispatch_overhead_ms / routing_cost_ms:
        Service-layer simulated costs; see :mod:`repro.service.batch`.
    """

    def __init__(
        self,
        num_shards: int = 4,
        config: Optional[CLAMConfig] = None,
        storage: str = "intel-ssd",
        virtual_nodes: int = 64,
        shard_ids: Optional[Iterable[str]] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        keep_latency_samples: bool = True,
        dispatch_overhead_ms: float = DEFAULT_DISPATCH_OVERHEAD_MS,
        routing_cost_ms: float = DEFAULT_ROUTING_COST_MS,
    ) -> None:
        if shard_ids is not None:
            names = list(shard_ids)
        else:
            if num_shards <= 0:
                raise ConfigurationError("num_shards must be positive")
            names = [f"shard-{index}" for index in range(num_shards)]
        self.config = config if config is not None else CLAMConfig.scaled()
        self.storage = storage
        self._eviction_policy = eviction_policy
        self._keep_latency_samples = keep_latency_samples
        self.shards: Dict[str, CLAM] = {}
        self.clock = ClockEnsemble()
        for name in names:
            self._build_shard(name)
        self.router = ShardRouter(names, virtual_nodes=virtual_nodes)
        self.executor = BatchExecutor(
            self.router,
            self.shards,
            dispatch_overhead_ms=dispatch_overhead_ms,
            routing_cost_ms=routing_cost_ms,
            hash_once=self.config.use_hash_once,
        )
        self.stats = ClusterStats(self.shards)

    def _build_shard(self, shard_id: str) -> CLAM:
        if shard_id in self.shards:
            raise ConfigurationError(f"shard {shard_id!r} already exists")
        clam = CLAM(
            self.config,
            storage=self.storage,
            clock=SimulationClock(),
            eviction_policy=self._eviction_policy,
            keep_latency_samples=self._keep_latency_samples,
        )
        self.shards[shard_id] = clam
        self.clock.add(clam.clock)
        return clam

    # -- HashIndex interface ------------------------------------------------------------

    def shard_for(self, key: KeyLike) -> str:
        """Shard id that owns ``key``."""
        return self.router.route(self._canonical(key))

    def _canonical(self, key: KeyLike) -> KeyLike:
        """Hash the key once for routing *and* the shard-side operation.

        The digest computed for the ring position travels into the owning
        CLAM, whose boundary recognises it and reuses it; the
        ``use_hash_once=False`` ablation passes canonical bytes through so
        shards re-hash exactly as they originally did (shared policy:
        :func:`repro.core.hashing.canonical_key`).
        """
        return canonical_key(key, self.config.use_hash_once)

    def _dispatch(self, key: KeyLike) -> Tuple[CLAM, KeyLike]:
        key = self._canonical(key)
        shard = self.shards[self.router.route(key)]
        # A stand-alone operation pays routing plus the full dispatch overhead
        # by itself; batches amortise the dispatch share (see BatchExecutor).
        shard.clock.advance(
            self.executor.dispatch_overhead_ms + self.executor.routing_cost_ms
        )
        return shard, key

    def insert(self, key: KeyLike, value: bytes) -> InsertResult:
        """Insert or update a (key, value) pair on the owning shard."""
        shard, key = self._dispatch(key)
        return shard.insert(key, value)

    def update(self, key: KeyLike, value: bytes) -> InsertResult:
        """Lazy update (alias of insert), routed to the owning shard."""
        shard, key = self._dispatch(key)
        return shard.update(key, value)

    def lookup(self, key: KeyLike) -> LookupResult:
        """Look up the most recent value for a key on the owning shard."""
        shard, key = self._dispatch(key)
        return shard.lookup(key)

    def delete(self, key: KeyLike) -> DeleteResult:
        """Delete a key on the owning shard."""
        shard, key = self._dispatch(key)
        return shard.delete(key)

    def get(self, key: KeyLike) -> Optional[bytes]:
        """Convenience accessor returning just the value (or ``None``)."""
        return self.lookup(key).value

    def __contains__(self, key: KeyLike) -> bool:
        return self.lookup(key).found

    # -- Batched interface --------------------------------------------------------------

    def execute_batch(self, operations: Iterable[Operation]) -> BatchResult:
        """Execute a batch of operations grouped by shard (see BatchExecutor)."""
        return self.executor.execute(operations)

    # -- Membership ---------------------------------------------------------------------

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        """Current shard names, sorted."""
        return self.router.shard_ids

    @property
    def num_shards(self) -> int:
        """Number of shards currently serving."""
        return len(self.shards)

    def add_shard(self, shard_id: Optional[str] = None) -> HandoffStats:
        """Provision a new shard and return the key-range handoff it causes.

        The handoff stats describe the fraction of the key space whose owner
        changed; data migration itself is left to a future rebalancing layer,
        so keys already resident on other shards keep serving from there only
        if re-inserted (consistent hashing keeps that moved fraction near
        ``1/(N+1)`` rather than re-shuffling everything).
        """
        if shard_id is None:
            index = len(self.shards)
            while f"shard-{index}" in self.shards:
                index += 1
            shard_id = f"shard-{index}"
        self._build_shard(shard_id)
        return self.router.add_shard(shard_id)

    def remove_shard(self, shard_id: str) -> HandoffStats:
        """Decommission a shard and return the key-range handoff it causes."""
        # The router validates presence and refuses to drop the last shard
        # before mutating anything, so no duplicate guards are needed here.
        handoff = self.router.remove_shard(shard_id)
        clam = self.shards.pop(shard_id)
        self.clock.remove(clam.clock)
        return handoff

    # -- Reporting ----------------------------------------------------------------------

    def throughput_ops_per_second(self, combined: Optional[Dict[str, float]] = None) -> float:
        """Cluster-wide hash operations per simulated (parallel) second.

        ``combined`` lets callers that already hold a
        :meth:`ClusterStats.combined` snapshot avoid polling the fleet again.
        """
        if combined is None:
            combined = self.stats.combined()
        total_ops = combined.get("lookups", 0.0) + combined.get("inserts", 0.0) + combined.get(
            "deletes", 0.0
        )
        elapsed_ms = self.clock.now_ms
        if elapsed_ms <= 0:
            return 0.0
        return total_ops / (elapsed_ms / 1000.0)

    def describe(self) -> Dict[str, float]:
        """Summary dictionary in the same spirit as :meth:`CLAM.describe`."""
        per_shard = self.stats.per_shard()
        combined = self.stats.combined(per_shard)
        lookups = combined.get("lookups", 0.0)
        inserts = combined.get("inserts", 0.0)
        summary = {
            "shards": float(self.num_shards),
            "lookups": lookups,
            "inserts": inserts,
            "mean_lookup_ms": (
                combined.get("lookup_latency_total_ms", 0.0) / lookups if lookups else 0.0
            ),
            "mean_insert_ms": (
                combined.get("insert_latency_total_ms", 0.0) / inserts if inserts else 0.0
            ),
            "lookup_success_rate": (
                combined.get("lookup_hits", 0.0) / lookups if lookups else 0.0
            ),
            "flushes": combined.get("flushes", 0.0),
            "evictions": combined.get("evictions", 0.0),
            "throughput_ops_per_s": self.throughput_ops_per_second(combined),
            "imbalance_factor": self.stats.imbalance_factor(per_shard),
            "clock_skew_ms": self.clock.skew_ms,
        }
        return summary
