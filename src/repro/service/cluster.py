"""A fleet of CLAM shards behind a single hash-table facade.

:class:`ClusterService` composes N independent :class:`~repro.core.clam.CLAM`
instances — each with its own simulated device and clock — behind the exact
``insert``/``lookup``/``update``/``delete`` interface of a single CLAM
(:class:`repro.workloads.runner.HashIndex`), so every existing driver (the
workload runner, the baselines harness, the benchmarks) can operate a whole
cluster unchanged.  Keys are placed by a consistent-hash
:class:`~repro.service.router.ShardRouter`; batches go through a
:class:`~repro.service.batch.BatchExecutor`; cluster time is the
:class:`~repro.flashsim.clock.ClockEnsemble` view over the shard clocks
(parallel shards: elapsed time is the slowest member).

With ``replication_factor=N`` the cluster tolerates shard failures: every
write lands on the key's N-shard preference list
(:meth:`~repro.service.router.ShardRouter.preference_list`), reads are served
by the first live replica with read-repair of stale ones, shards that throw
:class:`~repro.core.errors.DeviceFailedError` (see
:mod:`repro.flashsim.faults`) are marked down after ``failure_threshold``
errors and routed around, and the
:class:`~repro.service.recovery.RecoveryCoordinator` re-replicates what a
dead shard owned onto the survivors along the router's exact handoff arcs.

:class:`ClusterStats` merges the cheap per-instance counters
(:meth:`repro.core.clam.CLAM.counters`) across the fleet: flash/DRAM I/O,
flush/eviction counts, hit rates, plus load-balance measures (hottest shard,
imbalance factor) and the fleet's failure/recovery health
(:meth:`ClusterStats.health`).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.clam import CLAM
from repro.core.recovery import CrashRecoveryReport, DurableCLAM
from repro.core.config import CLAMConfig
from repro.core.errors import (
    ClusterCloseError,
    ConfigurationError,
    DeviceFailedError,
    ShardUnavailableError,
)
from repro.core.eviction import EvictionPolicy
from repro.core.hashing import KeyLike, canonical_key, key_data
from repro.core.results import DeleteResult, InsertResult, LookupResult
from repro.flashsim.clock import ClockEnsemble, SimulationClock
from repro.service.batch import (
    DEFAULT_DISPATCH_OVERHEAD_MS,
    DEFAULT_ROUTING_COST_MS,
    BatchExecutor,
    BatchResult,
)
from repro.service.router import HandoffStats, ShardRouter
from repro.telemetry import trace as _trace
from repro.telemetry.events import EventLog
from repro.telemetry.export import build_snapshot
from repro.telemetry.registry import MetricsRegistry
from repro.workloads.workload import (
    Operation,
    OpKind,
    insert_operations,
    lookup_operations,
)


#: Operation kinds the write fan-out path dispatches, by method name.
_WRITE_KINDS = {"insert": OpKind.INSERT, "update": OpKind.UPDATE, "delete": OpKind.DELETE}


def imbalance_factor(loads: Iterable[float]) -> float:
    """Hottest load over the mean load (1.0 = perfectly balanced or idle)."""
    loads = list(loads)
    total = sum(loads)
    if not loads or total == 0:
        return 1.0
    return max(loads) / (total / len(loads))


class ClusterStats:
    """Merged statistics over every shard of a :class:`ClusterService`."""

    def __init__(self, shards: Dict[str, CLAM], service: Optional["ClusterService"] = None) -> None:
        self._shards = shards
        self._service = service

    def per_shard(self) -> Dict[str, Dict[str, float]]:
        """Each shard's cheap counter snapshot (see :meth:`CLAM.counters`)."""
        return {shard_id: clam.counters() for shard_id, clam in self._shards.items()}

    def combined(self, per_shard: Optional[Dict[str, Dict[str, float]]] = None) -> Dict[str, float]:
        """Counter snapshot summed across shards.

        ``clock_ms`` and the latency maxima are combined with ``max`` (shards
        run in parallel); every other counter is additive.  Pass an existing
        :meth:`per_shard` snapshot to avoid polling the fleet again.
        """
        merged: Dict[str, float] = {}
        max_keys = {"clock_ms", "lookup_latency_max_ms", "insert_latency_max_ms"}
        if per_shard is None:
            per_shard = self.per_shard()
        for counters in per_shard.values():
            for key, value in counters.items():
                if key in max_keys:
                    merged[key] = max(merged.get(key, 0.0), value)
                else:
                    merged[key] = merged.get(key, 0.0) + value
        return merged

    def operations_per_shard(
        self, per_shard: Optional[Dict[str, Dict[str, float]]] = None
    ) -> Dict[str, float]:
        """Hash operations each shard has served."""
        if per_shard is None:
            per_shard = self.per_shard()
        return {
            shard_id: counters["lookups"] + counters["inserts"] + counters["deletes"]
            for shard_id, counters in per_shard.items()
        }

    def hottest_shard(self) -> Tuple[str, float]:
        """(shard id, operation count) of the most loaded shard."""
        loads = self.operations_per_shard()
        if not loads:
            raise ConfigurationError("cluster has no shards")
        shard_id = max(loads, key=lambda s: (loads[s], s))
        return shard_id, loads[shard_id]

    def imbalance_factor(
        self, per_shard: Optional[Dict[str, Dict[str, float]]] = None
    ) -> float:
        """Hottest shard's load over the mean load (1.0 = perfectly balanced)."""
        return imbalance_factor(self.operations_per_shard(per_shard).values())

    def health(self) -> Dict[str, object]:
        """Failure-handling view of the fleet: liveness, errors, recovery.

        Requires the stats object to be attached to a :class:`ClusterService`
        (the service constructs it that way); the merged counters above work
        on a bare shard mapping too.
        """
        service = self._service
        if service is None:
            raise ConfigurationError("health() needs stats attached to a ClusterService")
        last = service.last_recovery
        # The event log is the ground truth for failure *history*: the live
        # sets above only describe the present, so a shard that went down and
        # was healed mid-run would otherwise be indistinguishable from one
        # that never failed.
        ever_down: Set[str] = set()
        healed: Set[str] = set()
        down_now: Set[str] = set()
        for event in service.events:
            shard = event.attributes.get("shard")
            if event.kind == "shard_down":
                ever_down.add(shard)
                down_now.add(shard)
            elif event.kind == "shard_healed" and shard in down_now:
                down_now.discard(shard)
                healed.add(shard)
        return {
            "replication_factor": service.replication_factor,
            "live_shards": list(service.live_shard_ids),
            "down_shards": list(service.down_shard_ids),
            "shard_errors": dict(service.shard_errors),
            "read_repairs": service.read_repairs,
            "hinted_handoffs": service.hinted_handoffs,
            "recoveries": service.recoveries,
            "keys_re_replicated": last.keys_re_replicated if last is not None else 0,
            "last_recovery_ms": last.duration_ms if last is not None else 0.0,
            "shards_ever_down": sorted(ever_down),
            "healed_shards": sorted(healed),
            "shards_never_failed": sorted(
                shard for shard in service.live_shard_ids if shard not in ever_down
            ),
        }


class ClusterService:
    """N CLAM shards behind the single-index ``HashIndex`` interface.

    Parameters
    ----------
    num_shards:
        Number of shards to create (ignored when ``shard_ids`` is given).
    config:
        Per-shard :class:`CLAMConfig` (each shard gets the full config; size
        the buffers accordingly).  Defaults to :meth:`CLAMConfig.scaled`.
    storage:
        Storage profile name used for every shard's private device, or
        ``"persistent"`` to build each shard as a
        :class:`~repro.core.recovery.DurableCLAM` on a file-backed device
        under ``data_dir`` (one ``<shard_id>.clam`` file per shard).
        Persistent shards survive power cuts: see :meth:`fail_shard`'s
        ``"power-cut"`` mode and :meth:`reopen_shard`.
    data_dir:
        Directory holding the shard files when ``storage="persistent"``
        (created if missing; required for that storage, rejected otherwise).
    virtual_nodes:
        Consistent-hash virtual nodes per shard.
    dispatch_overhead_ms / routing_cost_ms:
        Service-layer simulated costs; see :mod:`repro.service.batch`.
    replication_factor:
        Copies of every key, placed on the key's preference list
        (:meth:`ShardRouter.preference_list`).  With 1 (the default) the
        cluster behaves exactly like the pre-replication service; with N>=2 a
        shard can crash without losing keys (see
        :mod:`repro.service.recovery`).
    failure_threshold:
        :class:`~repro.core.errors.DeviceFailedError` count at which a shard
        is marked down and routed around.
    track_keys:
        Maintain the key catalog recovery needs to re-replicate a dead
        shard's keys.  Defaults to on whenever ``replication_factor > 1``.
    """

    def __init__(
        self,
        num_shards: int = 4,
        config: Optional[CLAMConfig] = None,
        storage: str = "intel-ssd",
        virtual_nodes: int = 64,
        shard_ids: Optional[Iterable[str]] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        keep_latency_samples: bool = True,
        dispatch_overhead_ms: float = DEFAULT_DISPATCH_OVERHEAD_MS,
        routing_cost_ms: float = DEFAULT_ROUTING_COST_MS,
        replication_factor: int = 1,
        failure_threshold: int = 1,
        track_keys: Optional[bool] = None,
        data_dir: Optional[str] = None,
    ) -> None:
        if shard_ids is not None:
            names = list(shard_ids)
        else:
            if num_shards <= 0:
                raise ConfigurationError("num_shards must be positive")
            names = [f"shard-{index}" for index in range(num_shards)]
        if replication_factor < 1:
            raise ConfigurationError("replication_factor must be at least 1")
        if replication_factor > len(names):
            raise ConfigurationError(
                f"replication_factor {replication_factor} exceeds the "
                f"{len(names)} shards available"
            )
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        self.config = config if config is not None else CLAMConfig.scaled()
        self.storage = storage
        if storage == "persistent":
            if data_dir is None:
                raise ConfigurationError(
                    'storage="persistent" needs a data_dir for the shard files'
                )
            os.makedirs(data_dir, exist_ok=True)
        elif data_dir is not None:
            raise ConfigurationError(
                f'data_dir is only meaningful with storage="persistent", not {storage!r}'
            )
        self.data_dir = data_dir
        self._eviction_policy = eviction_policy
        self._keep_latency_samples = keep_latency_samples
        self.replication_factor = replication_factor
        self.failure_threshold = failure_threshold
        self.shards: Dict[str, CLAM] = {}
        self.clock = ClockEnsemble()
        #: Structured record of membership/failure/recovery transitions,
        #: stamped on the cluster clock.  Always on — these events are rare.
        self.events = EventLog(clock=self.clock)
        #: Cluster-level metrics (request counters, liveness gauges); the
        #: per-shard registries live on the CLAMs themselves.  ``None`` when
        #: ``config.telemetry_enabled`` is off.
        self.telemetry: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.config.telemetry_enabled else None
        )
        # Failure-handling state: cumulative DeviceFailedError counts and the
        # set of shards currently considered down (still on the ring until a
        # recovery decommissions or a heal revives them).
        self._errors: Dict[str, int] = {}
        self._down: Set[str] = set()
        self._tracked: Optional[Set[bytes]] = (
            set() if (track_keys if track_keys is not None else replication_factor > 1) else None
        )
        # Hinted handoff: keys each unavailable replica missed a write or
        # delete for, replayed (from the live replicas' current state) when
        # the shard is healed.  Without this, a replica that sits *after* the
        # serving one in the preference list would come back stale forever —
        # read-repair only fixes replicas a lookup actually probes.
        self._hints: Dict[str, Set[bytes]] = {}
        self.read_repairs = 0
        self.hinted_handoffs = 0
        self.recoveries = 0
        #: In-flight :class:`~repro.service.rebalance.MigrationState`, installed
        #: by a :class:`~repro.service.rebalance.KeyMigrator` while an online
        #: scale-out/scale-in is moving key-range arcs.  While set, every
        #: read/write consults :meth:`_op_replicas` so arcs being moved are
        #: double-read (old owners first) and dual-written; ``None`` costs one
        #: attribute check per operation.
        self.migration = None
        #: Most recent :class:`~repro.service.recovery.RecoveryReport`.
        self.last_recovery = None
        #: Most recent :class:`~repro.service.batch.BatchResult` produced by
        #: :meth:`execute_batch` (and therefore by :meth:`lookup_batch` /
        #: :meth:`insert_batch`).  Lets callers that only see per-operation
        #: result lists — e.g. the WAN optimizer's batched compression
        #: engine — recover the round trip's makespan across parallel shards.
        self.last_batch: Optional[BatchResult] = None
        for name in names:
            self._build_shard(name)
        self.router = ShardRouter(names, virtual_nodes=virtual_nodes)
        self.executor = self._build_executor(dispatch_overhead_ms, routing_cost_ms)
        self.stats = ClusterStats(self.shards, service=self)

    def _build_executor(
        self, dispatch_overhead_ms: float, routing_cost_ms: float
    ) -> BatchExecutor:
        """Construct the batch executor; the process-per-shard deployment
        overrides this to install its scatter/gather executor with the same
        hooks (same routing, failover and accounting — the results contract)."""
        return BatchExecutor(
            self.router,
            self.shards,
            dispatch_overhead_ms=dispatch_overhead_ms,
            routing_cost_ms=routing_cost_ms,
            hash_once=self.config.use_hash_once,
            replication_factor=self.replication_factor,
            is_live=self.is_live,
            on_shard_error=self.record_shard_error,
            on_missed_write=self._record_hint,
            targets_for=self._op_replicas,
        )

    def shard_path(self, shard_id: str) -> str:
        """Backing file of a persistent shard."""
        if self.data_dir is None:
            raise ConfigurationError("cluster has no data_dir (not persistent storage)")
        return os.path.join(self.data_dir, f"{shard_id}.clam")

    def _build_shard(self, shard_id: str) -> CLAM:
        if shard_id in self.shards:
            raise ConfigurationError(f"shard {shard_id!r} already exists")
        if self.storage == "persistent":
            # Reopening an existing file recovers it (cluster restart); the
            # stored superblock config wins over self.config in that case.
            path = self.shard_path(shard_id)
            existing = os.path.exists(path) and os.path.getsize(path) > 0
            clam: CLAM = DurableCLAM(
                path,
                config=None if existing else self.config,
                clock=SimulationClock(),
                eviction_policy=self._eviction_policy,
                keep_latency_samples=self._keep_latency_samples,
                name=shard_id,
            )
        else:
            clam = CLAM(
                self.config,
                storage=self.storage,
                clock=SimulationClock(),
                eviction_policy=self._eviction_policy,
                keep_latency_samples=self._keep_latency_samples,
            )
        self.shards[shard_id] = clam
        self.clock.add(clam.clock)
        return clam

    # -- Liveness and failure accounting ------------------------------------------------

    @property
    def live_shard_ids(self) -> Tuple[str, ...]:
        """Shards currently serving (on the ring, instantiated, not down)."""
        return tuple(s for s in self.router.shard_ids if self.is_live(s))

    @property
    def down_shard_ids(self) -> Tuple[str, ...]:
        """Shards marked down by the error counters (candidates for recovery)."""
        return tuple(sorted(self._down))

    @property
    def shard_errors(self) -> Dict[str, int]:
        """Cumulative :class:`DeviceFailedError` count per shard."""
        return dict(self._errors)

    def is_live(self, shard_id: str) -> bool:
        """Whether ``shard_id`` can serve operations right now.

        The *live view* every routing decision goes through: a shard must be
        instantiated (present in :attr:`shards` — guarding against a shard
        removed mid-flight) and not marked down by the error counters.
        """
        return shard_id in self.shards and shard_id not in self._down

    def record_shard_error(self, shard_id: str) -> bool:
        """Count one device failure; returns True when the shard goes down."""
        count = self._errors.get(shard_id, 0) + 1
        self._errors[shard_id] = count
        if shard_id not in self._down and count >= self.failure_threshold:
            self._down.add(shard_id)
            self.events.record("shard_down", shard=shard_id, errors=count)
            return True
        return False

    def fail_shard(self, shard_id: str, mode: str = "crash", **fault_kwargs) -> None:
        """Inject a fault into every device of one shard.

        ``mode`` is ``"crash"`` (crash-stop), ``"io-errors"``
        (``error_rate=``, deterministic under the device seed), ``"degraded"``
        (``latency_multiplier=`` / ``extra_latency_ms=``) or ``"power-cut"``
        (``after_n_ios=N``: the shard's device loses power at its N-th
        subsequent page I/O, tearing whatever was in flight — meaningful on
        persistent shards, whose media survives for :meth:`reopen_shard`).
        Injection only plants the fault — the shard is *detected* as down via
        the error counters once operations start failing, exactly as a real
        cluster learns about a dead node.
        """
        if shard_id not in self.shards:
            raise ConfigurationError(f"shard {shard_id!r} not present")
        self._inject_fault(shard_id, mode, fault_kwargs)
        self.events.record("failure_injected", shard=shard_id, mode=mode)

    def _inject_fault(self, shard_id: str, mode: str, fault_kwargs: Dict[str, object]) -> None:
        """Plant one fault mode on every device of a shard (overridable: the
        process-per-shard deployment relays this to the worker instead)."""
        for device in self.shards[shard_id].devices:
            if mode == "crash":
                device.faults.crash()
            elif mode == "io-errors":
                device.faults.inject_errors(**fault_kwargs)
            elif mode == "degraded":
                device.faults.degrade(**fault_kwargs)
            elif mode == "power-cut":
                device.faults.crash_after_n_ios(fault_kwargs.get("after_n_ios", 1))
            else:
                raise ConfigurationError(f"unknown fault mode {mode!r}")

    def heal_shard(self, shard_id: str) -> None:
        """Clear faults and error state; the shard resumes serving.

        A healed shard kept its data but missed every write and delete issued
        while it was unavailable.  Those are replayed here from the hinted-
        handoff log before the shard rejoins: each hinted key's current value
        is read from the live replicas and installed (or, if the key was
        deleted meanwhile, deleted) on the healed shard, so it comes back
        neither missing recent keys nor serving stale values.  Read-repair
        on the lookup path remains as a second line of defence.
        """
        if shard_id not in self.shards:
            raise ConfigurationError(f"shard {shard_id!r} not present")
        was_down = shard_id in self._down
        self._heal_devices(shard_id)
        self._errors.pop(shard_id, None)
        self._down.discard(shard_id)
        self.events.record("shard_healed", shard=shard_id, was_down=was_down)
        self._replay_hints_for(shard_id)

    def _heal_devices(self, shard_id: str) -> None:
        """Clear every device fault on one shard (overridable, like
        :meth:`_inject_fault`)."""
        for device in self.shards[shard_id].devices:
            device.faults.heal()

    def _replay_hints_for(self, shard_id: str) -> int:
        """Replay the hinted-handoff log onto a shard that just rejoined.

        Shared by :meth:`heal_shard`, :meth:`reopen_shard` and the parallel
        cluster's worker restart; returns how many hints were replayed.
        """
        replayed_before = self.hinted_handoffs
        for key in sorted(self._hints.pop(shard_id, ())):
            self._replay_hint(shard_id, key)
        replayed = self.hinted_handoffs - replayed_before
        if replayed:
            self.events.record("hinted_handoff_replay", shard=shard_id, keys_replayed=replayed)
        return replayed

    def reopen_shard(self, shard_id: str) -> CrashRecoveryReport:
        """Reopen a power-cut persistent shard from its backing file.

        The dead :class:`~repro.core.recovery.DurableCLAM` is released and a
        fresh one opened on the same file, which runs the CLAM crash-recovery
        scan: acknowledged writes come back; DRAM-buffered ones are lost on
        this shard (with ``replication_factor >= 2`` the other replicas still
        hold them and read-repair restores this copy lazily).  Writes the
        shard missed *while marked down* are then replayed from the hinted-
        handoff log, exactly as :meth:`heal_shard` does, and the shard
        rejoins the ring without any re-replication sweep.

        Returns the shard's :class:`~repro.core.recovery.CrashRecoveryReport`.
        """
        if self.storage != "persistent":
            raise ConfigurationError(
                'reopen_shard needs storage="persistent"; '
                f"this cluster uses {self.storage!r}"
            )
        if shard_id not in self.shards:
            raise ConfigurationError(f"shard {shard_id!r} not present")
        self.events.record("crash_recovery_started", shard=shard_id)
        old = self.shards.pop(shard_id)
        self.clock.remove(old.clock)
        old.close()  # releases the mapping; skips flushing on a dead device
        clam = self._build_shard(shard_id)
        report = clam.recovery_report
        assert isinstance(report, CrashRecoveryReport)  # the file existed
        self._errors.pop(shard_id, None)
        self._down.discard(shard_id)
        self.events.record(
            "crash_recovery_completed",
            shard=shard_id,
            clean_shutdown=report.clean_shutdown,
            pages_scanned=report.pages_scanned,
            entries_rebuilt=report.entries_rebuilt,
            incarnations_from_checkpoint=report.incarnations_from_checkpoint,
            log_records_replayed=report.log_records_replayed,
            torn_pages_discarded=report.torn_pages_discarded,
            recovery_io_ms=report.recovery_io_ms,
        )
        self._replay_hints_for(shard_id)
        return report

    def _record_hint(self, shard_id: str, key: KeyLike) -> None:
        """Remember that ``shard_id`` missed a write/delete for ``key``."""
        if shard_id in self.shards:
            self._hints.setdefault(shard_id, set()).add(key_data(key))

    def _replay_hint(self, shard_id: str, key: bytes) -> None:
        """Bring one hinted key on a healed shard up to date.

        The authoritative state is whatever the other live replicas say right
        now: a found value is installed on the healed shard (overwriting any
        stale version it kept), a unanimous miss means the key was deleted
        while the shard was down, so the missed delete is applied.  If no
        other replica can answer, the hint is retained for the next heal.
        """
        replicas = self.router.preference_list(key, self.replication_factor)
        if shard_id not in replicas:
            return  # the ring changed; the healed shard no longer hosts this key
        answered = False
        for other_id in replicas:
            if other_id == shard_id or not self.is_live(other_id):
                continue
            result = self._shard_op(other_id, "lookup", key)
            if result is None:
                continue
            answered = True
            if result.found:
                if self._shard_op(shard_id, "insert", key, result.value) is not None:
                    self.hinted_handoffs += 1
                return
        if answered:
            # Every live replica misses: apply the delete this shard missed.
            if self._shard_op(shard_id, "delete", key) is not None:
                self.hinted_handoffs += 1
        else:
            self._hints.setdefault(shard_id, set()).add(key)

    @property
    def tracked_keys(self) -> Optional[frozenset]:
        """Live keys (canonical bytes) when key tracking is enabled, else None."""
        return frozenset(self._tracked) if self._tracked is not None else None

    # -- HashIndex interface ------------------------------------------------------------

    def shard_for(self, key: KeyLike) -> str:
        """Shard id that owns ``key`` (the primary replica)."""
        return self.router.route(self._canonical(key))

    def replicas_for(self, key: KeyLike) -> Tuple[str, ...]:
        """The key's full preference list (length ``replication_factor``)."""
        return self.router.preference_list(self._canonical(key), self.replication_factor)

    def _canonical(self, key: KeyLike) -> KeyLike:
        """Hash the key once for routing *and* the shard-side operation.

        The digest computed for the ring position travels into the owning
        CLAM, whose boundary recognises it and reuses it; the
        ``use_hash_once=False`` ablation passes canonical bytes through so
        shards re-hash exactly as they originally did (shared policy:
        :func:`repro.core.hashing.canonical_key`).
        """
        return canonical_key(key, self.config.use_hash_once)

    def _op_replicas(self, key: KeyLike, kind: OpKind) -> Tuple[str, ...]:
        """The shards one operation must consult, migration-aware.

        Without a migration in flight this is exactly the key's preference
        list.  While a :class:`~repro.service.rebalance.KeyMigrator` is moving
        arcs, keys inside an arc being migrated are answered from the union
        of old and new owners — old owners first, so lookups never miss
        mid-move (the *double-read window*) and writes reach both sides (the
        *write-forwarding* that lets the arc cut over without a quiesce).
        """
        migration = self.migration
        if migration is not None:
            return migration.replicas_for(key, kind)
        return self.router.preference_list(key, self.replication_factor)

    def _live_replicas(self, key: KeyLike) -> Tuple[str, ...]:
        """The key's serving replicas filtered through the live view.

        Raises the typed :class:`ShardUnavailableError` (never a bare
        ``KeyError``) when nothing is left to serve the key.
        """
        replicas = self._op_replicas(key, OpKind.LOOKUP)
        live = tuple(s for s in replicas if self.is_live(s))
        if not live:
            raise ShardUnavailableError(
                f"no live replica for key (preference list {replicas!r}, "
                f"down {self.down_shard_ids!r})"
            )
        return live

    def _shard_op(self, shard_id: str, op_name: str, *args):
        """One dispatched operation against one shard; None if the shard fails.

        Charges the stand-alone dispatch + routing overhead to the shard's
        clock (batches amortise the dispatch share instead, see
        :class:`BatchExecutor`) and folds any
        :class:`DeviceFailedError` into the error counters.
        """
        shard = self.shards[shard_id]
        shard.clock.advance(
            self.executor.dispatch_overhead_ms + self.executor.routing_cost_ms
        )
        try:
            return getattr(shard, op_name)(*args)
        except DeviceFailedError:
            self.record_shard_error(shard_id)
            return None

    def _track(self, key: KeyLike, alive: bool) -> None:
        if self._tracked is None:
            return
        data = key_data(key)
        if alive:
            self._tracked.add(data)
        else:
            self._tracked.discard(data)
        # An in-flight migration keeps per-arc copy queues: a write landing in
        # an arc that has not started moving yet must join that arc's queue
        # (arcs already moving are covered by the dual-write path instead).
        if self.migration is not None:
            self.migration.note_write(data, alive)

    def _write_all(self, op_name: str, key: KeyLike, *args):
        """Run a write on every live replica; the primary's result is returned.

        Replicas that are down (or fail mid-write) get a hinted-handoff entry
        so :meth:`heal_shard` can replay what they missed.
        """
        key = self._canonical(key)
        replicas = self._op_replicas(key, _WRITE_KINDS[op_name])
        primary_result = None
        for shard_id in replicas:
            if not self.is_live(shard_id):
                self._record_hint(shard_id, key)
                continue
            result = self._shard_op(shard_id, op_name, key, *args)
            if result is None:
                self._record_hint(shard_id, key)
            elif primary_result is None:
                primary_result = result
        if primary_result is None:
            raise ShardUnavailableError(
                f"no live replica executed {op_name} (preference list {replicas!r}, "
                f"down {self.down_shard_ids!r})"
            )
        return primary_result

    def insert(self, key: KeyLike, value: bytes) -> InsertResult:
        """Insert or update a (key, value) pair on every live replica."""
        result = self._write_all("insert", key, value)
        self._track(result.key, alive=True)
        return result

    def update(self, key: KeyLike, value: bytes) -> InsertResult:
        """Lazy update (alias of insert), written to every live replica."""
        result = self._write_all("update", key, value)
        self._track(result.key, alive=True)
        return result

    def lookup(self, key: KeyLike) -> LookupResult:
        """Look up a key on the first live replica, with read-repair.

        Replicas are tried in preference-list order.  A replica that answers
        with a hit wins; any earlier live replica that *missed* (it was down
        or behind when the value was written) is repaired by re-inserting the
        value.  A replica that raises :class:`DeviceFailedError` is counted
        against its error threshold and skipped.  Only when every live
        replica misses is the miss returned.
        """
        key = self._canonical(key)
        misses: List[str] = []
        first_miss: Optional[LookupResult] = None
        for shard_id in self._live_replicas(key):
            result = self._shard_op(shard_id, "lookup", key)
            if result is None:
                continue
            if result.found:
                for stale in misses:
                    if self._shard_op(stale, "insert", key, result.value) is not None:
                        self.read_repairs += 1
                return result
            misses.append(shard_id)
            if first_miss is None:
                first_miss = result
        if first_miss is None:
            raise ShardUnavailableError("every live replica failed while executing lookup")
        return first_miss

    def delete(self, key: KeyLike) -> DeleteResult:
        """Delete a key on every live replica."""
        result = self._write_all("delete", key)
        self._track(result.key, alive=False)
        return result

    def get(self, key: KeyLike) -> Optional[bytes]:
        """Convenience accessor returning just the value (or ``None``)."""
        return self.lookup(key).value

    def __contains__(self, key: KeyLike) -> bool:
        return self.lookup(key).found

    # -- Batched interface --------------------------------------------------------------

    def execute_batch(self, operations: Iterable[Operation]) -> BatchResult:
        """Execute a batch of operations grouped by shard (see BatchExecutor)."""
        submitted = list(operations)
        tracer = _trace.ACTIVE
        span = (
            tracer.begin("cluster.batch", self.clock, operations=len(submitted))
            if tracer is not None
            else None
        )
        try:
            batch = self.executor.execute(submitted)
        except ShardUnavailableError as error:
            # Writes the batch applied before the failing operation are on
            # shards and must reach the key catalog anyway, or recovery would
            # never re-replicate them; the executor attaches the partial
            # per-op results to the error for exactly this purpose.
            self._track_batch(submitted, getattr(error, "partial_results", None))
            raise
        finally:
            if span is not None:
                tracer.end(span, self.clock)
        self._track_batch(submitted, batch.results)
        self.last_batch = batch
        if span is not None:
            span.attributes["retried_operations"] = batch.retried_operations
        return batch

    def lookup_batch(self, keys: Iterable[KeyLike]) -> List[LookupResult]:
        """Look every key up in one batch fanned out across the shards.

        The batched half of :class:`repro.wanopt.engine.FingerprintIndex`:
        operations are grouped into per-shard sub-batches by the
        :class:`~repro.service.batch.BatchExecutor` (one dispatch per shard,
        replica failover included) and the per-key results come back in
        submission order.  The underlying :class:`BatchResult` — including
        the parallel-shard makespan — is left in :attr:`last_batch`.
        """
        return list(self.execute_batch(lookup_operations(keys)).results)

    def insert_batch(self, items: Iterable[Tuple[KeyLike, bytes]]) -> List[InsertResult]:
        """Insert every ``(key, value)`` pair in one fanned-out batch."""
        return list(self.execute_batch(insert_operations(items)).results)

    def _track_batch(self, submitted: List[Operation], results: Optional[List[object]]) -> None:
        """Fold a batch's applied writes into the key catalog."""
        if self._tracked is None or results is None:
            return
        for operation, result in zip(submitted, results):
            if result is None:
                continue
            if operation.kind in (OpKind.INSERT, OpKind.UPDATE):
                self._track(operation.key, alive=True)
            elif operation.kind is OpKind.DELETE:
                self._track(operation.key, alive=False)

    # -- Membership ---------------------------------------------------------------------

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        """Current shard names, sorted."""
        return self.router.shard_ids

    @property
    def num_shards(self) -> int:
        """Number of shards currently provisioned (live or down)."""
        return len(self.shards)

    def add_shard(self, shard_id: Optional[str] = None) -> HandoffStats:
        """Provision a new shard and return the key-range handoff it causes.

        The handoff stats describe the fraction of the key space whose owner
        changed; data migration itself is left to a future rebalancing layer,
        so keys already resident on other shards keep serving from there only
        if re-inserted (consistent hashing keeps that moved fraction near
        ``1/(N+1)`` rather than re-shuffling everything).
        """
        self._check_membership_frozen("add_shard")
        if shard_id is None:
            index = len(self.shards)
            while f"shard-{index}" in self.shards:
                index += 1
            shard_id = f"shard-{index}"
        self._build_shard(shard_id)
        handoff = self.router.add_shard(shard_id)
        self.events.record("shard_added", shard=shard_id)
        return handoff

    def remove_shard(self, shard_id: str) -> HandoffStats:
        """Decommission a shard and return the key-range handoff it causes.

        Used both for planned decommissions and by the
        :class:`~repro.service.recovery.RecoveryCoordinator` to take a dead
        shard off the ring before re-replicating its key ranges.  For a
        *graceful* decommission that streams the shard's data off first, use
        :meth:`repro.service.rebalance.KeyMigrator.start_remove` instead.
        """
        self._check_membership_frozen("remove_shard")
        # The router validates presence and refuses to drop the last shard
        # before mutating anything, so no duplicate guards are needed here.
        handoff = self.router.remove_shard(shard_id)
        self.decommission_shard(shard_id)
        return handoff

    def decommission_shard(self, shard_id: str) -> None:
        """Retire a shard *instance* that is no longer on the ring.

        The second half of :meth:`remove_shard`, split out so the online
        rebalancer can take a shard off the ring first (routing new traffic
        away) and release the instance only after its data has been streamed
        to the new owners.
        """
        if shard_id in self.router:
            raise ConfigurationError(
                f"shard {shard_id!r} is still on the ring; remove it from the router first"
            )
        clam = self.shards.pop(shard_id)
        self._close_shard(clam)
        self.clock.remove(clam.clock)
        self._errors.pop(shard_id, None)
        self._down.discard(shard_id)
        self._hints.pop(shard_id, None)
        self.events.record("shard_removed", shard=shard_id)

    def _check_membership_frozen(self, operation: str) -> None:
        """Reject direct membership changes while a migration is in flight.

        One membership change at a time: the migrator's arc bookkeeping is
        computed against a fixed (old ring, new ring) pair, so a concurrent
        ``add_shard``/``remove_shard`` would silently invalidate it.  The
        migrator itself mutates the ring *before* installing
        :attr:`migration` (and clears it before decommissioning), so its own
        paths pass this check.
        """
        if self.migration is not None:
            raise ConfigurationError(
                f"{operation} rejected: cluster membership is frozen while a "
                "key migration is in flight (drain or abort it first)"
            )

    def _close_shard(self, clam: CLAM) -> None:
        """Release one shard instance (flush + checkpoint + unmap when
        persistent; no-op otherwise).  The process-per-shard deployment
        overrides this to shut the worker process down instead."""
        if isinstance(clam, DurableCLAM):
            clam.close()

    def close(self) -> None:
        """Cleanly close every shard (flush, checkpoint, unmap when persistent).

        Idempotent and exception-safe: *every* shard's close is attempted even
        when an earlier one raises — a failure on shard 2 of 5 must not leak
        shards 3-5's open file mappings — and the collected failures are
        raised once as a single :class:`~repro.core.errors.ClusterCloseError`.
        Makes ``ClusterService`` usable as a context manager so tests and
        benchmarks on ``storage="persistent"`` never leak file handles.
        """
        failures: List[Tuple[str, Exception]] = []
        for shard_id, clam in self.shards.items():
            try:
                self._close_shard(clam)
            except Exception as error:
                failures.append((shard_id, error))
        if failures:
            raise ClusterCloseError(failures)

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- Reporting ----------------------------------------------------------------------

    def telemetry_snapshot(self, include_buckets: bool = True, tracer=None) -> Dict[str, object]:
        """The standard telemetry envelope for this cluster.

        ``registry`` in the result merges every shard's registry with the
        cluster-level one, ``per_shard`` keeps them separate (the per-shard
        percentile tables), and ``events`` is the always-on event log — so a
        telemetry-disabled cluster still yields a valid envelope with
        ``enabled: false`` and its failure history.  Pass a
        :class:`~repro.telemetry.Tracer` to embed its span trees.
        """
        if self.telemetry is not None:
            self.telemetry.gauge("live_shards").set(len(self.live_shard_ids))
            self.telemetry.gauge("down_shards").set(len(self.down_shard_ids))
        per_shard = self._shard_registries()
        return build_snapshot(
            per_shard=per_shard,
            events=self.events,
            tracer=tracer,
            include_buckets=include_buckets,
            extra_registry=self.telemetry,
        )

    def _shard_registries(self) -> Dict[str, MetricsRegistry]:
        """Per-shard metrics registries for the telemetry envelope.

        In-process shards expose their registry objects directly; the
        process-per-shard deployment overrides this to fetch each worker's
        snapshot over the wire and rebuild mergeable registries from it
        (:meth:`~repro.telemetry.registry.MetricsRegistry.from_snapshot`).
        """
        return {
            shard_id: clam.telemetry
            for shard_id, clam in self.shards.items()
            if clam.telemetry is not None
        }

    def throughput_ops_per_second(self, combined: Optional[Dict[str, float]] = None) -> float:
        """Cluster-wide hash operations per simulated (parallel) second.

        ``combined`` lets callers that already hold a
        :meth:`ClusterStats.combined` snapshot avoid polling the fleet again.
        """
        if combined is None:
            combined = self.stats.combined()
        total_ops = combined.get("lookups", 0.0) + combined.get("inserts", 0.0) + combined.get(
            "deletes", 0.0
        )
        elapsed_ms = self.clock.now_ms
        if elapsed_ms <= 0:
            return 0.0
        return total_ops / (elapsed_ms / 1000.0)

    def describe(self) -> Dict[str, float]:
        """Summary dictionary in the same spirit as :meth:`CLAM.describe`."""
        per_shard = self.stats.per_shard()
        combined = self.stats.combined(per_shard)
        lookups = combined.get("lookups", 0.0)
        inserts = combined.get("inserts", 0.0)
        summary = {
            "shards": float(self.num_shards),
            "live_shards": float(len(self.live_shard_ids)),
            "down_shards": float(len(self.down_shard_ids)),
            "replication_factor": float(self.replication_factor),
            "read_repairs": float(self.read_repairs),
            "lookups": lookups,
            "inserts": inserts,
            "mean_lookup_ms": (
                combined.get("lookup_latency_total_ms", 0.0) / lookups if lookups else 0.0
            ),
            "mean_insert_ms": (
                combined.get("insert_latency_total_ms", 0.0) / inserts if inserts else 0.0
            ),
            "lookup_success_rate": (
                combined.get("lookup_hits", 0.0) / lookups if lookups else 0.0
            ),
            "flushes": combined.get("flushes", 0.0),
            "evictions": combined.get("evictions", 0.0),
            "throughput_ops_per_s": self.throughput_ops_per_second(combined),
            "imbalance_factor": self.stats.imbalance_factor(per_shard),
            "clock_skew_ms": self.clock.skew_ms,
        }
        return summary
