"""Sharded CLAM service layer: routing, batching, clustering, traffic.

This package turns the single-node CLAM data structure into a simulated
key-value *service*: a consistent-hash router places keys on N independent
CLAM shards (each with its own simulated device and clock), a batch executor
amortises dispatch overhead across per-shard sub-batches, a cluster facade
exposes the whole fleet through the familiar single-index interface, and a
closed-loop traffic simulator drives it with M skewed clients.

With ``replication_factor=N`` the cluster survives shard failures: writes
fan out to each key's N-shard preference list, reads fail over (with
read-repair) to surviving replicas, and a
:class:`~repro.service.recovery.RecoveryCoordinator` re-replicates a dead
shard's key ranges onto the survivors along the router's exact handoff arcs.
The cluster also scales *online*: a :class:`KeyMigrator` streams the exact
key-range arcs a membership change moves while traffic continues (double-read
during the move, atomic per-arc cut-over), and an :class:`AutoscalePolicy`
can drive those migrations from live hot-shard and p99 signals.
Faults are injected deterministically at the device layer
(:mod:`repro.flashsim.faults`), either directly or on a request-count
schedule (:class:`FailureEvent`) inside the traffic simulator.

Quick start::

    from repro.service import ClusterService, TrafficSimulator, TrafficSpec

    cluster = ClusterService(num_shards=4, storage="intel-ssd")
    cluster.insert(b"fingerprint-1", b"chunk-address-1")
    assert cluster.lookup(b"fingerprint-1").found

    simulator = TrafficSimulator(cluster, TrafficSpec(num_clients=8, zipf_skew=1.2))
    simulator.warmup()
    report = simulator.run()
    print(report.throughput_ops_per_second, report.hot_shards)

Because :class:`ClusterService` satisfies the same structural
:class:`~repro.workloads.runner.HashIndex` protocol as a single
:class:`~repro.core.clam.CLAM`, every existing driver — the workload runner,
benchmarks and examples — can operate a cluster unchanged.
"""

from repro.service.batch import (
    DEFAULT_DISPATCH_OVERHEAD_MS,
    DEFAULT_ROUTING_COST_MS,
    BatchExecutor,
    BatchResult,
    ShardBatchStats,
)
from repro.service.chaos import CHAOS_FAULTS, ChaosSchedule, ChaosTransport, derive_seed
from repro.service.cluster import ClusterService, ClusterStats
from repro.service.parallel import ParallelBatchExecutor, ParallelClusterService, RemoteShard
from repro.service.rebalance import (
    ArcState,
    AutoscaleConfig,
    AutoscaleDecision,
    AutoscalePolicy,
    KeyMigrator,
    MigrationArc,
    MigrationReport,
    MigrationState,
    changed_arcs,
)
from repro.service.recovery import RecoveryCoordinator, RecoveryReport
from repro.service.router import RING_SPACE, HandoffStats, ShardRouter
from repro.service.simulator import (
    ClientReport,
    FailureEvent,
    TrafficReport,
    TrafficSimulator,
    TrafficSpec,
)

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "ShardBatchStats",
    "DEFAULT_DISPATCH_OVERHEAD_MS",
    "DEFAULT_ROUTING_COST_MS",
    "ClusterService",
    "ClusterStats",
    "ParallelBatchExecutor",
    "ParallelClusterService",
    "RemoteShard",
    "CHAOS_FAULTS",
    "ChaosSchedule",
    "ChaosTransport",
    "derive_seed",
    "ShardRouter",
    "HandoffStats",
    "RING_SPACE",
    "TrafficSimulator",
    "TrafficSpec",
    "TrafficReport",
    "ClientReport",
    "FailureEvent",
    "RecoveryCoordinator",
    "RecoveryReport",
    "KeyMigrator",
    "MigrationState",
    "MigrationArc",
    "MigrationReport",
    "ArcState",
    "changed_arcs",
    "AutoscalePolicy",
    "AutoscaleConfig",
    "AutoscaleDecision",
]
