"""Batched execution of hash operations against a sharded CLAM fleet.

Client-facing services rarely dispatch one index operation at a time: they
collect a batch, route it, and hand each shard its sub-batch in one dispatch.
:class:`BatchExecutor` models exactly that.  Per-operation *results* are
identical to issuing the same operations one by one (grouping by shard
preserves per-key order, and each shard's simulated device is deterministic),
but the *accounting* differs: the fixed dispatch overhead is paid once per
shard sub-batch instead of once per operation, and the batch completes when
the slowest shard finishes — shards run in parallel on independent clocks.

The executor works against any mapping of shard id to an object satisfying
:class:`repro.workloads.runner.HashIndex`; in practice that is the
:class:`~repro.service.cluster.ClusterService`'s fleet of CLAMs.  The
multi-branch WAN optimizer is the canonical client: each branch office's
compression engine sends one ``lookup_batch`` and one ``insert_batch`` round
trip per object (:meth:`ClusterService.lookup_batch` builds the operation
lists), so a whole object's fingerprints cost one dispatch per touched shard
rather than one per chunk, and the branch's wait is the
:attr:`BatchResult.makespan_ms` across parallel shards rather than the
serial sum.

Two operating modes
-------------------
*Stand-alone* (no ``is_live`` hook): the original single-copy behaviour —
each operation goes to the ring owner, a router/instance desync raises
:class:`~repro.core.errors.ConfigurationError`, and device failures
propagate to the caller.

*Managed* (``is_live``/``on_shard_error`` wired up by a
:class:`~repro.service.cluster.ClusterService`): replication-aware and
failure-tolerant.  Writes fan out to every live shard of the key's
preference list, lookups go to the first live replica, a shard that raises
:class:`~repro.core.errors.DeviceFailedError` mid-batch is reported through
``on_shard_error`` and its unfinished operations are re-dispatched to the
next live replica; only an operation with no live replica left raises the
typed :class:`~repro.core.errors.ShardUnavailableError` (never a bare
``KeyError``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.errors import (
    ConfigurationError,
    DeviceFailedError,
    ShardUnavailableError,
)
from repro.core.hashing import KeyLike, canonical_key
from repro.service.router import ShardRouter
from repro.telemetry import trace as _trace
from repro.workloads.runner import apply_operation
from repro.workloads.workload import Operation, OpKind

#: Simulated cost of handing one sub-batch (or one stand-alone operation) to a
#: shard: argument marshalling, queueing, the request/response hop.  Batching
#: amortises this across every operation in the sub-batch.
DEFAULT_DISPATCH_OVERHEAD_MS = 0.02

#: Simulated front-end cost of routing a single key (one ring lookup).
DEFAULT_ROUTING_COST_MS = 0.0002


@dataclass
class ShardBatchStats:
    """What one shard did for one batch."""

    shard_id: str
    operations: int = 0
    lookups: int = 0
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    lookup_hits: int = 0
    busy_ms: float = 0.0
    dispatch_ms: float = 0.0
    routing_ms: float = 0.0
    flash_reads: int = 0
    flash_writes: int = 0

    @property
    def total_ms(self) -> float:
        """Completion time for the sub-batch (routing + dispatch + work)."""
        return self.busy_ms + self.dispatch_ms + self.routing_ms


@dataclass
class BatchResult:
    """Outcome of one batch: per-op results plus the latency breakdown."""

    #: Result records in the original submission order (LookupResult,
    #: InsertResult or DeleteResult depending on each operation's kind).
    #: With replication, a write's record comes from its primary replica
    #: (falling back to the first surviving replica if the primary failed).
    results: List[object] = field(default_factory=list)
    per_shard: Dict[str, ShardBatchStats] = field(default_factory=dict)
    #: Time spent routing keys, charged to each owning shard's clock so that
    #: clock-derived durations and makespans share one time base.
    routing_ms: float = 0.0
    #: Dispatch overhead actually paid (once per shard sub-batch dispatched).
    dispatch_ms: float = 0.0
    #: Dispatch overhead the same operations would have paid unbatched.
    dispatch_ms_unbatched: float = 0.0
    #: Total shard-side work (sum over shards), excluding routing/dispatch.
    busy_ms: float = 0.0
    #: Batch completion time: the slowest shard's sub-batch, all costs in.
    makespan_ms: float = 0.0
    #: Shards that raised DeviceFailedError while executing this batch.
    failed_shards: List[str] = field(default_factory=list)
    #: Operations re-dispatched to another replica after a shard failure.
    retried_operations: int = 0

    @property
    def operations(self) -> int:
        """Number of operations in the batch."""
        return len(self.results)

    @property
    def shards_touched(self) -> int:
        """Number of distinct shards this batch dispatched to."""
        return len(self.per_shard)

    @property
    def dispatch_saved_ms(self) -> float:
        """Dispatch overhead amortised away relative to unbatched execution."""
        return self.dispatch_ms_unbatched - self.dispatch_ms


@dataclass
class _Slot:
    """One (operation, replica) execution unit inside a batch."""

    index: int
    operation: Operation
    key: KeyLike
    primary: bool
    attempted: Set[str] = field(default_factory=set)


class BatchExecutor:
    """Routes a batch by shard and executes per-shard sub-batches.

    Parameters
    ----------
    router:
        The consistent-hash router deciding key placement.
    shards:
        Mapping of shard id to index instance.  Looked up live on every batch,
        so shards added to or removed from the mapping (and the router) after
        construction are picked up automatically.
    dispatch_overhead_ms / routing_cost_ms:
        Fixed simulated costs; see module docstring.
    hash_once:
        When True (default) each operation's key is canonicalised into one
        :class:`~repro.core.hashing.KeyDigest` that serves both the routing
        hash and the shard-side operation, so a batched key's bytes are
        hashed at most once end to end.  Disable to reproduce the original
        route-then-rehash behaviour (measurement ablation).
    replication_factor:
        Copies of every write, placed on the key's preference list.
    is_live / on_shard_error / on_missed_write:
        The cluster's live view, failure-reporting and hinted-handoff hooks;
        providing ``is_live`` switches the executor into managed mode (see
        module docstring).  ``on_missed_write(shard_id, key)`` fires for
        every write copy a down or failing replica did not receive.
    targets_for:
        Optional replica-placement override: ``targets_for(key, kind)``
        returns the shards one operation must consult instead of the router's
        raw preference list.  The cluster wires this to its migration-aware
        placement (:meth:`ClusterService._op_replicas`), so an in-flight
        rebalance can double-read and dual-write the arcs being moved while
        batches keep flowing; without it the executor routes exactly as
        before.
    """

    def __init__(
        self,
        router: ShardRouter,
        shards: Mapping[str, object],
        dispatch_overhead_ms: float = DEFAULT_DISPATCH_OVERHEAD_MS,
        routing_cost_ms: float = DEFAULT_ROUTING_COST_MS,
        hash_once: bool = True,
        replication_factor: int = 1,
        is_live: Optional[Callable[[str], bool]] = None,
        on_shard_error: Optional[Callable[[str], bool]] = None,
        on_missed_write: Optional[Callable[[str, KeyLike], None]] = None,
        targets_for: Optional[Callable[[KeyLike, OpKind], Tuple[str, ...]]] = None,
    ) -> None:
        if dispatch_overhead_ms < 0 or routing_cost_ms < 0:
            raise ConfigurationError("overhead costs must be non-negative")
        if replication_factor < 1:
            raise ConfigurationError("replication_factor must be at least 1")
        self.router = router
        self.shards = shards
        self.dispatch_overhead_ms = dispatch_overhead_ms
        self.routing_cost_ms = routing_cost_ms
        self.hash_once = hash_once
        self.replication_factor = replication_factor
        self._is_live = is_live
        self._on_shard_error = on_shard_error
        self._on_missed_write = on_missed_write
        self._targets_for = targets_for

    @property
    def managed(self) -> bool:
        """Whether a cluster's live view drives failure handling."""
        return self._is_live is not None

    def _notify_failure(self, shard_id: str) -> None:
        if self._on_shard_error is not None:
            self._on_shard_error(shard_id)

    def _targets(self, key: KeyLike, kind: OpKind, attempted: Set[str]) -> Tuple[str, ...]:
        """Replica shards one operation dispatches to.

        Stand-alone mode routes to the raw preference list (a missing
        instance is a configuration bug, caught at sub-batch time).  Managed
        mode filters through the cluster's live view — the fix for the old
        behaviour where a shard removed mid-flight surfaced as a bare
        ``KeyError`` — and raises :class:`ShardUnavailableError` when nothing
        is left.
        """
        if self._targets_for is not None:
            replicas = self._targets_for(key, kind)
        else:
            replicas = self.router.preference_list(key, self.replication_factor)
        if self._is_live is not None:
            live = tuple(s for s in replicas if s not in attempted and self._is_live(s))
            if kind is not OpKind.LOOKUP and self._on_missed_write is not None:
                for shard_id in replicas:
                    if shard_id not in live and shard_id not in attempted:
                        self._on_missed_write(shard_id, key)
            if not live:
                raise ShardUnavailableError(
                    f"no live replica remains for a {kind.value} operation "
                    f"(replication_factor={self.replication_factor})"
                )
            replicas = live
        if kind is OpKind.LOOKUP:
            return replicas[:1]
        return replicas

    def execute(self, operations: Iterable[Operation]) -> BatchResult:
        """Execute ``operations`` as one batch and return the breakdown."""
        submitted = list(operations)
        batch = BatchResult(results=[None] * len(submitted))
        if not submitted:
            return batch

        # Route the whole batch up front, preserving submission order within
        # each shard (same key -> same replica set, so per-key order is
        # preserved).  The key digest computed for routing rides along with
        # the operation so the shard reuses it instead of re-hashing.
        hash_once = self.hash_once
        try:
            groups: Dict[str, List[_Slot]] = {}
            for index, operation in enumerate(submitted):
                key = canonical_key(operation.key, hash_once)
                for role, shard_id in enumerate(self._targets(key, operation.kind, set())):
                    groups.setdefault(shard_id, []).append(
                        _Slot(index=index, operation=operation, key=key, primary=role == 0)
                    )

            while groups:
                groups = self._reroute(self._dispatch_round(groups, batch), batch)
        except ShardUnavailableError as error:
            # Operations the batch already applied are on shards; hand their
            # result records to the caller (the cluster's key catalog must
            # learn about applied writes even when the batch fails).
            error.partial_results = batch.results
            raise

        batch.dispatch_ms_unbatched = self.dispatch_overhead_ms * len(submitted)
        batch.makespan_ms = max(
            (stats.total_ms for stats in batch.per_shard.values()), default=0.0
        )
        return batch

    def _dispatch_round(
        self, groups: Dict[str, List[_Slot]], batch: BatchResult
    ) -> List[_Slot]:
        """Execute one round of per-shard sub-batches; returns the failed slots.

        The base implementation runs sub-batches serially on the caller's
        thread — the deterministic single-process path.  The process-per-shard
        deployment overrides exactly this hook with a scatter/gather over
        worker sockets (:class:`repro.service.parallel.ParallelBatchExecutor`)
        while reusing all the routing, retry and accounting machinery around
        it, which is what keeps the two modes' results bit-identical.
        """
        failed_slots: List[_Slot] = []
        for shard_id, slots in groups.items():
            stats, leftover = self._execute_sub_batch(shard_id, slots, batch.results)
            if stats is not None:
                self._merge_shard_stats(batch, stats)
            if leftover:
                if shard_id not in batch.failed_shards:
                    batch.failed_shards.append(shard_id)
                failed_slots.extend(leftover)
        return failed_slots

    def _reroute(self, failed_slots: List[_Slot], batch: BatchResult) -> Dict[str, List[_Slot]]:
        """Re-dispatch the operations a failed shard left behind.

        A write whose record was already produced by a surviving replica
        needs no retry (the lost copy is the recovery coordinator's job, not
        the batch's); everything else moves to the next live replica that has
        not been attempted yet.
        """
        groups: Dict[str, List[_Slot]] = {}
        for slot in sorted(failed_slots, key=lambda s: s.index):
            if (
                slot.operation.kind is not OpKind.LOOKUP
                and batch.results[slot.index] is not None
            ):
                continue
            targets = self._targets(slot.key, slot.operation.kind, slot.attempted)
            batch.retried_operations += 1
            slot.primary = True
            groups.setdefault(targets[0], []).append(slot)
        return groups

    def _merge_shard_stats(self, batch: BatchResult, stats: ShardBatchStats) -> None:
        existing = batch.per_shard.get(stats.shard_id)
        if existing is None:
            batch.per_shard[stats.shard_id] = stats
        else:
            for field_name in (
                "operations",
                "lookups",
                "inserts",
                "updates",
                "deletes",
                "lookup_hits",
                "busy_ms",
                "dispatch_ms",
                "routing_ms",
                "flash_reads",
                "flash_writes",
            ):
                merged = getattr(existing, field_name) + getattr(stats, field_name)
                setattr(existing, field_name, merged)
        batch.busy_ms += stats.busy_ms
        batch.dispatch_ms += stats.dispatch_ms
        batch.routing_ms += stats.routing_ms

    def _execute_sub_batch(
        self,
        shard_id: str,
        slots: List[_Slot],
        results: List[object],
    ) -> Tuple[Optional[ShardBatchStats], List[_Slot]]:
        """Run one shard's slots; returns (stats, slots left behind by a failure)."""
        try:
            shard = self.shards[shard_id]
        except KeyError:
            if self._is_live is None:
                raise ConfigurationError(
                    f"router targets shard {shard_id!r} but no such instance exists"
                ) from None
            # Managed mode: the instance vanished between routing and
            # execution (removed mid-flight) — report it and let the live
            # view re-route the whole group.
            self._notify_failure(shard_id)
            for slot in slots:
                slot.attempted.add(shard_id)
            return None, slots
        stats = ShardBatchStats(shard_id=shard_id)
        stats.dispatch_ms = self.dispatch_overhead_ms
        stats.routing_ms = self.routing_cost_ms * len(slots)
        clock = getattr(shard, "clock", None)
        if clock is not None:
            # Charge routing + dispatch to the owning shard's clock so that
            # every duration in the system derives from the same time line.
            clock.advance(stats.dispatch_ms + stats.routing_ms)
        tracer = _trace.ACTIVE
        span = (
            tracer.begin("shard.batch", clock, shard=shard_id, operations=len(slots))
            if tracer is not None
            else None
        )
        started_ms = clock.now_ms if clock is not None else 0.0
        fallback_busy_ms = 0.0
        leftover: List[_Slot] = []
        completed = False
        try:
            for position, slot in enumerate(slots):
                slot.attempted.add(shard_id)
                try:
                    result = apply_operation(shard, slot.operation, key=slot.key)
                except DeviceFailedError:
                    if self._is_live is None:
                        raise
                    self._notify_failure(shard_id)
                    leftover = slots[position:]
                    for pending in leftover:
                        pending.attempted.add(shard_id)
                        # This shard's copy of each unfinished write is lost until
                        # a heal replays it or recovery re-replicates the key.
                        if (
                            pending.operation.kind is not OpKind.LOOKUP
                            and self._on_missed_write is not None
                        ):
                            self._on_missed_write(shard_id, pending.key)
                    break
                if slot.primary:
                    results[slot.index] = result
                elif results[slot.index] is None:
                    # A replica's record stands in for a failed primary's.
                    results[slot.index] = result
                stats.operations += 1
                _count(stats, slot.operation.kind, result)
                fallback_busy_ms += getattr(result, "latency_ms", 0.0)
            completed = True
        finally:
            # The span must close on *every* exit — a DeviceFailedError that
            # propagates in stand-alone mode, but also any unexpected
            # exception from a shard operation; leaving it open would
            # mis-parent (or, before Tracer.end grew its stack guard, orphan)
            # every span the next operation opens.
            if clock is not None:
                stats.busy_ms = clock.now_ms - started_ms
            else:
                stats.busy_ms = fallback_busy_ms
            if span is not None:
                if leftover or not completed:
                    span.attributes["failed"] = True
                if leftover:
                    span.attributes["operations_completed"] = stats.operations
                tracer.end(span, clock)
        return stats, leftover


def _count(stats: ShardBatchStats, kind: OpKind, result) -> None:
    if kind is OpKind.LOOKUP:
        stats.lookups += 1
        if result.found:
            stats.lookup_hits += 1
    elif kind is OpKind.INSERT:
        stats.inserts += 1
    elif kind is OpKind.UPDATE:
        stats.updates += 1
    elif kind is OpKind.DELETE:
        stats.deletes += 1
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown operation kind {kind!r}")
    stats.flash_reads += getattr(result, "flash_reads", 0)
    stats.flash_writes += getattr(result, "flash_writes", 0)
