"""Batched execution of hash operations against a sharded CLAM fleet.

Client-facing services rarely dispatch one index operation at a time: they
collect a batch, route it, and hand each shard its sub-batch in one dispatch.
:class:`BatchExecutor` models exactly that.  Per-operation *results* are
identical to issuing the same operations one by one (grouping by shard
preserves per-key order, and each shard's simulated device is deterministic),
but the *accounting* differs: the fixed dispatch overhead is paid once per
shard sub-batch instead of once per operation, and the batch completes when
the slowest shard finishes — shards run in parallel on independent clocks.

The executor works against any mapping of shard id to an object satisfying
:class:`repro.workloads.runner.HashIndex`; in practice that is the
:class:`~repro.service.cluster.ClusterService`'s fleet of CLAMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.core.errors import ConfigurationError
from repro.core.hashing import KeyLike, canonical_key
from repro.service.router import ShardRouter
from repro.workloads.runner import apply_operation
from repro.workloads.workload import Operation, OpKind

#: Simulated cost of handing one sub-batch (or one stand-alone operation) to a
#: shard: argument marshalling, queueing, the request/response hop.  Batching
#: amortises this across every operation in the sub-batch.
DEFAULT_DISPATCH_OVERHEAD_MS = 0.02

#: Simulated front-end cost of routing a single key (one ring lookup).
DEFAULT_ROUTING_COST_MS = 0.0002


@dataclass
class ShardBatchStats:
    """What one shard did for one batch."""

    shard_id: str
    operations: int = 0
    lookups: int = 0
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    lookup_hits: int = 0
    busy_ms: float = 0.0
    dispatch_ms: float = 0.0
    routing_ms: float = 0.0
    flash_reads: int = 0
    flash_writes: int = 0

    @property
    def total_ms(self) -> float:
        """Completion time for the sub-batch (routing + dispatch + work)."""
        return self.busy_ms + self.dispatch_ms + self.routing_ms


@dataclass
class BatchResult:
    """Outcome of one batch: per-op results plus the latency breakdown."""

    #: Result records in the original submission order (LookupResult,
    #: InsertResult or DeleteResult depending on each operation's kind).
    results: List[object] = field(default_factory=list)
    per_shard: Dict[str, ShardBatchStats] = field(default_factory=dict)
    #: Time spent routing keys, charged to each owning shard's clock so that
    #: clock-derived durations and makespans share one time base.
    routing_ms: float = 0.0
    #: Dispatch overhead actually paid (once per shard touched).
    dispatch_ms: float = 0.0
    #: Dispatch overhead the same operations would have paid unbatched.
    dispatch_ms_unbatched: float = 0.0
    #: Total shard-side work (sum over shards), excluding routing/dispatch.
    busy_ms: float = 0.0
    #: Batch completion time: the slowest shard's sub-batch, all costs in.
    makespan_ms: float = 0.0

    @property
    def operations(self) -> int:
        """Number of operations in the batch."""
        return len(self.results)

    @property
    def shards_touched(self) -> int:
        """Number of distinct shards this batch dispatched to."""
        return len(self.per_shard)

    @property
    def dispatch_saved_ms(self) -> float:
        """Dispatch overhead amortised away relative to unbatched execution."""
        return self.dispatch_ms_unbatched - self.dispatch_ms


class BatchExecutor:
    """Routes a batch by shard and executes per-shard sub-batches.

    Parameters
    ----------
    router:
        The consistent-hash router deciding key placement.
    shards:
        Mapping of shard id to index instance.  Looked up live on every batch,
        so shards added to or removed from the mapping (and the router) after
        construction are picked up automatically.
    dispatch_overhead_ms / routing_cost_ms:
        Fixed simulated costs; see module docstring.
    hash_once:
        When True (default) each operation's key is canonicalised into one
        :class:`~repro.core.hashing.KeyDigest` that serves both the routing
        hash and the shard-side operation, so a batched key's bytes are
        hashed at most once end to end.  Disable to reproduce the original
        route-then-rehash behaviour (measurement ablation).
    """

    def __init__(
        self,
        router: ShardRouter,
        shards: Mapping[str, object],
        dispatch_overhead_ms: float = DEFAULT_DISPATCH_OVERHEAD_MS,
        routing_cost_ms: float = DEFAULT_ROUTING_COST_MS,
        hash_once: bool = True,
    ) -> None:
        if dispatch_overhead_ms < 0 or routing_cost_ms < 0:
            raise ConfigurationError("overhead costs must be non-negative")
        self.router = router
        self.shards = shards
        self.dispatch_overhead_ms = dispatch_overhead_ms
        self.routing_cost_ms = routing_cost_ms
        self.hash_once = hash_once

    def execute(self, operations: Iterable[Operation]) -> BatchResult:
        """Execute ``operations`` as one batch and return the breakdown."""
        submitted = list(operations)
        batch = BatchResult(results=[None] * len(submitted))
        if not submitted:
            return batch

        # Route the whole batch up front, preserving submission order within
        # each shard (same key -> same shard, so per-key order is preserved).
        # The key digest computed for routing rides along with the operation
        # so the shard reuses it instead of re-hashing the key bytes.
        hash_once = self.hash_once
        groups: Dict[str, List[Tuple[int, Operation, KeyLike]]] = {}
        for index, operation in enumerate(submitted):
            key = canonical_key(operation.key, hash_once)
            shard_id = self.router.route(key)
            groups.setdefault(shard_id, []).append((index, operation, key))

        for shard_id, group in groups.items():
            stats = self._execute_sub_batch(shard_id, group, batch.results)
            batch.per_shard[shard_id] = stats
            batch.busy_ms += stats.busy_ms
            batch.dispatch_ms += stats.dispatch_ms
            batch.routing_ms += stats.routing_ms
        batch.dispatch_ms_unbatched = self.dispatch_overhead_ms * len(submitted)
        batch.makespan_ms = max(stats.total_ms for stats in batch.per_shard.values())
        return batch

    def _execute_sub_batch(
        self,
        shard_id: str,
        group: List[Tuple[int, Operation, KeyLike]],
        results: List[object],
    ) -> ShardBatchStats:
        try:
            shard = self.shards[shard_id]
        except KeyError:
            raise ConfigurationError(
                f"router targets shard {shard_id!r} but no such instance exists"
            ) from None
        stats = ShardBatchStats(shard_id=shard_id, operations=len(group))
        stats.dispatch_ms = self.dispatch_overhead_ms
        stats.routing_ms = self.routing_cost_ms * len(group)
        clock = getattr(shard, "clock", None)
        if clock is not None:
            # Charge routing + dispatch to the owning shard's clock so that
            # every duration in the system derives from the same time line.
            clock.advance(stats.dispatch_ms + stats.routing_ms)
        started_ms = clock.now_ms if clock is not None else 0.0
        for index, operation, key in group:
            result = apply_operation(shard, operation, key=key)
            results[index] = result
            _count(stats, operation.kind, result)
        if clock is not None:
            stats.busy_ms = clock.now_ms - started_ms
        else:
            stats.busy_ms = sum(
                getattr(results[index], "latency_ms", 0.0) for index, _, _ in group
            )
        return stats


def _count(stats: ShardBatchStats, kind: OpKind, result) -> None:
    if kind is OpKind.LOOKUP:
        stats.lookups += 1
        if result.found:
            stats.lookup_hits += 1
    elif kind is OpKind.INSERT:
        stats.inserts += 1
    elif kind is OpKind.UPDATE:
        stats.updates += 1
    elif kind is OpKind.DELETE:
        stats.deletes += 1
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown operation kind {kind!r}")
    stats.flash_reads += getattr(result, "flash_reads", 0)
    stats.flash_writes += getattr(result, "flash_writes", 0)
