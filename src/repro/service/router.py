"""Consistent-hash routing of keys onto CLAM shards.

A :class:`ShardRouter` places ``virtual_nodes`` points per shard on a 64-bit
hash ring (the same FNV-1a/fmix64 construction the rest of the library uses,
see :mod:`repro.core.hashing`) and routes each key to the shard owning the
first ring point at or after the key's hash.  Virtual nodes smooth out the
ownership imbalance inherent to a handful of physical shards.

Adding or removing a shard produces a :class:`HandoffStats` record describing
*exactly* which fraction of the key space changed owner — computed from the
ring arcs themselves rather than by sampling keys — so rebalancing
experiments can report the volume of data a migration would move.  Consistent
hashing's monotonicity guarantee shows up directly in those stats: on
``add_shard`` every moved arc is gained by the new shard; on ``remove_shard``
every moved arc is lost by the departing one.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.hashing import RING_SEED, KeyLike, hash_key, to_key_bytes

#: Size of the hash ring (64-bit hash space).
RING_SPACE = 1 << 64

#: Seed separating ring-point hashing from every other hash use in the repo
#: (canonically defined in :mod:`repro.core.hashing`).
_RING_SEED = RING_SEED


@dataclass(frozen=True)
class HandoffStats:
    """Exact key-space ownership change caused by one ring mutation.

    Fractions are of the whole key space (0..1).  ``gained_fraction`` and
    ``lost_fraction`` map shard id to the fraction of the space that shard
    gained/lost; the two sides always balance (sum gained == sum lost ==
    ``moved_fraction``).
    """

    added: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()
    moved_fraction: float = 0.0
    gained_fraction: Dict[str, float] = field(default_factory=dict)
    lost_fraction: Dict[str, float] = field(default_factory=dict)

    def estimated_keys_moved(self, total_keys: int) -> int:
        """Keys a migration would move out of ``total_keys`` uniformly hashed keys."""
        return round(self.moved_fraction * total_keys)


def _ring_point(shard_id: str, vnode: int) -> int:
    return hash_key(to_key_bytes(shard_id) + b"#%d" % vnode, seed=_RING_SEED)


class ShardRouter:
    """Deterministic consistent-hash router over named shards.

    Parameters
    ----------
    shard_ids:
        Initial shard names (order-insensitive; routing depends only on the
        set of names and ``virtual_nodes``).
    virtual_nodes:
        Ring points per shard.  More virtual nodes give a more uniform split
        at the cost of a marginally larger ring (routing stays O(log n)).
    """

    def __init__(self, shard_ids: Iterable[str], virtual_nodes: int = 64) -> None:
        if virtual_nodes <= 0:
            raise ConfigurationError("virtual_nodes must be positive")
        self.virtual_nodes = virtual_nodes
        self._owners: Dict[int, str] = {}
        self._points: List[int] = []
        self._shards: List[str] = []
        initial = list(shard_ids)
        if not initial:
            raise ConfigurationError("ShardRouter needs at least one shard")
        if len(set(initial)) != len(initial):
            raise ConfigurationError("shard ids must be unique")
        for shard_id in initial:
            self._place_shard(shard_id)
        self._rebuild_index()

    # -- Ring maintenance ---------------------------------------------------------------

    def _place_shard(self, shard_id: str) -> None:
        self._shards.append(shard_id)
        for vnode in range(self.virtual_nodes):
            point = _ring_point(shard_id, vnode)
            incumbent = self._owners.get(point)
            # Hash collisions between 64-bit ring points are vanishingly rare;
            # break ties deterministically so routing never depends on
            # insertion order.
            if incumbent is None or shard_id < incumbent:
                self._owners[point] = shard_id

    def _rebuild_index(self) -> None:
        self._points = sorted(self._owners)

    def _rebuild_owners(self) -> None:
        self._owners = {}
        shards, self._shards = self._shards, []
        for shard_id in shards:
            self._place_shard(shard_id)
        self._rebuild_index()

    # -- Introspection ------------------------------------------------------------------

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        """Current shard names, sorted."""
        return tuple(sorted(self._shards))

    def boundary_points(self) -> Tuple[int, ...]:
        """Sorted ring points.  Routing — and therefore every preference
        list — is constant on each arc between consecutive points, which is
        what lets the rebalancing layer compute *exact* migration arcs by
        segmenting the ring at the union of two rings' boundary points."""
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def ownership_fractions(self) -> Dict[str, float]:
        """Exact fraction of the key space each shard owns (sums to 1)."""
        fractions: Dict[str, float] = {shard_id: 0.0 for shard_id in self._shards}
        for start, end, owner in self._arcs():
            fractions[owner] += ((end - start) % RING_SPACE or RING_SPACE) / RING_SPACE
        return fractions

    def _arcs(self) -> List[Tuple[int, int, str]]:
        """Ring arcs as (start_exclusive, end_inclusive, owner) triples."""
        if not self._points:
            return []
        arcs = []
        previous = self._points[-1]
        for point in self._points:
            arcs.append((previous, point, self._owners[point]))
            previous = point
        return arcs

    # -- Routing ------------------------------------------------------------------------

    def route(self, key: KeyLike) -> str:
        """Shard owning ``key``: first ring point at or after the key's hash.

        Digest-aware: routing a :class:`~repro.core.hashing.KeyDigest` reuses
        its memoised ring digest, so the shard that then executes the
        operation never re-hashes the key bytes the router already hashed.
        """
        position = bisect_left(self._points, hash_key(key, seed=RING_SEED))
        if position == len(self._points):
            position = 0
        return self._owners[self._points[position]]

    def route_many(self, keys: Iterable[KeyLike]) -> List[str]:
        """Shard owner for each key, in order."""
        return [self.route(key) for key in keys]

    def preference_list(self, key: KeyLike, n: int) -> Tuple[str, ...]:
        """First ``n`` distinct shards on the ring at or after ``key``'s hash.

        The replica placement rule of the service layer: a key with
        replication factor N lives on ``preference_list(key, N)``.  Entry 0 is
        always :meth:`route`'s owner, and the list is a *prefix-stable chain*:
        removing one shard from the ring deletes that shard from the list and
        shifts the next distinct successor in — every other entry keeps its
        position (the property :class:`~repro.service.recovery`'s exact
        handoff reasoning relies on).

        ``n`` is clamped to the number of shards, so a 2-shard ring answers a
        request for 3 replicas with both shards.
        """
        return self.preference_at(hash_key(key, seed=RING_SEED), n)

    def preference_at(self, position: int, n: int) -> Tuple[str, ...]:
        """First ``n`` distinct shards on the ring at or after ``position``.

        The ring-position form of :meth:`preference_list` (which hashes a key
        and delegates here).  Because routing is piecewise constant between
        ring points, calling this at an arc's inclusive end point yields the
        preference list shared by *every* key hashing into that arc — the
        exactness the rebalancing layer's migration-arc computation relies
        on (see :func:`repro.service.rebalance.changed_arcs`).
        """
        if n <= 0:
            raise ConfigurationError("preference list size must be positive")
        limit = min(n, len(self._shards))
        index = bisect_left(self._points, position)
        if index == len(self._points):
            index = 0
        preference: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            owner = self._owners[self._points[(index + offset) % len(self._points)]]
            if owner not in seen:
                seen.add(owner)
                preference.append(owner)
                if len(preference) == limit:
                    break
        return tuple(preference)

    # -- Membership changes -------------------------------------------------------------

    def add_shard(self, shard_id: str) -> HandoffStats:
        """Add a shard and report the exact ownership handoff it causes."""
        if shard_id in self._shards:
            raise ConfigurationError(f"shard {shard_id!r} already present")
        before = self._arcs()
        self._place_shard(shard_id)
        self._rebuild_index()
        return self._diff(before, added=(shard_id,))

    def remove_shard(self, shard_id: str) -> HandoffStats:
        """Remove a shard and report the exact ownership handoff it causes."""
        if shard_id not in self._shards:
            raise ConfigurationError(f"shard {shard_id!r} not present")
        if len(self._shards) == 1:
            raise ConfigurationError("cannot remove the last shard")
        before = self._arcs()
        self._shards.remove(shard_id)
        self._rebuild_owners()
        return self._diff(before, removed=(shard_id,))

    def _diff(
        self,
        before: Sequence[Tuple[int, int, str]],
        added: Tuple[str, ...] = (),
        removed: Tuple[str, ...] = (),
    ) -> HandoffStats:
        """Exact ownership diff between a previous arc set and the current ring."""

        def owner_at(arcs: Sequence[Tuple[int, int, str]], ends: List[int], point: int) -> str:
            # Arcs are (start_exclusive, end_inclusive, owner) with ends sorted;
            # the owner of `point` is the arc whose inclusive end is the first
            # ring point >= point.
            position = bisect_left(ends, point)
            if position == len(ends):
                position = 0
            return arcs[position][2]

        after = self._arcs()
        ends_before = [arc[1] for arc in before]
        ends_after = [arc[1] for arc in after]
        boundaries = sorted({arc[1] for arc in before} | {arc[1] for arc in after})
        moved = 0
        gained: Dict[str, int] = {}
        lost: Dict[str, int] = {}
        previous = boundaries[-1]
        for point in boundaries:
            length = (point - previous) % RING_SPACE or RING_SPACE
            previous = point
            old_owner = owner_at(before, ends_before, point)
            new_owner = owner_at(after, ends_after, point)
            if old_owner == new_owner:
                continue
            moved += length
            gained[new_owner] = gained.get(new_owner, 0) + length
            lost[old_owner] = lost.get(old_owner, 0) + length
        return HandoffStats(
            added=added,
            removed=removed,
            moved_fraction=moved / RING_SPACE,
            gained_fraction={s: n / RING_SPACE for s, n in gained.items()},
            lost_fraction={s: n / RING_SPACE for s, n in lost.items()},
        )
