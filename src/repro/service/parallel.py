"""Process-per-shard deployment of the cluster service.

Everything else in this repository runs in one Python thread over simulated
clocks — correct and deterministic, but capped at one core no matter how many
shards the cluster has.  :class:`ParallelClusterService` is the escape hatch:
each shard's CLAM (or :class:`~repro.core.recovery.DurableCLAM` when
``storage="persistent"``) runs in its **own worker process** behind the
length-prefixed binary protocol of :mod:`repro.service.wire`, and the batch
executor's per-shard fanout becomes a true scatter/gather — every worker
chews on its sub-batch concurrently while the parent waits.

The bit-identical results contract
----------------------------------
The in-process :class:`~repro.service.cluster.ClusterService` stays the
default deterministic test path.  The parallel deployment reuses its exact
routing, replication, hint and retry machinery — only the innermost dispatch
hop (:meth:`~repro.service.batch.BatchExecutor._dispatch_round`) is replaced
— and each worker runs the same deterministic CLAM on the same kind of
private :class:`~repro.flashsim.clock.SimulationClock`, advanced by exactly
the amounts the in-process executor would have advanced it (the parent
mirrors each worker clock and ships accrued advances inside batch frames).
Operation results, per-shard counters and simulated clocks are therefore
**bit-identical** between the two modes; ``tests/test_parallel_cluster.py``
enforces the contract and ``benchmarks/bench_parallel_cluster.py`` ratchets
it in CI.

Failure model
-------------
A worker that dies (killed, OOM, crashed interpreter) surfaces as
:class:`~repro.core.errors.WorkerDiedError` — a
:class:`~repro.core.errors.DeviceFailedError` subclass — at the next frame,
so every existing layer treats it like a crash-stopped device: the batch
executor fails the sub-batch over to the next live replica, the cluster's
error counters mark the shard down, missed writes become hinted handoffs,
and with ``replication_factor >= 2`` no acknowledged write is lost.  The
supervisor half (:meth:`ParallelClusterService.check_workers` /
:meth:`~ParallelClusterService.restart_worker`) detects dead workers, feeds
them into that same health machinery and respawns them; a persistent shard's
replacement worker reopens the backing file and runs CLAM crash recovery.

Workers are forked, not spawned: sockets, configs and eviction policies are
inherited instead of pickled, and a fork start is ~10x cheaper.  This is a
POSIX-only deployment mode — the deterministic in-process cluster remains
the portable default.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.clam import CLAM
from repro.core.config import CLAMConfig
from repro.core.errors import (
    BufferHashError,
    ConfigurationError,
    DeviceFailedError,
    WireProtocolError,
    WorkerDiedError,
    WorkerStalledError,
)
from repro.core.recovery import CrashRecoveryReport, DurableCLAM
from repro.flashsim.clock import SimulationClock
from repro.service import wire
from repro.service.batch import BatchExecutor, BatchResult, ShardBatchStats, _count, _Slot
from repro.service.chaos import ChaosSchedule, ChaosTransport, derive_seed
from repro.service.cluster import ClusterService
from repro.telemetry import trace as _trace
from repro.telemetry.registry import MetricsRegistry
from repro.workloads.runner import apply_operation
from repro.workloads.workload import Operation, OpKind

__all__ = [
    "DEFAULT_REQUEST_DEADLINE_MS",
    "DEFAULT_RETRY_BACKOFF_CAP_MS",
    "DEFAULT_RETRY_BACKOFF_MS",
    "DEFAULT_RETRY_LIMIT",
    "ParallelBatchExecutor",
    "ParallelClusterService",
    "RemoteShard",
]

#: Per-request deadline: how long the parent waits for one worker response
#: before treating the attempt as stalled.  Generous — healthy workers on a
#: socketpair answer in microseconds, so this only fires for genuine hangs.
DEFAULT_REQUEST_DEADLINE_MS = 30_000.0

#: Bounded idempotent retries after a timed-out or corrupted response (the
#: request is resent with the *same* sequence number, so a late answer to an
#: earlier attempt is recognised and discarded, never mis-matched).
DEFAULT_RETRY_LIMIT = 2

#: Exponential backoff between retries, capped so a retry burst under chaos
#: stays well inside one deadline.
DEFAULT_RETRY_BACKOFF_MS = 5.0
DEFAULT_RETRY_BACKOFF_CAP_MS = 50.0

#: Worker exit codes (beyond 0 = clean and the usual -signal values):
#: a desynchronised wire stream, and an unexpected socket error.
WORKER_EXIT_DESYNC = 2
WORKER_EXIT_SOCKET_ERROR = 3


class _MirrorClock:
    """The parent's mirror of one worker's :class:`SimulationClock`.

    The in-process executor charges dispatch/routing overhead to the shard's
    clock *before* the shard runs; in process mode the shard's real clock
    lives in the worker, so the parent accrues those advances here as
    *pending* milliseconds, ships them inside the next batch frame (the
    worker applies them before executing) and folds each worker response's
    clock reading back in.  ``now_ms`` therefore tracks the worker clock
    exactly at every frame boundary, which is what keeps the cluster's
    :class:`~repro.flashsim.clock.ClockEnsemble` readings bit-identical to
    the in-process deployment's.
    """

    __slots__ = ("_now_ms", "_pending_ms")

    def __init__(self) -> None:
        self._now_ms = 0.0
        self._pending_ms = 0.0

    @property
    def now_ms(self) -> float:
        return self._now_ms + self._pending_ms

    @property
    def now_s(self) -> float:
        return self.now_ms / 1000.0

    def advance(self, delta_ms: float) -> float:
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock by negative amount {delta_ms!r}")
        self._pending_ms += delta_ms
        return self.now_ms

    def consume_pending_ms(self) -> float:
        """Pending advances to ship with the next frame (folded into now)."""
        pending = self._pending_ms
        self._now_ms += pending
        self._pending_ms = 0.0
        return pending

    def sync(self, worker_now_ms: float) -> None:
        """Adopt a worker clock reading (monotonic: never rewinds)."""
        if worker_now_ms > self._now_ms:
            self._now_ms = worker_now_ms


# -- Worker process -----------------------------------------------------------------


def _apply_fault(clam: CLAM, mode: str, fault_kwargs: Dict[str, object]) -> None:
    """Worker-side twin of ``ClusterService._inject_fault``."""
    for device in clam.devices:
        if mode == "crash":
            device.faults.crash()
        elif mode == "io-errors":
            device.faults.inject_errors(**fault_kwargs)
        elif mode == "degraded":
            device.faults.degrade(**fault_kwargs)
        elif mode == "power-cut":
            device.faults.crash_after_n_ios(int(fault_kwargs.get("after_n_ios", 1)))
        else:
            raise ConfigurationError(f"unknown fault mode {mode!r}")


def _handle_batch(clam: CLAM, hash_once: bool, payload: bytes) -> bytes:
    """Execute one batch frame against the worker's CLAM."""
    advance_ms, operations = wire.decode_batch_request(payload)
    if advance_ms:
        clam.clock.advance(advance_ms)
    started_ms = clam.clock.now_ms
    results: List[object] = []
    error_code = wire.ERR_NONE
    message = ""
    for kind, digest, value in operations:
        key = digest if hash_once else digest.data
        operation = Operation(kind, digest.data, value)
        try:
            results.append(apply_operation(clam, operation, key=key))
        except DeviceFailedError as error:
            error_code = wire.ERR_DEVICE_FAILED
            message = f"{type(error).__name__}: {error}"
            break
        except Exception as error:  # surfaced to the parent as a typed code
            error_code = wire.ERR_UNEXPECTED
            message = f"{type(error).__name__}: {error}"
            break
    busy_ms = clam.clock.now_ms - started_ms
    return wire.encode_batch_response(results, error_code, message, clam.clock.now_ms, busy_ms)


def _handle_control(clam: CLAM, request: Dict[str, object]) -> Dict[str, object]:
    """Low-rate management requests (everything except batches and close)."""
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "pid": os.getpid()}
    if op == "counters":
        return {"ok": True, "counters": clam.counters()}
    if op == "telemetry":
        snapshot = (
            clam.telemetry.snapshot(include_buckets=True) if clam.telemetry is not None else None
        )
        return {"ok": True, "telemetry": snapshot}
    if op == "cpu_time":
        return {"ok": True, "cpu_s": time.process_time()}
    if op == "fault":
        try:
            _apply_fault(clam, str(request.get("mode")), dict(request.get("kwargs") or {}))
        except BufferHashError as error:
            return {"ok": False, "error": str(error)}
        return {"ok": True}
    if op == "heal":
        for device in clam.devices:
            device.faults.heal()
        return {"ok": True}
    if op == "recovery_report":
        report = getattr(clam, "recovery_report", None)
        return {"ok": True, "report": report.to_dict() if report is not None else None}
    return {"ok": False, "error": f"unknown control op {op!r}"}


def _send_fatal(conn: socket.socket, error: Exception) -> None:
    """Best-effort dying words: tell the parent *why* the worker is exiting.

    Sent with sequence number 0 (no request maps to it); the parent's
    response matcher special-cases control frames carrying a ``fatal`` key
    so the reason survives even though the sequence number is stale.
    """
    note = {"ok": False, "fatal": type(error).__name__, "error": str(error)}
    try:
        wire.send_frame(conn, wire.FRAME_CONTROL_RESPONSE, wire.encode_control(note))
    except OSError:  # the stream is already gone; exiting is all that is left
        pass


def _worker_main(
    conn: socket.socket,
    shard_id: str,
    config: CLAMConfig,
    storage: str,
    data_path: Optional[str],
    eviction_policy,
    keep_latency_samples: bool,
) -> None:
    """Entry point of one shard worker: build the CLAM, serve frames, exit.

    The worker owns a private :class:`SimulationClock` and (forked) copies of
    the config and eviction policy; nothing is shared with the parent except
    the socket.  The loop exits on a clean ``close`` control frame or when
    the parent hangs up (EOF), and a persistent CLAM is always closed on the
    way out so an orphaned worker still checkpoints its file.

    Malformed traffic is survived or reported, never amplified: a frame that
    fails its CRC is discarded (framing is intact — the parent's deadline and
    retry path resends it), while a desynchronised stream (garbage length
    prefix or preamble) is unrecoverable, so the worker sends a fatal control
    frame naming the error and exits with :data:`WORKER_EXIT_DESYNC`.
    Genuine socket errors exit with :data:`WORKER_EXIT_SOCKET_ERROR` instead
    of masquerading as a clean parent hang-up.
    """
    _trace.ACTIVE = None  # the parent's tracer must not leak across the fork
    clam: Optional[CLAM] = None
    exit_code = 0
    try:
        try:
            if storage == "persistent":
                existing = data_path and os.path.exists(data_path) and os.path.getsize(data_path)
                clam = DurableCLAM(
                    data_path,
                    config=None if existing else config,
                    clock=SimulationClock(),
                    eviction_policy=eviction_policy,
                    keep_latency_samples=keep_latency_samples,
                    name=shard_id,
                )
            else:
                clam = CLAM(
                    config,
                    storage=storage,
                    clock=SimulationClock(),
                    eviction_policy=eviction_policy,
                    keep_latency_samples=keep_latency_samples,
                )
        except Exception as error:  # tell the parent why the build failed
            hello = {"ok": False, "error": f"{type(error).__name__}: {error}"}
            wire.send_frame(conn, wire.FRAME_CONTROL_RESPONSE, wire.encode_control(hello))
            return
        wire.send_frame(
            conn,
            wire.FRAME_CONTROL_RESPONSE,
            wire.encode_control({"ok": True, "pid": os.getpid()}),
        )
        hash_once = clam.config.use_hash_once
        while True:
            try:
                frame_type, seq, payload = wire.recv_frame(conn)
            except wire.CorruptFrameError:
                # Framing held (sane length, full body) but the bytes are
                # damaged.  Dropping the frame keeps the stream synchronised;
                # the parent's deadline expires and its retry resends.
                continue
            except wire.TruncatedFrameError:
                break  # parent hung up: the clean shutdown path
            except wire.WireProtocolError as error:
                # Desynchronised stream (corrupt length prefix, bad preamble,
                # oversized frame): nothing after this point can be framed.
                _send_fatal(conn, error)
                exit_code = WORKER_EXIT_DESYNC
                break
            except (ConnectionResetError, BrokenPipeError):
                break  # parent died: equivalent to a hang-up
            except OSError as error:
                _send_fatal(conn, error)
                exit_code = WORKER_EXIT_SOCKET_ERROR
                break
            try:
                if frame_type == wire.FRAME_BATCH_REQUEST:
                    response = _handle_batch(clam, hash_once, payload)
                    wire.send_frame(conn, wire.FRAME_BATCH_RESPONSE, response, seq=seq)
                elif frame_type == wire.FRAME_CONTROL_REQUEST:
                    request = wire.decode_control(payload)
                    if request.get("op") == "close":
                        reply: Dict[str, object] = {"ok": True}
                        if isinstance(clam, DurableCLAM):
                            try:
                                clam.close()
                            except Exception as error:
                                reply = {
                                    "ok": False,
                                    "error": f"{type(error).__name__}: {error}",
                                }
                        wire.send_frame(
                            conn, wire.FRAME_CONTROL_RESPONSE, wire.encode_control(reply), seq=seq
                        )
                        break
                    reply = _handle_control(clam, request)
                    wire.send_frame(
                        conn, wire.FRAME_CONTROL_RESPONSE, wire.encode_control(reply), seq=seq
                    )
                else:  # pragma: no cover - recv_frame validates frame types
                    break
            except OSError:
                break  # parent vanished mid-response
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        if isinstance(clam, DurableCLAM) and not clam.closed:
            try:
                clam.close()
            except Exception:  # pragma: no cover - dead device at exit
                pass
    if exit_code:
        sys.exit(exit_code)


# -- Parent-side shard proxy --------------------------------------------------------


class RemoteShard:
    """Parent-side proxy for one shard worker process.

    Satisfies everything :class:`~repro.service.cluster.ClusterService`
    needs from a shard — the ``HashIndex`` methods (as one-operation batch
    frames, so single ops and batches share one code path and one clock
    policy), ``counters()``, a ``clock`` for the cluster ensemble, and
    ``close()`` — plus the batch scatter/gather halves used by
    :class:`ParallelBatchExecutor` and the fault/telemetry controls.

    Transport failures (EOF, broken pipe) mark the proxy dead and raise
    :class:`~repro.core.errors.WorkerDiedError` so callers handle a dead
    worker exactly like a crash-stopped device.  Gray failures are bounded
    too: every request carries a deadline (``request_deadline_ms``) enforced
    with socket timeouts, a timed-out or CRC-corrupted response is retried
    up to ``retry_limit`` times with capped exponential backoff (the resend
    reuses the request's sequence number, so a late answer to an earlier
    attempt is discarded rather than mis-matched), and once retries are
    exhausted the proxy opens its circuit — marks itself dead and raises
    :class:`~repro.core.errors.WorkerStalledError` — so a hung worker feeds
    the exact same supervisor/replication machinery as a dead one.
    """

    def __init__(
        self,
        shard_id: str,
        ctx,
        config: CLAMConfig,
        storage: str,
        data_path: Optional[str] = None,
        eviction_policy=None,
        keep_latency_samples: bool = True,
        request_deadline_ms: float = DEFAULT_REQUEST_DEADLINE_MS,
        retry_limit: int = DEFAULT_RETRY_LIMIT,
        retry_backoff_ms: float = DEFAULT_RETRY_BACKOFF_MS,
        retry_backoff_cap_ms: float = DEFAULT_RETRY_BACKOFF_CAP_MS,
        on_event: Optional[Callable[..., None]] = None,
    ) -> None:
        if request_deadline_ms <= 0:
            raise ConfigurationError("request_deadline_ms must be positive")
        if retry_limit < 0:
            raise ConfigurationError("retry_limit must be non-negative")
        self.shard_id = shard_id
        self.config = config
        self.storage = storage
        self.data_path = data_path
        self.request_deadline_ms = float(request_deadline_ms)
        self.retry_limit = int(retry_limit)
        self.retry_backoff_ms = float(retry_backoff_ms)
        self.retry_backoff_cap_ms = float(retry_backoff_cap_ms)
        #: RPC-resilience event hook: ``on_event(kind, **attributes)`` fires
        #: for ``rpc_timeout`` / ``rpc_retry`` / ``worker_stalled``.  The
        #: cluster wires it to its EventLog and per-shard counters.
        self.on_event = on_event
        self.clock = _MirrorClock()
        #: Always ``None``: the worker's registry lives in the worker; fetch a
        #: mergeable copy with :meth:`telemetry_registry`.  The attribute keeps
        #: in-process consumers (stats, autoscaler) working via their existing
        #: ``telemetry is None`` guards.
        self.telemetry = None
        self._ctx = ctx
        self._eviction_policy = eviction_policy
        self._keep_latency_samples = keep_latency_samples
        self._sock: Optional[socket.socket] = None
        self.process = None
        self._dead = False
        self._closed = False
        self._seq = 0
        self._inflight: Optional[Tuple[int, int, bytes]] = None
        self._spawn()

    def _spawn(self) -> None:
        parent_sock, child_sock = socket.socketpair()
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_sock,
                self.shard_id,
                self.config,
                self.storage,
                self.data_path,
                self._eviction_policy,
                self._keep_latency_samples,
            ),
            name=f"clam-worker-{self.shard_id}",
            daemon=True,
        )
        self.process.start()
        child_sock.close()
        self._sock = parent_sock
        self._dead = False
        self._closed = False
        self._seq = 0
        self._inflight = None
        hello = wire.decode_control(self._recv_plain(wire.FRAME_CONTROL_RESPONSE))
        if not hello.get("ok"):
            self.process.join(timeout=10.0)
            raise ConfigurationError(
                f"worker for shard {self.shard_id!r} failed to start: {hello.get('error')}"
            )

    # -- Liveness ----------------------------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        """Whether the worker process can still serve frames."""
        return (
            not self._dead
            and not self._closed
            and self.process is not None
            and self.process.is_alive()
        )

    # -- Transport ---------------------------------------------------------------------

    def _mark_dead(self, error: Exception, action: str) -> WorkerDiedError:
        self._dead = True
        return WorkerDiedError(
            f"worker for shard {self.shard_id!r} died ({action}: {type(error).__name__}: {error})"
        )

    def _event(self, kind: str, **attributes) -> None:
        if self.on_event is not None:
            self.on_event(kind, **attributes)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _send(self, frame_type: int, payload: bytes, seq: int) -> None:
        if self._sock is None or self._dead or self._closed:
            raise WorkerDiedError(f"worker for shard {self.shard_id!r} is not running")
        try:
            wire.send_frame(self._sock, frame_type, payload, seq=seq)
        except OSError as error:
            raise self._mark_dead(error, "send") from error

    def _recv_plain(self, expected_type: int) -> bytes:
        """Blocking receive with no sequence matching — the hello handshake
        only (a persistent worker may legitimately spend a while in crash
        recovery before it can greet)."""
        if self._sock is None:
            raise WorkerDiedError(f"worker for shard {self.shard_id!r} is not running")
        try:
            frame_type, _seq, payload = wire.recv_frame(self._sock)
        except (wire.TruncatedFrameError, OSError) as error:
            raise self._mark_dead(error, "recv") from error
        if frame_type != expected_type:
            raise WireProtocolError(
                f"worker for shard {self.shard_id!r} sent frame type {frame_type}, "
                f"expected {expected_type}"
            )
        return payload

    def _recv_matching(self, expected_type: int, seq: int, timeout_s: float) -> bytes:
        """One response frame with the right sequence number, within a deadline.

        Stale frames — duplicates injected by the transport, or late answers
        to a request an earlier attempt (or an abandoned hedge) already gave
        up on — are silently discarded; a control frame carrying a ``fatal``
        key is the worker's dying words and raises
        :class:`~repro.core.errors.WorkerDiedError` with the reported reason
        regardless of its sequence number.  Raises ``TimeoutError`` when the
        deadline expires and :class:`~repro.service.wire.CorruptFrameError`
        on a CRC mismatch; both are the caller's retry currency.  EOF and
        genuine socket errors mark the proxy dead.
        """
        if self._sock is None:
            raise WorkerDiedError(f"worker for shard {self.shard_id!r} is not running")
        sock = self._sock
        deadline = time.monotonic() + timeout_s
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise socket.timeout(
                        f"no response from shard {self.shard_id!r} within {timeout_s * 1000:g} ms"
                    )
                sock.settimeout(remaining)
                try:
                    frame_type, frame_seq, payload = wire.recv_frame(sock)
                except (wire.TruncatedFrameError, OSError) as error:
                    if isinstance(error, TimeoutError):
                        raise
                    raise self._mark_dead(error, "recv") from error
                if frame_type == wire.FRAME_CONTROL_RESPONSE and frame_seq != seq:
                    try:
                        note = wire.decode_control(payload)
                    except WireProtocolError:
                        continue  # stale and unreadable: drop it
                    if note.get("fatal"):
                        error = WireProtocolError(
                            f"worker reported fatal {note.get('fatal')}: {note.get('error')}"
                        )
                        raise self._mark_dead(error, "fatal") from error
                    continue  # stale control response from an abandoned request
                if frame_seq != seq:
                    continue  # duplicate or late answer to an earlier attempt
                if frame_type != expected_type:
                    raise WireProtocolError(
                        f"worker for shard {self.shard_id!r} sent frame type {frame_type}, "
                        f"expected {expected_type}"
                    )
                return payload
        finally:
            try:
                sock.settimeout(None)
            except OSError:  # pragma: no cover - socket died mid-conversation
                pass

    def _await_response(
        self,
        seq: int,
        frame_type: int,
        payload: bytes,
        expected_type: int,
        timeout_s: Optional[float] = None,
        attempts: Optional[int] = None,
    ) -> bytes:
        """Deadline + bounded-retry response wait (the request was already sent).

        Retryable failures — a missed deadline, a corrupted response — resend
        the identical frame (same sequence number: operations are idempotent
        re-sends, and a late original answer is discarded by the matcher).
        Exhausting the budget opens the circuit: the proxy is marked dead so
        the supervisor restarts the worker, and the caller gets
        :class:`~repro.core.errors.WorkerStalledError` (deadline) or
        :class:`~repro.core.errors.WorkerDiedError` (unrecoverable
        corruption), both :class:`~repro.core.errors.DeviceFailedError`
        subclasses feeding replica failover and hinted handoff.
        """
        timeout_s = self.request_deadline_ms / 1000.0 if timeout_s is None else timeout_s
        attempts = self.retry_limit + 1 if attempts is None else attempts
        backoff_s = self.retry_backoff_ms / 1000.0
        cap_s = self.retry_backoff_cap_ms / 1000.0
        last_error: Optional[Exception] = None
        reason = ""
        for attempt in range(attempts):
            if attempt:
                self._event("rpc_retry", attempt=attempt, reason=reason)
                time.sleep(backoff_s)
                backoff_s = min(backoff_s * 2.0, cap_s)
                self._send(frame_type, payload, seq)
            try:
                return self._recv_matching(expected_type, seq, timeout_s)
            except TimeoutError as error:
                last_error, reason = error, "timeout"
                self._event("rpc_timeout", attempt=attempt)
            except wire.CorruptFrameError as error:
                last_error, reason = error, "corrupt"
        self._dead = True  # circuit open: no more frames until a restart
        self._event("worker_stalled", reason=reason, attempts=attempts)
        if reason == "corrupt":
            raise WorkerDiedError(
                f"worker for shard {self.shard_id!r} returned corrupt frames "
                f"through {attempts} attempt(s)"
            ) from last_error
        raise WorkerStalledError(
            f"worker for shard {self.shard_id!r} missed its "
            f"{timeout_s * 1000:g} ms deadline {attempts} time(s)"
        ) from last_error

    # -- Batch scatter/gather ----------------------------------------------------------

    def send_batch(
        self,
        operations: List[Tuple[OpKind, object, bytes]],
        extra_advance_ms: float = 0.0,
    ) -> None:
        """Scatter half: ship one batch frame (pending clock advances ride along)."""
        if extra_advance_ms:
            self.clock.advance(extra_advance_ms)
        advance_ms = self.clock.consume_pending_ms()
        payload = wire.encode_batch_request(advance_ms, operations)
        seq = self._next_seq()
        self._inflight = (seq, wire.FRAME_BATCH_REQUEST, payload)
        self._send(wire.FRAME_BATCH_REQUEST, payload, seq)

    def recv_batch(
        self,
        probe_timeout_ms: Optional[float] = None,
        probe: bool = False,
    ) -> Tuple[List[object], int, str, float]:
        """Gather half: returns ``(results, error_code, message, busy_ms)``.

        ``probe=True`` is the hedged-read mode: one attempt with
        ``probe_timeout_ms`` as the deadline, no retries, no circuit-opening
        — a miss raises :class:`~repro.core.errors.WorkerStalledError` while
        leaving the worker marked alive, and the executor reroutes the
        lookups to another replica (the abandoned response is discarded by
        sequence number on the next exchange).
        """
        if self._inflight is None:
            raise WireProtocolError(f"no batch in flight for shard {self.shard_id!r}")
        seq, frame_type, payload = self._inflight
        if probe:
            timeout_ms = (
                probe_timeout_ms if probe_timeout_ms is not None else self.request_deadline_ms
            )
            try:
                response = self._recv_matching(
                    wire.FRAME_BATCH_RESPONSE, seq, timeout_ms / 1000.0
                )
            except TimeoutError as error:
                raise WorkerStalledError(
                    f"shard {self.shard_id!r} missed the {timeout_ms:g} ms hedge window"
                ) from error
            except wire.CorruptFrameError as error:
                raise WorkerStalledError(
                    f"shard {self.shard_id!r} returned a corrupt frame in the hedge window"
                ) from error
        else:
            response = self._await_response(seq, frame_type, payload, wire.FRAME_BATCH_RESPONSE)
        self._inflight = None
        results, error_code, message, clock_ms, busy_ms = wire.decode_batch_response(response)
        self.clock.sync(clock_ms)
        return results, error_code, message, busy_ms

    def _one(self, kind: OpKind, key, value: bytes):
        self.send_batch([(kind, key, value)])
        results, error_code, message, _busy_ms = self.recv_batch()
        wire.raise_for_code(error_code, f"shard {self.shard_id}: {message}")
        return results[0]

    # -- HashIndex interface -----------------------------------------------------------

    def lookup(self, key):
        return self._one(OpKind.LOOKUP, key, b"")

    def insert(self, key, value):
        return self._one(OpKind.INSERT, key, value)

    def update(self, key, value):
        return self._one(OpKind.UPDATE, key, value)

    def delete(self, key):
        return self._one(OpKind.DELETE, key, b"")

    # -- Controls ----------------------------------------------------------------------

    def _control(
        self,
        request: Dict[str, object],
        timeout_s: Optional[float] = None,
        attempts: Optional[int] = None,
    ) -> Dict[str, object]:
        payload = wire.encode_control(request)
        seq = self._next_seq()
        self._send(wire.FRAME_CONTROL_REQUEST, payload, seq)
        response = self._await_response(
            seq,
            wire.FRAME_CONTROL_REQUEST,
            payload,
            wire.FRAME_CONTROL_RESPONSE,
            timeout_s=timeout_s,
            attempts=attempts,
        )
        return wire.decode_control(response)

    def counters(self) -> Dict[str, float]:
        reply = self._control({"op": "counters"})
        return {name: float(value) for name, value in reply["counters"].items()}

    def telemetry_registry(self) -> Optional[MetricsRegistry]:
        """A mergeable copy of the worker's metrics registry (or ``None``)."""
        snapshot = self._control({"op": "telemetry"}).get("telemetry")
        return MetricsRegistry.from_snapshot(snapshot) if snapshot is not None else None

    def cpu_seconds(self) -> float:
        """CPU time the worker process has consumed (its ``process_time``)."""
        return float(self._control({"op": "cpu_time"})["cpu_s"])

    def inject_fault(self, mode: str, fault_kwargs: Dict[str, object]) -> None:
        reply = self._control({"op": "fault", "mode": mode, "kwargs": dict(fault_kwargs)})
        if not reply.get("ok"):
            raise ConfigurationError(str(reply.get("error", "fault injection failed")))

    def heal(self) -> None:
        self._control({"op": "heal"})

    @property
    def recovery_report(self) -> Optional[CrashRecoveryReport]:
        """The worker CLAM's crash-recovery report (persistent shards only)."""
        data = self._control({"op": "recovery_report"}).get("report")
        return CrashRecoveryReport(**data) if data is not None else None

    # -- Lifecycle ---------------------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL the worker — the crash-drill hook.  No clean close, no
        checkpoint: exactly what a machine failure looks like."""
        self._dead = True
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=10.0)

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Cleanly stop the worker (idempotent), escalating on a hang.

        A live worker is asked to close over the wire — a persistent CLAM
        flushes and checkpoints before the ack — then reaped; a dead one is
        just reaped.  Every stage is bounded by ``timeout_s``: the close
        exchange runs under it as a single-attempt deadline (a wedged worker
        surfaces as :class:`~repro.core.errors.WorkerStalledError` instead
        of blocking forever), and if ``process.join`` then expires the worker
        is SIGKILLed and reaped — a hung worker can never stall
        ``ParallelClusterService.close()`` past its budget.  Raises
        :class:`~repro.core.errors.WireProtocolError` when the worker reports
        its close failed, or the stall/death error when the exchange could
        not complete (in every case after the socket is closed and the
        process reaped, so nothing leaks either way).
        """
        if self._closed:
            return
        failure: Optional[Exception] = None
        try:
            if not self._dead and self.process is not None and self.process.is_alive():
                try:
                    reply = self._control({"op": "close"}, timeout_s=timeout_s, attempts=1)
                    if not reply.get("ok"):
                        failure = WireProtocolError(
                            f"shard {self.shard_id!r} failed to close cleanly: "
                            f"{reply.get('error')}"
                        )
                except (DeviceFailedError, WireProtocolError) as error:
                    failure = failure or error
        finally:
            self._closed = True
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
                self._sock = None
            if self.process is not None:
                self.process.join(timeout=timeout_s)
                if self.process.is_alive():
                    # Escalate: a worker that ignored (or never saw) the close
                    # and outlived its join budget is killed and reaped.
                    # SIGKILL works on stopped processes too, so even a
                    # SIGSTOP-frozen worker cannot leak past here.
                    self.process.kill()
                    self.process.join()
        if failure is not None:
            raise failure

    def close(self) -> None:
        """Alias for :meth:`shutdown` (the shard-side close interface)."""
        self.shutdown()


# -- Scatter/gather executor --------------------------------------------------------


class ParallelBatchExecutor(BatchExecutor):
    """The batch executor's per-shard fanout as a true scatter/gather.

    Only :meth:`_dispatch_round` changes relative to the base class: every
    shard's sub-batch frame is sent before any response is read, so the
    worker processes execute concurrently and a round's wall-clock cost is
    the *slowest* worker rather than the sum.  Routing, replica failover,
    retry and accounting are inherited unchanged — the same slots, the same
    hooks, the same stats — which is what keeps process-mode results
    bit-identical to the in-process executor's.

    Managed mode is required (a live view must drive failover): a worker
    death has to be survivable, and only the managed re-route machinery can
    move its slots to another replica.

    With ``hedge_delay_ms`` set and ``replication_factor >= 2``, all-lookup
    sub-batches are *hedged*: the gather half waits only the hedge window
    for the primary's response, and on a miss abandons it (without marking
    the shard failed — slow is not dead) and re-dispatches the lookups to
    the next untried live replica through the normal re-route machinery.
    The abandoned response is discarded by sequence number when it finally
    arrives.  Only groups where every slot has such an alternative are
    hedged, so a hedge can never manufacture a
    :class:`~repro.core.errors.ShardUnavailableError`.
    """

    def __init__(
        self,
        *args,
        hedge_delay_ms: Optional[float] = None,
        on_rpc_event: Optional[Callable[..., None]] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if not self.managed:
            raise ConfigurationError(
                "ParallelBatchExecutor requires managed mode (an is_live hook); "
                "stand-alone batches belong on the in-process BatchExecutor"
            )
        if hedge_delay_ms is not None and hedge_delay_ms <= 0:
            raise ConfigurationError("hedge_delay_ms must be positive (or None to disable)")
        self.hedge_delay_ms = hedge_delay_ms
        self._on_rpc_event = on_rpc_event

    def _rpc_event(self, kind: str, **attributes) -> None:
        if self._on_rpc_event is not None:
            self._on_rpc_event(kind, **attributes)

    def _hedgeable(self, slots: List[_Slot]) -> bool:
        """Whether one sub-batch qualifies for a hedged read.

        Requires: hedging enabled, RF >= 2, every slot a lookup (writes are
        never hedged — a duplicated write still lands, but hedging buys
        nothing and doubles device work), and every slot having at least one
        live, untried replica to fail over to.
        """
        if self.hedge_delay_ms is None or self.replication_factor < 2:
            return False
        for slot in slots:
            if slot.operation.kind is not OpKind.LOOKUP:
                return False
            if self._targets_for is not None:
                replicas = self._targets_for(slot.key, slot.operation.kind)
            else:
                replicas = self.router.preference_list(slot.key, self.replication_factor)
            if not any(
                replica not in slot.attempted
                and replica in self.shards
                and self._is_live(replica)
                for replica in replicas
            ):
                return False
        return True

    def _dispatch_round(
        self, groups: Dict[str, List[_Slot]], batch: BatchResult
    ) -> List[_Slot]:
        failed_slots: List[_Slot] = []
        in_flight: List[Tuple[str, RemoteShard, List[_Slot], ShardBatchStats, float]] = []

        # Scatter: one frame per shard, no waiting in between.
        for shard_id, slots in groups.items():
            shard = self.shards.get(shard_id)
            for slot in slots:
                slot.attempted.add(shard_id)
            if shard is None:
                # Removed between routing and execution; managed mode re-routes.
                self._fail_group(shard_id, slots, batch, failed_slots, missed_writes=False)
                continue
            stats = ShardBatchStats(shard_id=shard_id)
            stats.dispatch_ms = self.dispatch_overhead_ms
            stats.routing_ms = self.routing_cost_ms * len(slots)
            operations = [(slot.operation.kind, slot.key, slot.operation.value) for slot in slots]
            try:
                shard.send_batch(operations, extra_advance_ms=stats.dispatch_ms + stats.routing_ms)
            except DeviceFailedError:
                self._fail_group(shard_id, slots, batch, failed_slots, missed_writes=True)
                continue
            in_flight.append((shard_id, shard, slots, stats, shard.clock.now_ms))

        # Gather: read responses in dispatch order.  Workers kept computing
        # while we were still scattering and while earlier responses were
        # being folded in — that overlap is the whole point.
        for shard_id, shard, slots, stats, started_ms in in_flight:
            try:
                if self._hedgeable(slots):
                    try:
                        results, error_code, message, busy_ms = shard.recv_batch(
                            probe_timeout_ms=self.hedge_delay_ms, probe=True
                        )
                    except WorkerStalledError:
                        # Slow, not dead: abandon the primary without marking
                        # it failed and reroute the lookups to a replica.
                        self._rpc_event("hedge_fired", shard=shard_id, operations=len(slots))
                        failed_slots.extend(slots)
                        continue
                else:
                    results, error_code, message, busy_ms = shard.recv_batch()
            except DeviceFailedError:
                # Killed mid-batch: no response, so none of its slots ran.
                self._fail_group(shard_id, slots, batch, failed_slots, missed_writes=True)
                continue
            if error_code == wire.ERR_UNEXPECTED:
                raise WireProtocolError(f"shard {shard_id}: {message}")
            tracer = _trace.ACTIVE
            span = None
            if tracer is not None:
                span = tracer.begin(
                    "shard.batch", shard.clock, shard=shard_id, operations=len(slots)
                )
                span.start_ms = started_ms  # the frame was sent back then
            stats.busy_ms = busy_ms
            for slot, result in zip(slots, results):
                if slot.primary:
                    batch.results[slot.index] = result
                elif batch.results[slot.index] is None:
                    batch.results[slot.index] = result
                stats.operations += 1
                _count(stats, slot.operation.kind, result)
            leftover = slots[len(results) :]
            if error_code == wire.ERR_DEVICE_FAILED or leftover:
                self._notify_failure(shard_id)
                for pending in leftover:
                    if (
                        pending.operation.kind is not OpKind.LOOKUP
                        and self._on_missed_write is not None
                    ):
                        self._on_missed_write(shard_id, pending.key)
                if shard_id not in batch.failed_shards:
                    batch.failed_shards.append(shard_id)
                failed_slots.extend(leftover)
            if span is not None:
                if leftover:
                    span.attributes["failed"] = True
                    span.attributes["operations_completed"] = stats.operations
                tracer.end(span, shard.clock)
            self._merge_shard_stats(batch, stats)
        return failed_slots

    def _fail_group(
        self,
        shard_id: str,
        slots: List[_Slot],
        batch: BatchResult,
        failed_slots: List[_Slot],
        missed_writes: bool,
    ) -> None:
        """One shard's whole sub-batch failed before (or without) a response."""
        self._notify_failure(shard_id)
        if missed_writes and self._on_missed_write is not None:
            for slot in slots:
                if slot.operation.kind is not OpKind.LOOKUP:
                    self._on_missed_write(shard_id, slot.key)
        if shard_id not in batch.failed_shards:
            batch.failed_shards.append(shard_id)
        failed_slots.extend(slots)


# -- The process-per-shard cluster --------------------------------------------------


class ParallelClusterService(ClusterService):
    """:class:`~repro.service.cluster.ClusterService` with one process per shard.

    Same constructor, same interface, same results (see the module docstring
    for the contract); additionally exposes the supervisor surface —
    :meth:`check_workers`, :meth:`restart_worker`, :meth:`kill_worker` — and
    per-worker CPU accounting for the scaling benchmark.  Always ``close()``
    it (or use it as a context manager): worker processes are daemonic, so
    they die with the parent, but only a clean close checkpoints persistent
    shards.
    """

    def __init__(
        self,
        *args,
        start_method: str = "fork",
        request_deadline_ms: float = DEFAULT_REQUEST_DEADLINE_MS,
        retry_limit: int = DEFAULT_RETRY_LIMIT,
        retry_backoff_ms: float = DEFAULT_RETRY_BACKOFF_MS,
        retry_backoff_cap_ms: float = DEFAULT_RETRY_BACKOFF_CAP_MS,
        hedge_delay_ms: Optional[float] = None,
        **kwargs,
    ) -> None:
        if start_method != "fork":
            raise ConfigurationError(
                "process-per-shard workers require the fork start method "
                "(sockets, configs and eviction policies are inherited, not pickled)"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "this platform cannot fork; use the in-process ClusterService"
            )
        self._ctx = multiprocessing.get_context("fork")
        # RPC-resilience knobs, consumed by _build_shard/_build_executor —
        # which run during super().__init__, so they must be set first.
        self.request_deadline_ms = float(request_deadline_ms)
        self.retry_limit = int(retry_limit)
        self.retry_backoff_ms = float(retry_backoff_ms)
        self.retry_backoff_cap_ms = float(retry_backoff_cap_ms)
        self.hedge_delay_ms = hedge_delay_ms
        self._chaos: Optional[Tuple[ChaosSchedule, int]] = None
        super().__init__(*args, **kwargs)

    # -- Hook overrides ----------------------------------------------------------------

    def _build_shard(self, shard_id: str) -> RemoteShard:
        if shard_id in self.shards:
            raise ConfigurationError(f"shard {shard_id!r} already exists")
        data_path = self.shard_path(shard_id) if self.storage == "persistent" else None
        shard = RemoteShard(
            shard_id,
            self._ctx,
            self.config,
            self.storage,
            data_path=data_path,
            eviction_policy=self._eviction_policy,
            keep_latency_samples=self._keep_latency_samples,
            request_deadline_ms=self.request_deadline_ms,
            retry_limit=self.retry_limit,
            retry_backoff_ms=self.retry_backoff_ms,
            retry_backoff_cap_ms=self.retry_backoff_cap_ms,
        )
        shard.on_event = self._shard_event_hook(shard_id)
        if self._chaos is not None:
            self._wrap_with_chaos(shard_id, shard)
        self.shards[shard_id] = shard
        self.clock.add(shard.clock)
        return shard

    def _build_executor(self, dispatch_overhead_ms: float, routing_cost_ms: float):
        return ParallelBatchExecutor(
            self.router,
            self.shards,
            dispatch_overhead_ms=dispatch_overhead_ms,
            routing_cost_ms=routing_cost_ms,
            hash_once=self.config.use_hash_once,
            replication_factor=self.replication_factor,
            is_live=self.is_live,
            on_shard_error=self.record_shard_error,
            on_missed_write=self._record_hint,
            targets_for=self._op_replicas,
            hedge_delay_ms=self.hedge_delay_ms,
            on_rpc_event=self._record_rpc_event,
        )

    # -- RPC-resilience events ---------------------------------------------------------

    def _shard_event_hook(self, shard_id: str) -> Callable[..., None]:
        def hook(kind: str, **attributes) -> None:
            self._record_rpc_event(kind, shard=shard_id, **attributes)

        return hook

    def _record_rpc_event(self, kind: str, shard: str, **attributes) -> None:
        """One RPC-resilience event (``chaos_injected`` / ``rpc_timeout`` /
        ``rpc_retry`` / ``hedge_fired`` / ``worker_stalled``): logged to the
        EventLog and counted per shard.  Counters are created lazily, so a
        fault-free run registers nothing — keeping the chaos-off telemetry
        snapshot bit-identical to the in-process cluster's.
        """
        self.events.record(kind, shard=shard, **attributes)
        if self.telemetry is not None:
            self.telemetry.counter(f"rpc.{kind}").inc()
            self.telemetry.counter(f"rpc.{kind}.{shard}").inc()

    # -- Chaos injection ---------------------------------------------------------------

    def _wrap_with_chaos(self, shard_id: str, shard: RemoteShard) -> None:
        schedule, base_seed = self._chaos

        def on_inject(fault: str, direction: str, frame: int) -> None:
            self._record_rpc_event(
                "chaos_injected", shard=shard_id, fault=fault, direction=direction, frame=frame
            )

        shard._sock = ChaosTransport(
            shard._sock,
            schedule,
            seed=derive_seed(base_seed, shard_id),
            on_inject=on_inject,
        )

    def install_chaos(self, schedule: ChaosSchedule, seed: int = 0) -> None:
        """Slide a :class:`~repro.service.chaos.ChaosTransport` under every
        worker socket (and under every future replacement worker's, until
        :meth:`clear_chaos`).  Per-shard seeds derive deterministically from
        ``seed``, so one integer replays one cluster-wide fault history.
        """
        self._chaos = (schedule, seed)
        for shard_id, shard in self.shards.items():
            if shard._sock is not None and not isinstance(shard._sock, ChaosTransport):
                self._wrap_with_chaos(shard_id, shard)

    def clear_chaos(self) -> None:
        """Remove every chaos wrapper (buffered, un-faulted bytes included —
        frames swallowed by a hang stay lost, exactly like a real outage)."""
        self._chaos = None
        for shard in self.shards.values():
            if isinstance(shard._sock, ChaosTransport):
                shard._sock = shard._sock.raw

    def _inject_fault(self, shard_id: str, mode: str, fault_kwargs: Dict[str, object]) -> None:
        self.shards[shard_id].inject_fault(mode, fault_kwargs)

    def _heal_devices(self, shard_id: str) -> None:
        self.shards[shard_id].heal()

    def _close_shard(self, shard: RemoteShard) -> None:
        shard.shutdown()

    def _shard_registries(self) -> Dict[str, MetricsRegistry]:
        """Per-worker registries, fetched over the wire and rebuilt mergeable.

        Dead workers are skipped (their samples died with them — exactly like
        a crashed server's scrape target going away); everything that answers
        merges bit-exactly thanks to the bucket-preserving snapshots.
        """
        registries: Dict[str, MetricsRegistry] = {}
        for shard_id, shard in self.shards.items():
            if not shard.alive:
                continue
            try:
                registry = shard.telemetry_registry()
            except DeviceFailedError:
                continue
            if registry is not None:
                registries[shard_id] = registry
        return registries

    # -- Supervisor --------------------------------------------------------------------

    def check_workers(self) -> List[str]:
        """Detect dead workers and feed them into the health machinery.

        Every dead-but-not-yet-down worker is recorded as a ``worker_died``
        event and pushed through :meth:`record_shard_error` until the shard
        is marked down (so routing immediately avoids it).  Returns the
        newly-detected shard ids.  Callers run this periodically — or rely on
        the lazy path: any frame to a dead worker raises
        :class:`~repro.core.errors.WorkerDiedError`, which feeds the same
        counters through the executor's failure hooks.
        """
        died: List[str] = []
        for shard_id, shard in self.shards.items():
            if shard.alive or shard._closed or shard_id in self._down:
                continue
            exitcode = shard.process.exitcode if shard.process is not None else None
            self.events.record("worker_died", shard=shard_id, pid=shard.pid, exitcode=exitcode)
            while shard_id not in self._down:
                self.record_shard_error(shard_id)
            died.append(shard_id)
        return died

    def kill_worker(self, shard_id: str) -> None:
        """SIGKILL one shard's worker (the crash drill used by tests/benches).

        Only injects the failure — detection and recovery go through the
        normal machinery (:meth:`check_workers` or the next frame's
        :class:`~repro.core.errors.WorkerDiedError`).
        """
        shard = self.shards.get(shard_id)
        if shard is None:
            raise ConfigurationError(f"shard {shard_id!r} not present")
        pid = shard.pid
        shard.kill()
        self.events.record("worker_killed", shard=shard_id, pid=pid)

    def restart_worker(self, shard_id: str) -> Optional[CrashRecoveryReport]:
        """Respawn the worker for one shard and rejoin it to the cluster.

        A persistent shard's replacement worker reopens the backing file and
        runs CLAM crash recovery (the report is returned); a volatile shard
        comes back empty and relies on ``replication_factor >= 2`` —
        read-repair and the hinted-handoff replay below restore its keys
        lazily, exactly like :meth:`heal_shard` after a device crash.
        """
        shard = self.shards.get(shard_id)
        if shard is None:
            raise ConfigurationError(f"shard {shard_id!r} not present")
        shard.kill()
        self.clock.remove(shard.clock)
        del self.shards[shard_id]
        replacement = self._build_shard(shard_id)
        self._errors.pop(shard_id, None)
        self._down.discard(shard_id)
        report = replacement.recovery_report if self.storage == "persistent" else None
        self.events.record(
            "worker_restarted",
            shard=shard_id,
            pid=replacement.pid,
            crash_recovered=bool(report is not None and not report.clean_shutdown),
        )
        self._replay_hints_for(shard_id)
        return report

    # -- Accounting --------------------------------------------------------------------

    def worker_pids(self) -> Dict[str, Optional[int]]:
        """Current worker process id per shard."""
        return {shard_id: shard.pid for shard_id, shard in self.shards.items()}

    def worker_cpu_seconds(self) -> Dict[str, float]:
        """CPU seconds each live worker has consumed (benchmark accounting)."""
        cpu: Dict[str, float] = {}
        for shard_id, shard in self.shards.items():
            if not shard.alive:
                continue
            try:
                cpu[shard_id] = shard.cpu_seconds()
            except DeviceFailedError:
                continue
        return cpu
