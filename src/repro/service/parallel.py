"""Process-per-shard deployment of the cluster service.

Everything else in this repository runs in one Python thread over simulated
clocks — correct and deterministic, but capped at one core no matter how many
shards the cluster has.  :class:`ParallelClusterService` is the escape hatch:
each shard's CLAM (or :class:`~repro.core.recovery.DurableCLAM` when
``storage="persistent"``) runs in its **own worker process** behind the
length-prefixed binary protocol of :mod:`repro.service.wire`, and the batch
executor's per-shard fanout becomes a true scatter/gather — every worker
chews on its sub-batch concurrently while the parent waits.

The bit-identical results contract
----------------------------------
The in-process :class:`~repro.service.cluster.ClusterService` stays the
default deterministic test path.  The parallel deployment reuses its exact
routing, replication, hint and retry machinery — only the innermost dispatch
hop (:meth:`~repro.service.batch.BatchExecutor._dispatch_round`) is replaced
— and each worker runs the same deterministic CLAM on the same kind of
private :class:`~repro.flashsim.clock.SimulationClock`, advanced by exactly
the amounts the in-process executor would have advanced it (the parent
mirrors each worker clock and ships accrued advances inside batch frames).
Operation results, per-shard counters and simulated clocks are therefore
**bit-identical** between the two modes; ``tests/test_parallel_cluster.py``
enforces the contract and ``benchmarks/bench_parallel_cluster.py`` ratchets
it in CI.

Failure model
-------------
A worker that dies (killed, OOM, crashed interpreter) surfaces as
:class:`~repro.core.errors.WorkerDiedError` — a
:class:`~repro.core.errors.DeviceFailedError` subclass — at the next frame,
so every existing layer treats it like a crash-stopped device: the batch
executor fails the sub-batch over to the next live replica, the cluster's
error counters mark the shard down, missed writes become hinted handoffs,
and with ``replication_factor >= 2`` no acknowledged write is lost.  The
supervisor half (:meth:`ParallelClusterService.check_workers` /
:meth:`~ParallelClusterService.restart_worker`) detects dead workers, feeds
them into that same health machinery and respawns them; a persistent shard's
replacement worker reopens the backing file and runs CLAM crash recovery.

Workers are forked, not spawned: sockets, configs and eviction policies are
inherited instead of pickled, and a fork start is ~10x cheaper.  This is a
POSIX-only deployment mode — the deterministic in-process cluster remains
the portable default.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import time
from typing import Dict, List, Optional, Tuple

from repro.core.clam import CLAM
from repro.core.config import CLAMConfig
from repro.core.errors import (
    BufferHashError,
    ConfigurationError,
    DeviceFailedError,
    WireProtocolError,
    WorkerDiedError,
)
from repro.core.recovery import CrashRecoveryReport, DurableCLAM
from repro.flashsim.clock import SimulationClock
from repro.service import wire
from repro.service.batch import BatchExecutor, BatchResult, ShardBatchStats, _count, _Slot
from repro.service.cluster import ClusterService
from repro.telemetry import trace as _trace
from repro.telemetry.registry import MetricsRegistry
from repro.workloads.runner import apply_operation
from repro.workloads.workload import Operation, OpKind

__all__ = [
    "ParallelBatchExecutor",
    "ParallelClusterService",
    "RemoteShard",
]


class _MirrorClock:
    """The parent's mirror of one worker's :class:`SimulationClock`.

    The in-process executor charges dispatch/routing overhead to the shard's
    clock *before* the shard runs; in process mode the shard's real clock
    lives in the worker, so the parent accrues those advances here as
    *pending* milliseconds, ships them inside the next batch frame (the
    worker applies them before executing) and folds each worker response's
    clock reading back in.  ``now_ms`` therefore tracks the worker clock
    exactly at every frame boundary, which is what keeps the cluster's
    :class:`~repro.flashsim.clock.ClockEnsemble` readings bit-identical to
    the in-process deployment's.
    """

    __slots__ = ("_now_ms", "_pending_ms")

    def __init__(self) -> None:
        self._now_ms = 0.0
        self._pending_ms = 0.0

    @property
    def now_ms(self) -> float:
        return self._now_ms + self._pending_ms

    @property
    def now_s(self) -> float:
        return self.now_ms / 1000.0

    def advance(self, delta_ms: float) -> float:
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock by negative amount {delta_ms!r}")
        self._pending_ms += delta_ms
        return self.now_ms

    def consume_pending_ms(self) -> float:
        """Pending advances to ship with the next frame (folded into now)."""
        pending = self._pending_ms
        self._now_ms += pending
        self._pending_ms = 0.0
        return pending

    def sync(self, worker_now_ms: float) -> None:
        """Adopt a worker clock reading (monotonic: never rewinds)."""
        if worker_now_ms > self._now_ms:
            self._now_ms = worker_now_ms


# -- Worker process -----------------------------------------------------------------


def _apply_fault(clam: CLAM, mode: str, fault_kwargs: Dict[str, object]) -> None:
    """Worker-side twin of ``ClusterService._inject_fault``."""
    for device in clam.devices:
        if mode == "crash":
            device.faults.crash()
        elif mode == "io-errors":
            device.faults.inject_errors(**fault_kwargs)
        elif mode == "degraded":
            device.faults.degrade(**fault_kwargs)
        elif mode == "power-cut":
            device.faults.crash_after_n_ios(int(fault_kwargs.get("after_n_ios", 1)))
        else:
            raise ConfigurationError(f"unknown fault mode {mode!r}")


def _handle_batch(clam: CLAM, hash_once: bool, payload: bytes) -> bytes:
    """Execute one batch frame against the worker's CLAM."""
    advance_ms, operations = wire.decode_batch_request(payload)
    if advance_ms:
        clam.clock.advance(advance_ms)
    started_ms = clam.clock.now_ms
    results: List[object] = []
    error_code = wire.ERR_NONE
    message = ""
    for kind, digest, value in operations:
        key = digest if hash_once else digest.data
        operation = Operation(kind, digest.data, value)
        try:
            results.append(apply_operation(clam, operation, key=key))
        except DeviceFailedError as error:
            error_code = wire.ERR_DEVICE_FAILED
            message = f"{type(error).__name__}: {error}"
            break
        except Exception as error:  # surfaced to the parent as a typed code
            error_code = wire.ERR_UNEXPECTED
            message = f"{type(error).__name__}: {error}"
            break
    busy_ms = clam.clock.now_ms - started_ms
    return wire.encode_batch_response(results, error_code, message, clam.clock.now_ms, busy_ms)


def _handle_control(clam: CLAM, request: Dict[str, object]) -> Dict[str, object]:
    """Low-rate management requests (everything except batches and close)."""
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "pid": os.getpid()}
    if op == "counters":
        return {"ok": True, "counters": clam.counters()}
    if op == "telemetry":
        snapshot = (
            clam.telemetry.snapshot(include_buckets=True) if clam.telemetry is not None else None
        )
        return {"ok": True, "telemetry": snapshot}
    if op == "cpu_time":
        return {"ok": True, "cpu_s": time.process_time()}
    if op == "fault":
        try:
            _apply_fault(clam, str(request.get("mode")), dict(request.get("kwargs") or {}))
        except BufferHashError as error:
            return {"ok": False, "error": str(error)}
        return {"ok": True}
    if op == "heal":
        for device in clam.devices:
            device.faults.heal()
        return {"ok": True}
    if op == "recovery_report":
        report = getattr(clam, "recovery_report", None)
        return {"ok": True, "report": report.to_dict() if report is not None else None}
    return {"ok": False, "error": f"unknown control op {op!r}"}


def _worker_main(
    conn: socket.socket,
    shard_id: str,
    config: CLAMConfig,
    storage: str,
    data_path: Optional[str],
    eviction_policy,
    keep_latency_samples: bool,
) -> None:
    """Entry point of one shard worker: build the CLAM, serve frames, exit.

    The worker owns a private :class:`SimulationClock` and (forked) copies of
    the config and eviction policy; nothing is shared with the parent except
    the socket.  The loop exits on a clean ``close`` control frame or when
    the parent hangs up (EOF), and a persistent CLAM is always closed on the
    way out so an orphaned worker still checkpoints its file.
    """
    _trace.ACTIVE = None  # the parent's tracer must not leak across the fork
    clam: Optional[CLAM] = None
    try:
        try:
            if storage == "persistent":
                existing = data_path and os.path.exists(data_path) and os.path.getsize(data_path)
                clam = DurableCLAM(
                    data_path,
                    config=None if existing else config,
                    clock=SimulationClock(),
                    eviction_policy=eviction_policy,
                    keep_latency_samples=keep_latency_samples,
                    name=shard_id,
                )
            else:
                clam = CLAM(
                    config,
                    storage=storage,
                    clock=SimulationClock(),
                    eviction_policy=eviction_policy,
                    keep_latency_samples=keep_latency_samples,
                )
        except Exception as error:  # tell the parent why the build failed
            hello = {"ok": False, "error": f"{type(error).__name__}: {error}"}
            wire.send_frame(conn, wire.FRAME_CONTROL_RESPONSE, wire.encode_control(hello))
            return
        wire.send_frame(
            conn,
            wire.FRAME_CONTROL_RESPONSE,
            wire.encode_control({"ok": True, "pid": os.getpid()}),
        )
        hash_once = clam.config.use_hash_once
        while True:
            try:
                frame_type, payload = wire.recv_frame(conn)
            except (wire.TruncatedFrameError, OSError):
                break  # parent hung up
            if frame_type == wire.FRAME_BATCH_REQUEST:
                response = _handle_batch(clam, hash_once, payload)
                wire.send_frame(conn, wire.FRAME_BATCH_RESPONSE, response)
            elif frame_type == wire.FRAME_CONTROL_REQUEST:
                request = wire.decode_control(payload)
                if request.get("op") == "close":
                    reply: Dict[str, object] = {"ok": True}
                    if isinstance(clam, DurableCLAM):
                        try:
                            clam.close()
                        except Exception as error:
                            reply = {"ok": False, "error": f"{type(error).__name__}: {error}"}
                    wire.send_frame(conn, wire.FRAME_CONTROL_RESPONSE, wire.encode_control(reply))
                    break
                reply = _handle_control(clam, request)
                wire.send_frame(conn, wire.FRAME_CONTROL_RESPONSE, wire.encode_control(reply))
            else:  # pragma: no cover - recv_frame validates frame types
                break
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        if isinstance(clam, DurableCLAM) and not clam.closed:
            try:
                clam.close()
            except Exception:  # pragma: no cover - dead device at exit
                pass


# -- Parent-side shard proxy --------------------------------------------------------


class RemoteShard:
    """Parent-side proxy for one shard worker process.

    Satisfies everything :class:`~repro.service.cluster.ClusterService`
    needs from a shard — the ``HashIndex`` methods (as one-operation batch
    frames, so single ops and batches share one code path and one clock
    policy), ``counters()``, a ``clock`` for the cluster ensemble, and
    ``close()`` — plus the batch scatter/gather halves used by
    :class:`ParallelBatchExecutor` and the fault/telemetry controls.

    Transport failures (EOF, broken pipe) mark the proxy dead and raise
    :class:`~repro.core.errors.WorkerDiedError` so callers handle a dead
    worker exactly like a crash-stopped device.
    """

    def __init__(
        self,
        shard_id: str,
        ctx,
        config: CLAMConfig,
        storage: str,
        data_path: Optional[str] = None,
        eviction_policy=None,
        keep_latency_samples: bool = True,
    ) -> None:
        self.shard_id = shard_id
        self.config = config
        self.storage = storage
        self.data_path = data_path
        self.clock = _MirrorClock()
        #: Always ``None``: the worker's registry lives in the worker; fetch a
        #: mergeable copy with :meth:`telemetry_registry`.  The attribute keeps
        #: in-process consumers (stats, autoscaler) working via their existing
        #: ``telemetry is None`` guards.
        self.telemetry = None
        self._ctx = ctx
        self._eviction_policy = eviction_policy
        self._keep_latency_samples = keep_latency_samples
        self._sock: Optional[socket.socket] = None
        self.process = None
        self._dead = False
        self._closed = False
        self._spawn()

    def _spawn(self) -> None:
        parent_sock, child_sock = socket.socketpair()
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_sock,
                self.shard_id,
                self.config,
                self.storage,
                self.data_path,
                self._eviction_policy,
                self._keep_latency_samples,
            ),
            name=f"clam-worker-{self.shard_id}",
            daemon=True,
        )
        self.process.start()
        child_sock.close()
        self._sock = parent_sock
        self._dead = False
        self._closed = False
        hello = wire.decode_control(self._recv(wire.FRAME_CONTROL_RESPONSE))
        if not hello.get("ok"):
            self.process.join(timeout=10.0)
            raise ConfigurationError(
                f"worker for shard {self.shard_id!r} failed to start: {hello.get('error')}"
            )

    # -- Liveness ----------------------------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        """Whether the worker process can still serve frames."""
        return (
            not self._dead
            and not self._closed
            and self.process is not None
            and self.process.is_alive()
        )

    # -- Transport ---------------------------------------------------------------------

    def _mark_dead(self, error: Exception, action: str) -> WorkerDiedError:
        self._dead = True
        return WorkerDiedError(
            f"worker for shard {self.shard_id!r} died ({action}: {type(error).__name__}: {error})"
        )

    def _send(self, frame_type: int, payload: bytes) -> None:
        if self._sock is None or self._dead or self._closed:
            raise WorkerDiedError(f"worker for shard {self.shard_id!r} is not running")
        try:
            wire.send_frame(self._sock, frame_type, payload)
        except OSError as error:
            raise self._mark_dead(error, "send") from error

    def _recv(self, expected_type: int) -> bytes:
        if self._sock is None:
            raise WorkerDiedError(f"worker for shard {self.shard_id!r} is not running")
        try:
            frame_type, payload = wire.recv_frame(self._sock)
        except (wire.TruncatedFrameError, OSError) as error:
            raise self._mark_dead(error, "recv") from error
        if frame_type != expected_type:
            raise WireProtocolError(
                f"worker for shard {self.shard_id!r} sent frame type {frame_type}, "
                f"expected {expected_type}"
            )
        return payload

    # -- Batch scatter/gather ----------------------------------------------------------

    def send_batch(
        self,
        operations: List[Tuple[OpKind, object, bytes]],
        extra_advance_ms: float = 0.0,
    ) -> None:
        """Scatter half: ship one batch frame (pending clock advances ride along)."""
        if extra_advance_ms:
            self.clock.advance(extra_advance_ms)
        advance_ms = self.clock.consume_pending_ms()
        self._send(wire.FRAME_BATCH_REQUEST, wire.encode_batch_request(advance_ms, operations))

    def recv_batch(self) -> Tuple[List[object], int, str, float]:
        """Gather half: returns ``(results, error_code, message, busy_ms)``."""
        payload = self._recv(wire.FRAME_BATCH_RESPONSE)
        results, error_code, message, clock_ms, busy_ms = wire.decode_batch_response(payload)
        self.clock.sync(clock_ms)
        return results, error_code, message, busy_ms

    def _one(self, kind: OpKind, key, value: bytes):
        self.send_batch([(kind, key, value)])
        results, error_code, message, _busy_ms = self.recv_batch()
        wire.raise_for_code(error_code, f"shard {self.shard_id}: {message}")
        return results[0]

    # -- HashIndex interface -----------------------------------------------------------

    def lookup(self, key):
        return self._one(OpKind.LOOKUP, key, b"")

    def insert(self, key, value):
        return self._one(OpKind.INSERT, key, value)

    def update(self, key, value):
        return self._one(OpKind.UPDATE, key, value)

    def delete(self, key):
        return self._one(OpKind.DELETE, key, b"")

    # -- Controls ----------------------------------------------------------------------

    def _control(self, request: Dict[str, object]) -> Dict[str, object]:
        self._send(wire.FRAME_CONTROL_REQUEST, wire.encode_control(request))
        return wire.decode_control(self._recv(wire.FRAME_CONTROL_RESPONSE))

    def counters(self) -> Dict[str, float]:
        reply = self._control({"op": "counters"})
        return {name: float(value) for name, value in reply["counters"].items()}

    def telemetry_registry(self) -> Optional[MetricsRegistry]:
        """A mergeable copy of the worker's metrics registry (or ``None``)."""
        snapshot = self._control({"op": "telemetry"}).get("telemetry")
        return MetricsRegistry.from_snapshot(snapshot) if snapshot is not None else None

    def cpu_seconds(self) -> float:
        """CPU time the worker process has consumed (its ``process_time``)."""
        return float(self._control({"op": "cpu_time"})["cpu_s"])

    def inject_fault(self, mode: str, fault_kwargs: Dict[str, object]) -> None:
        reply = self._control({"op": "fault", "mode": mode, "kwargs": dict(fault_kwargs)})
        if not reply.get("ok"):
            raise ConfigurationError(str(reply.get("error", "fault injection failed")))

    def heal(self) -> None:
        self._control({"op": "heal"})

    @property
    def recovery_report(self) -> Optional[CrashRecoveryReport]:
        """The worker CLAM's crash-recovery report (persistent shards only)."""
        data = self._control({"op": "recovery_report"}).get("report")
        return CrashRecoveryReport(**data) if data is not None else None

    # -- Lifecycle ---------------------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL the worker — the crash-drill hook.  No clean close, no
        checkpoint: exactly what a machine failure looks like."""
        self._dead = True
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=10.0)

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Cleanly stop the worker (idempotent).

        A live worker is asked to close over the wire — a persistent CLAM
        flushes and checkpoints before the ack — then reaped; a dead one is
        just reaped.  Raises :class:`~repro.core.errors.WireProtocolError`
        when the worker reports its close failed (after the socket is closed
        and the process reaped, so nothing leaks either way).
        """
        if self._closed:
            return
        failure: Optional[Exception] = None
        try:
            if not self._dead and self.process is not None and self.process.is_alive():
                try:
                    self._send(wire.FRAME_CONTROL_REQUEST, wire.encode_control({"op": "close"}))
                    reply = wire.decode_control(self._recv(wire.FRAME_CONTROL_RESPONSE))
                    if not reply.get("ok"):
                        failure = WireProtocolError(
                            f"shard {self.shard_id!r} failed to close cleanly: "
                            f"{reply.get('error')}"
                        )
                except (WorkerDiedError, WireProtocolError) as error:
                    failure = failure or error
        finally:
            self._closed = True
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
                self._sock = None
            if self.process is not None:
                self.process.join(timeout=timeout_s)
                if self.process.is_alive():  # pragma: no cover - stuck worker
                    self.process.kill()
                    self.process.join(timeout=timeout_s)
        if failure is not None:
            raise failure

    def close(self) -> None:
        """Alias for :meth:`shutdown` (the shard-side close interface)."""
        self.shutdown()


# -- Scatter/gather executor --------------------------------------------------------


class ParallelBatchExecutor(BatchExecutor):
    """The batch executor's per-shard fanout as a true scatter/gather.

    Only :meth:`_dispatch_round` changes relative to the base class: every
    shard's sub-batch frame is sent before any response is read, so the
    worker processes execute concurrently and a round's wall-clock cost is
    the *slowest* worker rather than the sum.  Routing, replica failover,
    retry and accounting are inherited unchanged — the same slots, the same
    hooks, the same stats — which is what keeps process-mode results
    bit-identical to the in-process executor's.

    Managed mode is required (a live view must drive failover): a worker
    death has to be survivable, and only the managed re-route machinery can
    move its slots to another replica.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not self.managed:
            raise ConfigurationError(
                "ParallelBatchExecutor requires managed mode (an is_live hook); "
                "stand-alone batches belong on the in-process BatchExecutor"
            )

    def _dispatch_round(
        self, groups: Dict[str, List[_Slot]], batch: BatchResult
    ) -> List[_Slot]:
        failed_slots: List[_Slot] = []
        in_flight: List[Tuple[str, RemoteShard, List[_Slot], ShardBatchStats, float]] = []

        # Scatter: one frame per shard, no waiting in between.
        for shard_id, slots in groups.items():
            shard = self.shards.get(shard_id)
            for slot in slots:
                slot.attempted.add(shard_id)
            if shard is None:
                # Removed between routing and execution; managed mode re-routes.
                self._fail_group(shard_id, slots, batch, failed_slots, missed_writes=False)
                continue
            stats = ShardBatchStats(shard_id=shard_id)
            stats.dispatch_ms = self.dispatch_overhead_ms
            stats.routing_ms = self.routing_cost_ms * len(slots)
            operations = [(slot.operation.kind, slot.key, slot.operation.value) for slot in slots]
            try:
                shard.send_batch(operations, extra_advance_ms=stats.dispatch_ms + stats.routing_ms)
            except DeviceFailedError:
                self._fail_group(shard_id, slots, batch, failed_slots, missed_writes=True)
                continue
            in_flight.append((shard_id, shard, slots, stats, shard.clock.now_ms))

        # Gather: read responses in dispatch order.  Workers kept computing
        # while we were still scattering and while earlier responses were
        # being folded in — that overlap is the whole point.
        for shard_id, shard, slots, stats, started_ms in in_flight:
            try:
                results, error_code, message, busy_ms = shard.recv_batch()
            except DeviceFailedError:
                # Killed mid-batch: no response, so none of its slots ran.
                self._fail_group(shard_id, slots, batch, failed_slots, missed_writes=True)
                continue
            if error_code == wire.ERR_UNEXPECTED:
                raise WireProtocolError(f"shard {shard_id}: {message}")
            tracer = _trace.ACTIVE
            span = None
            if tracer is not None:
                span = tracer.begin(
                    "shard.batch", shard.clock, shard=shard_id, operations=len(slots)
                )
                span.start_ms = started_ms  # the frame was sent back then
            stats.busy_ms = busy_ms
            for slot, result in zip(slots, results):
                if slot.primary:
                    batch.results[slot.index] = result
                elif batch.results[slot.index] is None:
                    batch.results[slot.index] = result
                stats.operations += 1
                _count(stats, slot.operation.kind, result)
            leftover = slots[len(results) :]
            if error_code == wire.ERR_DEVICE_FAILED or leftover:
                self._notify_failure(shard_id)
                for pending in leftover:
                    if (
                        pending.operation.kind is not OpKind.LOOKUP
                        and self._on_missed_write is not None
                    ):
                        self._on_missed_write(shard_id, pending.key)
                if shard_id not in batch.failed_shards:
                    batch.failed_shards.append(shard_id)
                failed_slots.extend(leftover)
            if span is not None:
                if leftover:
                    span.attributes["failed"] = True
                    span.attributes["operations_completed"] = stats.operations
                tracer.end(span, shard.clock)
            self._merge_shard_stats(batch, stats)
        return failed_slots

    def _fail_group(
        self,
        shard_id: str,
        slots: List[_Slot],
        batch: BatchResult,
        failed_slots: List[_Slot],
        missed_writes: bool,
    ) -> None:
        """One shard's whole sub-batch failed before (or without) a response."""
        self._notify_failure(shard_id)
        if missed_writes and self._on_missed_write is not None:
            for slot in slots:
                if slot.operation.kind is not OpKind.LOOKUP:
                    self._on_missed_write(shard_id, slot.key)
        if shard_id not in batch.failed_shards:
            batch.failed_shards.append(shard_id)
        failed_slots.extend(slots)


# -- The process-per-shard cluster --------------------------------------------------


class ParallelClusterService(ClusterService):
    """:class:`~repro.service.cluster.ClusterService` with one process per shard.

    Same constructor, same interface, same results (see the module docstring
    for the contract); additionally exposes the supervisor surface —
    :meth:`check_workers`, :meth:`restart_worker`, :meth:`kill_worker` — and
    per-worker CPU accounting for the scaling benchmark.  Always ``close()``
    it (or use it as a context manager): worker processes are daemonic, so
    they die with the parent, but only a clean close checkpoints persistent
    shards.
    """

    def __init__(self, *args, start_method: str = "fork", **kwargs) -> None:
        if start_method != "fork":
            raise ConfigurationError(
                "process-per-shard workers require the fork start method "
                "(sockets, configs and eviction policies are inherited, not pickled)"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "this platform cannot fork; use the in-process ClusterService"
            )
        self._ctx = multiprocessing.get_context("fork")
        super().__init__(*args, **kwargs)

    # -- Hook overrides ----------------------------------------------------------------

    def _build_shard(self, shard_id: str) -> RemoteShard:
        if shard_id in self.shards:
            raise ConfigurationError(f"shard {shard_id!r} already exists")
        data_path = self.shard_path(shard_id) if self.storage == "persistent" else None
        shard = RemoteShard(
            shard_id,
            self._ctx,
            self.config,
            self.storage,
            data_path=data_path,
            eviction_policy=self._eviction_policy,
            keep_latency_samples=self._keep_latency_samples,
        )
        self.shards[shard_id] = shard
        self.clock.add(shard.clock)
        return shard

    def _build_executor(self, dispatch_overhead_ms: float, routing_cost_ms: float):
        return ParallelBatchExecutor(
            self.router,
            self.shards,
            dispatch_overhead_ms=dispatch_overhead_ms,
            routing_cost_ms=routing_cost_ms,
            hash_once=self.config.use_hash_once,
            replication_factor=self.replication_factor,
            is_live=self.is_live,
            on_shard_error=self.record_shard_error,
            on_missed_write=self._record_hint,
            targets_for=self._op_replicas,
        )

    def _inject_fault(self, shard_id: str, mode: str, fault_kwargs: Dict[str, object]) -> None:
        self.shards[shard_id].inject_fault(mode, fault_kwargs)

    def _heal_devices(self, shard_id: str) -> None:
        self.shards[shard_id].heal()

    def _close_shard(self, shard: RemoteShard) -> None:
        shard.shutdown()

    def _shard_registries(self) -> Dict[str, MetricsRegistry]:
        """Per-worker registries, fetched over the wire and rebuilt mergeable.

        Dead workers are skipped (their samples died with them — exactly like
        a crashed server's scrape target going away); everything that answers
        merges bit-exactly thanks to the bucket-preserving snapshots.
        """
        registries: Dict[str, MetricsRegistry] = {}
        for shard_id, shard in self.shards.items():
            if not shard.alive:
                continue
            try:
                registry = shard.telemetry_registry()
            except DeviceFailedError:
                continue
            if registry is not None:
                registries[shard_id] = registry
        return registries

    # -- Supervisor --------------------------------------------------------------------

    def check_workers(self) -> List[str]:
        """Detect dead workers and feed them into the health machinery.

        Every dead-but-not-yet-down worker is recorded as a ``worker_died``
        event and pushed through :meth:`record_shard_error` until the shard
        is marked down (so routing immediately avoids it).  Returns the
        newly-detected shard ids.  Callers run this periodically — or rely on
        the lazy path: any frame to a dead worker raises
        :class:`~repro.core.errors.WorkerDiedError`, which feeds the same
        counters through the executor's failure hooks.
        """
        died: List[str] = []
        for shard_id, shard in self.shards.items():
            if shard.alive or shard._closed or shard_id in self._down:
                continue
            self.events.record("worker_died", shard=shard_id, pid=shard.pid)
            while shard_id not in self._down:
                self.record_shard_error(shard_id)
            died.append(shard_id)
        return died

    def kill_worker(self, shard_id: str) -> None:
        """SIGKILL one shard's worker (the crash drill used by tests/benches).

        Only injects the failure — detection and recovery go through the
        normal machinery (:meth:`check_workers` or the next frame's
        :class:`~repro.core.errors.WorkerDiedError`).
        """
        shard = self.shards.get(shard_id)
        if shard is None:
            raise ConfigurationError(f"shard {shard_id!r} not present")
        pid = shard.pid
        shard.kill()
        self.events.record("worker_killed", shard=shard_id, pid=pid)

    def restart_worker(self, shard_id: str) -> Optional[CrashRecoveryReport]:
        """Respawn the worker for one shard and rejoin it to the cluster.

        A persistent shard's replacement worker reopens the backing file and
        runs CLAM crash recovery (the report is returned); a volatile shard
        comes back empty and relies on ``replication_factor >= 2`` —
        read-repair and the hinted-handoff replay below restore its keys
        lazily, exactly like :meth:`heal_shard` after a device crash.
        """
        shard = self.shards.get(shard_id)
        if shard is None:
            raise ConfigurationError(f"shard {shard_id!r} not present")
        shard.kill()
        self.clock.remove(shard.clock)
        del self.shards[shard_id]
        replacement = self._build_shard(shard_id)
        self._errors.pop(shard_id, None)
        self._down.discard(shard_id)
        report = replacement.recovery_report if self.storage == "persistent" else None
        self.events.record(
            "worker_restarted",
            shard=shard_id,
            pid=replacement.pid,
            crash_recovered=bool(report is not None and not report.clean_shutdown),
        )
        self._replay_hints_for(shard_id)
        return report

    # -- Accounting --------------------------------------------------------------------

    def worker_pids(self) -> Dict[str, Optional[int]]:
        """Current worker process id per shard."""
        return {shard_id: shard.pid for shard_id, shard in self.shards.items()}

    def worker_cpu_seconds(self) -> Dict[str, float]:
        """CPU seconds each live worker has consumed (benchmark accounting)."""
        cpu: Dict[str, float] = {}
        for shard_id, shard in self.shards.items():
            if not shard.alive:
                continue
            try:
                cpu[shard_id] = shard.cpu_seconds()
            except DeviceFailedError:
                continue
        return cpu
