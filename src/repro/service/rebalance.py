"""Online elastic rebalancing: streaming key-range migration under live traffic.

The rebalancing layer turns a membership change — a shard joining or leaving
the ring — into a *migration* the cluster can perform while it keeps serving:

* :func:`changed_arcs` computes the **exact** set of key-range arcs whose
  preference list changes between two rings.  Preference lists are piecewise
  constant between ring points (see
  :meth:`~repro.service.router.ShardRouter.preference_at`), so segmenting the
  ring at the union of both rings' boundary points and comparing the lists at
  each segment's inclusive end covers the whole key space with no sampling.
* :class:`MigrationState` is the placement overlay installed on
  :attr:`ClusterService.migration` while arcs move.  A **pending** arc still
  routes to its old owners; a **migrating** arc routes every read and write to
  the *union* of old and new owners, old owners first — the double-read window
  that keeps lookups hitting the authoritative copy and the write forwarding
  that keeps the new owners current; a **done** arc routes to its new owners
  only.
* :class:`KeyMigrator` drives the move: it snapshots the old ring, applies the
  membership change, seeds each arc's copy queue from the cluster's key
  catalog, then streams keys in bounded :meth:`~KeyMigrator.step` batches
  interleaved with live traffic.  An arc whose queue drains is **cut over**
  atomically (one state flip) and the copies on owners that left its
  preference list are retired.  A key counts as copied only once at least one
  *live* new-ring replica is confirmed to hold it, so killing the joining
  shard mid-migration at ``replication_factor >= 2`` degrades to hinted
  handoff instead of data loss.
* :class:`AutoscalePolicy` layers elasticity on top: driven by per-shard
  operation deltas (the hot-shard signal) and per-shard p99 latency from the
  telemetry registry, it starts a scale-out or scale-in migration during a
  :class:`~repro.service.simulator.TrafficSimulator` run, with cooldown and
  one-membership-change-at-a-time discipline.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.core.errors import ConfigurationError, ShardUnavailableError
from repro.core.hashing import RING_SEED, KeyLike, hash_key
from repro.service.cluster import ClusterService, imbalance_factor
from repro.service.router import RING_SPACE, HandoffStats, ShardRouter
from repro.workloads.workload import OpKind


class ArcState(Enum):
    """Lifecycle of one migration arc."""

    PENDING = "pending"
    MIGRATING = "migrating"
    DONE = "done"


@dataclass
class MigrationArc:
    """One contiguous key-range arc whose preference list is changing.

    ``start`` is exclusive and ``end`` inclusive, matching the router's arc
    convention; an arc may wrap through 0.  ``keys`` is every catalogued key
    hashing into the arc (kept current by :meth:`MigrationState.note_write`),
    ``pending`` the subset still awaiting a confirmed copy.
    """

    start: int
    end: int
    old_replicas: Tuple[str, ...]
    new_replicas: Tuple[str, ...]
    state: ArcState = ArcState.PENDING
    keys: Set[bytes] = field(default_factory=set)
    pending: Set[bytes] = field(default_factory=set)
    copied: int = 0
    retired: int = 0

    @property
    def length(self) -> int:
        """Arc length in ring units (start == end means the whole ring)."""
        return (self.end - self.start) % RING_SPACE or RING_SPACE

    @property
    def fraction(self) -> float:
        """Fraction of the key space the arc covers."""
        return self.length / RING_SPACE

    def contains(self, position: int) -> bool:
        """Whether a ring position falls inside this (wrap-aware) arc."""
        return 0 < (position - self.start) % RING_SPACE <= self.length

    @property
    def union_replicas(self) -> Tuple[str, ...]:
        """Old owners first, then the new owners not already among them.

        The placement of a migrating arc: old-first ordering makes the first
        live replica — what lookups and batched reads consult — the
        authoritative old primary throughout the double-read window.
        """
        return self.old_replicas + tuple(
            shard_id for shard_id in self.new_replicas if shard_id not in self.old_replicas
        )


def changed_arcs(
    old_router: ShardRouter,
    new_router: ShardRouter,
    replication_factor: int,
) -> List[MigrationArc]:
    """Exact arcs whose preference list differs between two rings.

    Segments the ring at the union of both rings' boundary points; preference
    lists are constant on each segment, so evaluating both routers at the
    segment's inclusive end classifies every key in it.  Adjacent segments
    with identical (old, new) lists are merged.
    """
    boundaries = sorted(set(old_router.boundary_points()) | set(new_router.boundary_points()))
    arcs: List[MigrationArc] = []
    previous = boundaries[-1]
    for point in boundaries:
        old_pref = old_router.preference_at(point, replication_factor)
        new_pref = new_router.preference_at(point, replication_factor)
        if old_pref != new_pref:
            if (
                arcs
                and arcs[-1].end == previous
                and arcs[-1].old_replicas == old_pref
                and arcs[-1].new_replicas == new_pref
            ):
                arcs[-1].end = point
            else:
                arcs.append(
                    MigrationArc(
                        start=previous,
                        end=point,
                        old_replicas=old_pref,
                        new_replicas=new_pref,
                    )
                )
        previous = point
    # The first and last arcs may be two halves of one arc wrapping through 0.
    if (
        len(arcs) >= 2
        and arcs[0].start == arcs[-1].end
        and arcs[0].old_replicas == arcs[-1].old_replicas
        and arcs[0].new_replicas == arcs[-1].new_replicas
    ):
        arcs[-1].end = arcs[0].end
        arcs.pop(0)
    return arcs


class MigrationState:
    """Placement overlay consulted by every cluster operation while arcs move.

    Installed on :attr:`ClusterService.migration` by a :class:`KeyMigrator`
    *after* the ring has been mutated, so ``router`` here is already the new
    ring: keys outside any arc (and keys in done arcs) route normally, while
    pending/migrating arcs override placement per :class:`ArcState`.
    """

    def __init__(
        self,
        arcs: List[MigrationArc],
        router: ShardRouter,
        replication_factor: int,
    ) -> None:
        self.arcs = sorted(arcs, key=lambda arc: arc.end)
        self._ends = [arc.end for arc in self.arcs]
        self._router = router
        self._replication_factor = replication_factor

    def arc_for_hash(self, position: int) -> Optional[MigrationArc]:
        """The arc containing a ring position, or None if no arc covers it.

        Arcs are disjoint and sorted by inclusive end; a wrapping arc (the one
        through 0) necessarily has the smallest end, so the usual
        first-end-at-or-after bisect plus a containment check covers both the
        wrap-around probe and the gaps between arcs.
        """
        if not self.arcs:
            return None
        index = bisect_left(self._ends, position)
        if index == len(self._ends):
            index = 0
        arc = self.arcs[index]
        return arc if arc.contains(position) else None

    def replicas_for(self, key: KeyLike, kind: OpKind) -> Tuple[str, ...]:
        """The shards one operation on ``key`` must consult right now.

        ``kind`` is part of the placement interface but unused: during the
        double-read window reads and writes deliberately see the *same* union
        placement (reads so they never miss, writes so the new owners stay
        current for the cut-over).
        """
        arc = self.arc_for_hash(hash_key(key, seed=RING_SEED))
        if arc is None:
            return self._router.preference_list(key, self._replication_factor)
        if arc.state is ArcState.MIGRATING:
            return arc.union_replicas
        if arc.state is ArcState.PENDING:
            return arc.old_replicas
        return arc.new_replicas

    def note_write(self, key_bytes: bytes, alive: bool) -> None:
        """Fold one applied write into the owning arc's bookkeeping.

        A write landing in a pending arc must join its copy queue (the arc's
        owners have not changed yet); in a migrating arc the dual-write
        already placed the value on the new owners, so the key leaves the
        queue instead.  Deletes leave both sets — there is nothing to move or
        retire any more.
        """
        arc = self.arc_for_hash(hash_key(key_bytes, seed=RING_SEED))
        if arc is None or arc.state is ArcState.DONE:
            return
        if alive:
            arc.keys.add(key_bytes)
            if arc.state is ArcState.PENDING:
                arc.pending.add(key_bytes)
            else:
                arc.pending.discard(key_bytes)
        else:
            arc.keys.discard(key_bytes)
            arc.pending.discard(key_bytes)

    @property
    def keys_pending(self) -> int:
        """Keys still awaiting a confirmed copy, across every arc."""
        return sum(len(arc.pending) for arc in self.arcs)

    @property
    def arcs_done(self) -> int:
        """Arcs already cut over."""
        return sum(1 for arc in self.arcs if arc.state is ArcState.DONE)


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one completed migration."""

    direction: str
    subject: str
    arcs: int
    moved_fraction: float
    keys_seeded: int
    keys_copied: int
    keys_retired: int
    steps: int
    blocked_retries: int
    duration_ms: float


class KeyMigrator:
    """Streams a membership change's key-range arcs while traffic continues.

    One migration at a time: :meth:`start_add` / :meth:`start_remove` snapshot
    the old ring, apply the membership change, seed the arc queues from the
    cluster's key catalog and install the :class:`MigrationState` overlay.
    :meth:`step` then copies a bounded batch of keys (call it from the traffic
    loop to interleave with requests), cutting arcs over as their queues
    drain; :meth:`run_to_completion` drains everything, raising if the
    migration stalls with no live replica to copy from or confirm on.

    Parameters
    ----------
    batch_size:
        Copy attempts per :meth:`step` (the knob trading migration speed for
        foreground interference).
    max_active_arcs:
        Arcs in the migrating (double-read) state at once; the rest stay
        pending — and cheaply routed to their old owners — until a slot frees.
    stall_limit:
        Consecutive zero-progress steps after which
        :meth:`run_to_completion` gives up.
    """

    def __init__(
        self,
        cluster: ClusterService,
        batch_size: int = 64,
        max_active_arcs: int = 4,
        stall_limit: int = 3,
    ) -> None:
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if max_active_arcs <= 0:
            raise ConfigurationError("max_active_arcs must be positive")
        if stall_limit <= 0:
            raise ConfigurationError("stall_limit must be positive")
        self.cluster = cluster
        self.batch_size = batch_size
        self.max_active_arcs = max_active_arcs
        self.stall_limit = stall_limit
        #: Reports of completed migrations, in completion order.
        self.reports: List[MigrationReport] = []
        #: Consecutive steps that confirmed zero keys while some were blocked.
        self.stalled_steps = 0
        self._state: Optional[MigrationState] = None
        self._direction = ""
        self._subject = ""
        self._handoff: Optional[HandoffStats] = None
        self._steps = 0
        self._blocked_retries = 0
        self._keys_copied = 0
        self._keys_retired = 0
        self._keys_seeded = 0
        self._started_ms = 0.0

    @property
    def active(self) -> bool:
        """Whether this migrator currently owns an in-flight migration."""
        return self._state is not None and self.cluster.migration is self._state

    def _require_active(self) -> MigrationState:
        if not self.active:
            raise ConfigurationError("no key migration in flight")
        return self._state

    def _snapshot_router(self) -> ShardRouter:
        """Preconditions plus an independent copy of the current (old) ring."""
        if self.cluster.migration is not None:
            raise ConfigurationError("a key migration is already in flight")
        if self.cluster.tracked_keys is None:
            raise ConfigurationError(
                "KeyMigrator needs the cluster's key catalog (track_keys=True)"
            )
        router = self.cluster.router
        return ShardRouter(router.shard_ids, virtual_nodes=router.virtual_nodes)

    # -- Starting a migration -----------------------------------------------------------

    def start_add(self, shard_id: Optional[str] = None) -> str:
        """Provision a shard and start streaming its arcs to it online.

        Returns the joining shard's id (auto-named when not given).
        """
        old_router = self._snapshot_router()
        handoff = self.cluster.add_shard(shard_id)
        subject = handoff.added[0]
        self._install("scale-out", subject, old_router, handoff)
        return subject

    def start_remove(self, shard_id: str) -> str:
        """Take a shard off the ring and start draining its data online.

        The leaving shard stays instantiated — and keeps serving as an old
        owner through the double-read window — until the last of its arcs
        cuts over, at which point it is decommissioned.
        """
        old_router = self._snapshot_router()
        router = self.cluster.router
        if shard_id not in router:
            raise ConfigurationError(f"shard {shard_id!r} not present")
        if len(router) - 1 < self.cluster.replication_factor:
            raise ConfigurationError(
                f"removing {shard_id!r} would leave fewer shards than "
                f"replication_factor={self.cluster.replication_factor}"
            )
        handoff = router.remove_shard(shard_id)
        self._install("scale-in", shard_id, old_router, handoff)
        return shard_id

    def _install(
        self,
        direction: str,
        subject: str,
        old_router: ShardRouter,
        handoff: HandoffStats,
    ) -> None:
        cluster = self.cluster
        arcs = changed_arcs(old_router, cluster.router, cluster.replication_factor)
        state = MigrationState(arcs, cluster.router, cluster.replication_factor)
        seeded = 0
        for key in cluster.tracked_keys:
            arc = state.arc_for_hash(hash_key(key, seed=RING_SEED))
            if arc is not None:
                arc.keys.add(key)
                arc.pending.add(key)
                seeded += 1
        self._state = state
        self._direction = direction
        self._subject = subject
        self._handoff = handoff
        self._steps = 0
        self._blocked_retries = 0
        self._keys_copied = 0
        self._keys_retired = 0
        self._keys_seeded = seeded
        self.stalled_steps = 0
        self._started_ms = cluster.clock.now_ms
        cluster.migration = state
        cluster.events.record(
            "migration_started",
            direction=direction,
            shard=subject,
            arcs=len(arcs),
            keys=seeded,
            moved_fraction=handoff.moved_fraction,
        )
        if cluster.telemetry is not None:
            cluster.telemetry.counter("migrations_started").inc()

    # -- Driving the migration ----------------------------------------------------------

    def step(self, budget: Optional[int] = None) -> int:
        """Attempt up to ``budget`` key copies; returns the keys confirmed.

        Keys whose copy cannot be confirmed (no reachable old replica, or no
        live new-ring replica to hold the value) are requeued for the next
        step rather than dropped; an arc cuts over the moment its queue
        drains; the migration completes — and on scale-in decommissions the
        leaving shard — once every arc is done.
        """
        state = self._require_active()
        budget = self.batch_size if budget is None else budget
        if budget <= 0:
            raise ConfigurationError("budget must be positive")
        self._steps += 1
        self._promote_arcs(state)
        attempts = 0
        copied = 0
        blocked = 0
        for arc in state.arcs:
            if arc.state is not ArcState.MIGRATING:
                continue
            requeue: List[bytes] = []
            while arc.pending and attempts < budget:
                attempts += 1
                key = arc.pending.pop()
                if self._copy_key(arc, key):
                    arc.copied += 1
                    copied += 1
                else:
                    requeue.append(key)
                    blocked += 1
            arc.pending.update(requeue)
            if not arc.pending:
                self._cut_over(arc)
            if attempts >= budget:
                break
        self._keys_copied += copied
        self._blocked_retries += blocked
        if copied == 0 and blocked > 0:
            self.stalled_steps += 1
        elif copied > 0:
            self.stalled_steps = 0
        self._promote_arcs(state)
        if all(arc.state is ArcState.DONE for arc in state.arcs):
            self._complete()
        return copied

    def run_to_completion(self, budget: Optional[int] = None) -> MigrationReport:
        """Step until the migration completes; raise if it stalls."""
        self._require_active()
        while self.cluster.migration is not None:
            self.step(budget)
            if self.stalled_steps >= self.stall_limit:
                raise ShardUnavailableError(
                    f"migration of {self._subject!r} stalled: {self.stalled_steps} "
                    "consecutive steps with every pending key blocked (no live "
                    "replica to read from or confirm on)"
                )
        return self.reports[-1]

    def _promote_arcs(self, state: MigrationState) -> None:
        active = sum(1 for arc in state.arcs if arc.state is ArcState.MIGRATING)
        for arc in state.arcs:
            if active >= self.max_active_arcs:
                break
            if arc.state is ArcState.PENDING:
                arc.state = ArcState.MIGRATING
                active += 1

    def _copy_key(self, arc: MigrationArc, key: bytes) -> bool:
        """Copy one key to the arc's new owners; True once its copy is safe.

        Reads old-first (the authoritative side), writes every new owner not
        already holding the key, and falls back to confirming — and repairing
        if needed — a surviving old owner that stays in the new preference
        list.  Unreachable new owners get hinted-handoff entries, so a joining
        shard killed mid-migration catches up on heal instead of losing keys.
        """
        cluster = self.cluster
        answered = False
        value: Optional[bytes] = None
        for shard_id in arc.old_replicas:
            if not cluster.is_live(shard_id):
                continue
            result = cluster._shard_op(shard_id, "lookup", key)
            if result is None:
                continue
            answered = True
            if result.found:
                value = result.value
                break
        if not answered:
            return False
        if value is None:
            # Deleted while queued (or never fully replicated): nothing to move.
            arc.keys.discard(key)
            return True
        placed = False
        for target in arc.new_replicas:
            if target in arc.old_replicas:
                continue
            if (
                cluster.is_live(target)
                and cluster._shard_op(target, "insert", key, value) is not None
            ):
                placed = True
            else:
                cluster._record_hint(target, key)
        if not placed:
            # Every genuinely-new owner is unreachable.  The key is still safe
            # if a surviving old owner remains in the new preference list (the
            # prefix-stability guarantee at replication_factor >= 2): verify —
            # and repair — that copy before counting the key as confirmed.
            for survivor in arc.new_replicas:
                if survivor not in arc.old_replicas or not cluster.is_live(survivor):
                    continue
                result = cluster._shard_op(survivor, "lookup", key)
                if result is None:
                    continue
                if result.found:
                    placed = True
                    break
                if cluster._shard_op(survivor, "insert", key, value) is not None:
                    cluster.read_repairs += 1
                    placed = True
                    break
        return placed

    def _cut_over(self, arc: MigrationArc) -> None:
        """Atomically retire one drained arc.

        The state flip is the atomic step: from the next operation on, keys in
        the arc route to the new owners only.  Copies on owners that left the
        preference list are then deleted (a scale-in's leaving shard is
        skipped — it is decommissioned wholesale at completion).
        """
        cluster = self.cluster
        arc.state = ArcState.DONE
        retiring = tuple(
            shard_id
            for shard_id in arc.old_replicas
            if shard_id not in arc.new_replicas and shard_id != self._subject
        )
        for key in sorted(arc.keys):
            for shard_id in retiring:
                if not cluster.is_live(shard_id):
                    continue
                if cluster._shard_op(shard_id, "delete", key) is not None:
                    arc.retired += 1
        self._keys_retired += arc.retired
        cluster.events.record(
            "arc_cut_over",
            shard=self._subject,
            arc_start=f"{arc.start:016x}",
            arc_end=f"{arc.end:016x}",
            keys=len(arc.keys),
            copied=arc.copied,
            retired=arc.retired,
        )

    def _complete(self) -> MigrationReport:
        cluster = self.cluster
        state = self._state
        report = MigrationReport(
            direction=self._direction,
            subject=self._subject,
            arcs=len(state.arcs),
            moved_fraction=self._handoff.moved_fraction,
            keys_seeded=self._keys_seeded,
            keys_copied=self._keys_copied,
            keys_retired=self._keys_retired,
            steps=self._steps,
            blocked_retries=self._blocked_retries,
            duration_ms=cluster.clock.now_ms - self._started_ms,
        )
        cluster.migration = None
        self._state = None
        if report.direction == "scale-in":
            cluster.decommission_shard(report.subject)
        cluster.events.record(
            "migration_done",
            direction=report.direction,
            shard=report.subject,
            keys_copied=report.keys_copied,
            keys_retired=report.keys_retired,
            steps=report.steps,
        )
        if cluster.telemetry is not None:
            cluster.telemetry.counter("migrations_completed").inc()
            cluster.telemetry.counter("migration_keys_copied").inc(report.keys_copied)
        self.reports.append(report)
        return report

    def abort(self) -> None:
        """Undo an in-flight migration that has not cut any arc over yet.

        Scrubs the copies already streamed to the new owners (so an aborted
        scale-out cannot resurrect deleted keys later), restores the old ring
        and, for a scale-out, decommissions the half-joined shard.  Once an
        arc has cut over its old copies are gone — the migration can only be
        drained forward from there.
        """
        state = self._require_active()
        if any(arc.state is ArcState.DONE for arc in state.arcs):
            raise ConfigurationError(
                "cannot abort: an arc already cut over (its old copies are "
                "retired); drain the migration with run_to_completion instead"
            )
        cluster = self.cluster
        scrubbed = 0
        for arc in state.arcs:
            for key in sorted(arc.keys):
                for target in arc.new_replicas:
                    if target in arc.old_replicas or not cluster.is_live(target):
                        continue
                    if cluster._shard_op(target, "delete", key) is not None:
                        scrubbed += 1
        cluster.migration = None
        self._state = None
        if self._direction == "scale-out":
            cluster.router.remove_shard(self._subject)
            cluster.decommission_shard(self._subject)
        else:
            cluster.router.add_shard(self._subject)
        cluster.events.record(
            "migration_aborted",
            direction=self._direction,
            shard=self._subject,
            keys_scrubbed=scrubbed,
        )


@dataclass(frozen=True)
class AutoscaleConfig:
    """Thresholds and pacing for :class:`AutoscalePolicy`.

    Scale-out triggers when any shard's operation share since the last
    evaluation exceeds ``hot_shard_threshold`` times the mean *and* the worst
    per-shard p99 is at least ``p99_scale_out_ms``.  Scale-in triggers when no
    shard is hot, the worst p99 is at most ``p99_scale_in_ms`` and the load
    imbalance is at most ``scale_in_imbalance`` — the fleet is provably
    over-provisioned.  ``cooldown`` requests must pass after a decision before
    the next one, and decisions are only evaluated every ``evaluate_every``
    requests (and never while a migration is still in flight).
    """

    min_shards: int = 2
    max_shards: int = 12
    hot_shard_threshold: float = 1.5
    p99_scale_out_ms: float = 0.0
    p99_scale_in_ms: float = float("inf")
    scale_in_imbalance: float = 1.2
    evaluate_every: int = 50
    cooldown: int = 200

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ConfigurationError("min_shards must be at least 1")
        if self.max_shards < self.min_shards:
            raise ConfigurationError("max_shards must be at least min_shards")
        if self.hot_shard_threshold < 1.0:
            raise ConfigurationError("hot_shard_threshold must be at least 1")
        if self.p99_scale_out_ms < 0 or self.p99_scale_in_ms < 0:
            raise ConfigurationError("p99 thresholds must be non-negative")
        if self.scale_in_imbalance < 1.0:
            raise ConfigurationError("scale_in_imbalance must be at least 1")
        if self.evaluate_every <= 0:
            raise ConfigurationError("evaluate_every must be positive")
        if self.cooldown < 0:
            raise ConfigurationError("cooldown must be non-negative")


@dataclass(frozen=True)
class AutoscaleDecision:
    """One membership change the policy decided on."""

    action: str
    shard: str
    at_request: int
    reason: str
    p99_ms: float
    hot_shards: Tuple[str, ...] = ()


class AutoscalePolicy:
    """Decides shard membership from live load and latency signals.

    Reads each shard's registry ``operations`` counter (deltas between
    evaluations — the same signal the simulator's hot-shard detector uses)
    and the per-shard ``lookup_latency_ms`` / ``insert_latency_ms`` p99s, and
    starts migrations through a :class:`KeyMigrator`.  Requires a
    telemetry-enabled cluster.
    """

    def __init__(
        self,
        cluster: ClusterService,
        migrator: KeyMigrator,
        config: Optional[AutoscaleConfig] = None,
    ) -> None:
        if cluster.telemetry is None:
            raise ConfigurationError(
                "AutoscalePolicy needs a telemetry-enabled cluster "
                "(config.telemetry_enabled=True) for its load and p99 signals"
            )
        self.cluster = cluster
        self.migrator = migrator
        self.config = config if config is not None else AutoscaleConfig()
        #: Decisions taken, in order.
        self.decisions: List[AutoscaleDecision] = []
        self._baseline = self._ops_per_shard()
        self._last_eval = 0
        self._last_action: Optional[int] = None

    def _ops_per_shard(self) -> Dict[str, float]:
        return {
            shard_id: clam.telemetry.counter("operations").value
            for shard_id, clam in self.cluster.shards.items()
            if clam.telemetry is not None
        }

    def fleet_p99_ms(self) -> float:
        """Worst per-shard p99 over lookup and insert latency histograms."""
        worst = 0.0
        for clam in self.cluster.shards.values():
            if clam.telemetry is None:
                continue
            for name in ("lookup_latency_ms", "insert_latency_ms"):
                worst = max(worst, clam.telemetry.histogram(name).percentile(0.99))
        return worst

    def tick(self, at_request: int) -> Optional[AutoscaleDecision]:
        """Evaluate the signals at the given request count; maybe act.

        Returns the decision taken this tick, or None.  Call it once per
        dispatched request (the :class:`TrafficSimulator` does); evaluation
        and cooldown pacing are handled internally.
        """
        config = self.config
        if at_request - self._last_eval < config.evaluate_every:
            return None
        self._last_eval = at_request
        current = self._ops_per_shard()
        loads = {
            shard_id: value - self._baseline.get(shard_id, 0.0)
            for shard_id, value in current.items()
        }
        self._baseline = current
        if self.cluster.migration is not None:
            return None
        if self._last_action is not None and at_request - self._last_action < config.cooldown:
            return None
        live_loads = {
            shard_id: load for shard_id, load in loads.items() if self.cluster.is_live(shard_id)
        }
        if not live_loads:
            return None
        mean = sum(live_loads.values()) / len(live_loads)
        if mean <= 0:
            return None
        hot = sorted(
            shard_id
            for shard_id, load in live_loads.items()
            if load > config.hot_shard_threshold * mean
        )
        p99 = self.fleet_p99_ms()
        num_shards = len(self.cluster.router)
        decision: Optional[AutoscaleDecision] = None
        if hot and p99 >= config.p99_scale_out_ms and num_shards < config.max_shards:
            subject = self.migrator.start_add()
            decision = AutoscaleDecision(
                action="scale-out",
                shard=subject,
                at_request=at_request,
                reason=f"hot shards {hot} with fleet p99 {p99:.3f} ms",
                p99_ms=p99,
                hot_shards=tuple(hot),
            )
        elif (
            not hot
            and p99 <= config.p99_scale_in_ms
            and num_shards > max(config.min_shards, self.cluster.replication_factor)
        ):
            imbalance = imbalance_factor(live_loads.values())
            if imbalance <= config.scale_in_imbalance:
                victim = min(live_loads, key=lambda shard_id: (live_loads[shard_id], shard_id))
                self.migrator.start_remove(victim)
                decision = AutoscaleDecision(
                    action="scale-in",
                    shard=victim,
                    at_request=at_request,
                    reason=(
                        f"balanced fleet (imbalance {imbalance:.2f}) "
                        f"with fleet p99 {p99:.3f} ms"
                    ),
                    p99_ms=p99,
                )
        if decision is not None:
            self._last_action = at_request
            self.decisions.append(decision)
            self.cluster.events.record(
                "autoscale_decision",
                action=decision.action,
                shard=decision.shard,
                at_request=at_request,
                reason=decision.reason,
            )
        return decision
