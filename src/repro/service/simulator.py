"""Closed-loop multi-client traffic against a sharded CLAM cluster.

The paper's motivating deployments (WAN optimizers, dedup farms, content
directories) serve many concurrent clients, each issuing its next request
only after the previous one completes — a *closed loop*.  The simulator
models M such clients over one :class:`~repro.service.cluster.ClusterService`:

* Each client owns a deterministic RNG and a Zipf-skewed key generator
  (:class:`repro.workloads.keygen.ZipfKeyGenerator`), so a few hot keys —
  and therefore a few hot shards — dominate, exactly the skew that makes
  load balancing interesting.
* Clients submit fixed-size batches; each batch's simulated completion time
  (the :class:`~repro.service.batch.BatchResult` makespan plus think time)
  advances that client's private timeline.  The client with the earliest
  timeline goes next, so submission interleaving emerges from the latencies
  themselves rather than a fixed round-robin.
* The report aggregates per-client and per-shard load, end-to-end request
  latency percentiles, and flags **hot shards** whose share of operations
  exceeds ``hot_shard_threshold`` times the mean.
* A **failure schedule** (a sequence of :class:`FailureEvent`\\ s) can crash,
  heal or recover shards at chosen request counts, turning the simulator
  into a deterministic fault-injection harness: the report then also carries
  the availability observed through the outage and any
  :class:`~repro.service.recovery.RecoveryReport`\\ s produced by scheduled
  recoveries.

Everything is deterministic given the spec's seed.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError, ShardUnavailableError
from repro.service.cluster import ClusterService, imbalance_factor
from repro.service.rebalance import AutoscaleDecision, AutoscalePolicy, KeyMigrator, MigrationReport
from repro.service.recovery import RecoveryCoordinator, RecoveryReport
from repro.workloads.keygen import ZipfKeyGenerator, fingerprint_for
from repro.workloads.metrics import LatencySummary, summarize_latencies
from repro.workloads.workload import Operation, OpKind


@dataclass(frozen=True)
class TrafficSpec:
    """Declarative description of a multi-client traffic pattern.

    Attributes
    ----------
    num_clients:
        Number of concurrent closed-loop clients.
    requests_per_client:
        Batched requests each client issues over the run.
    batch_size:
        Operations per request batch (1 = unbatched single operations).
    lookup_fraction / update_fraction / delete_fraction:
        Operation mix; the remainder are inserts of new keys.
    key_space:
        Distinct keys the Zipf generator draws from.
    zipf_skew:
        Zipf exponent; higher values concentrate traffic on fewer keys.
    value_size:
        Size of generated values in bytes.
    think_time_ms:
        Simulated client-side pause between a response and the next request.
    hot_shard_threshold:
        A shard is flagged hot when its operation share exceeds this multiple
        of the mean per-shard share.
    failure_timeout_ms:
        Simulated time a client loses on a request that fails with
        :class:`~repro.core.errors.ShardUnavailableError` (its timeout before
        giving up on the batch).
    seed:
        Master seed; each client derives an independent substream.
    """

    num_clients: int = 8
    requests_per_client: int = 50
    batch_size: int = 8
    lookup_fraction: float = 0.5
    update_fraction: float = 0.1
    delete_fraction: float = 0.0
    key_space: int = 5_000
    zipf_skew: float = 1.1
    value_size: int = 8
    think_time_ms: float = 0.0
    hot_shard_threshold: float = 1.5
    failure_timeout_ms: float = 1.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if self.requests_per_client <= 0:
            raise ValueError("requests_per_client must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for name in ("lookup_fraction", "update_fraction", "delete_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.lookup_fraction + self.update_fraction + self.delete_fraction > 1.0:
            raise ValueError("operation fractions must sum to at most 1")
        if self.key_space <= 0:
            raise ValueError("key_space must be positive")
        if self.zipf_skew <= 0:
            raise ValueError("zipf_skew must be positive")
        if self.value_size < 0:
            raise ValueError("value_size must be non-negative")
        if self.think_time_ms < 0:
            raise ValueError("think_time_ms must be non-negative")
        if self.hot_shard_threshold < 1.0:
            raise ValueError("hot_shard_threshold must be at least 1")
        if self.failure_timeout_ms < 0:
            raise ValueError("failure_timeout_ms must be non-negative")


#: Actions a :class:`FailureEvent` may take.
_FAILURE_ACTIONS = ("fail", "heal", "recover", "scale-out", "scale-in")


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled fault action during a traffic run.

    Attributes
    ----------
    at_request:
        Global request count (0-based) at which the event fires, just before
        that request is dispatched.
    action:
        ``"fail"`` injects a fault into ``shard_id``'s devices
        (:meth:`ClusterService.fail_shard`), ``"heal"`` clears it
        (:meth:`ClusterService.heal_shard`), ``"recover"`` runs a
        :class:`~repro.service.recovery.RecoveryCoordinator` pass over
        whatever shards the error counters have marked down, ``"scale-out"``
        starts an online migration onto a joining shard and ``"scale-in"``
        starts draining ``shard_id`` off the ring (both through the
        simulator's :class:`~repro.service.rebalance.KeyMigrator`, stepped
        between requests so the move overlaps live traffic).
    shard_id:
        Target shard (required for ``fail``/``heal``/``scale-in``; optional
        for ``scale-out``, which auto-names the joining shard; ignored by
        ``recover``).
    mode:
        Fault flavour for ``fail`` — see :meth:`ClusterService.fail_shard`.
    """

    at_request: int
    action: str
    shard_id: Optional[str] = None
    mode: str = "crash"

    def __post_init__(self) -> None:
        if self.at_request < 0:
            raise ConfigurationError("at_request must be non-negative")
        if self.action not in _FAILURE_ACTIONS:
            raise ConfigurationError(
                f"action must be one of {_FAILURE_ACTIONS}, got {self.action!r}"
            )
        if self.action in ("fail", "heal", "scale-in") and self.shard_id is None:
            raise ConfigurationError(f"{self.action!r} events need a shard_id")


@dataclass
class ClientReport:
    """One client's view of the run."""

    client_id: int
    requests: int = 0
    operations: int = 0
    finish_time_ms: float = 0.0
    request_latencies_ms: List[float] = field(default_factory=list)

    @property
    def mean_request_latency_ms(self) -> float:
        """Mean end-to-end latency of this client's requests."""
        if not self.request_latencies_ms:
            return 0.0
        return sum(self.request_latencies_ms) / len(self.request_latencies_ms)


@dataclass
class TrafficReport:
    """Aggregate outcome of one simulated traffic run."""

    spec: TrafficSpec
    operations: int = 0
    requests: int = 0
    duration_ms: float = 0.0
    clients: List[ClientReport] = field(default_factory=list)
    ops_per_shard: Dict[str, int] = field(default_factory=dict)
    busy_ms_per_shard: Dict[str, float] = field(default_factory=dict)
    hot_shards: List[str] = field(default_factory=list)
    dispatch_saved_ms: float = 0.0
    lookup_hits: int = 0
    lookups: int = 0
    #: Requests that failed with ShardUnavailableError (an outage window with
    #: too few live replicas); ``requests`` counts only successful ones.
    failed_requests: int = 0
    #: Schedule events that fired during the run, as (request_no, action, shard).
    fired_events: List[Tuple[int, str, Optional[str]]] = field(default_factory=list)
    #: Reports from scheduled ``recover`` events, in firing order.
    recovery_reports: List[RecoveryReport] = field(default_factory=list)
    #: Reports of migrations completed during the run (scheduled scale events
    #: and autoscaler decisions alike), in completion order.
    migrations: List[MigrationReport] = field(default_factory=list)
    #: Decisions the attached autoscale policy took during the run.
    autoscale_decisions: List[AutoscaleDecision] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Fraction of issued requests that completed (1.0 = no failures)."""
        issued = self.requests + self.failed_requests
        return self.requests / issued if issued else 1.0

    @property
    def throughput_ops_per_second(self) -> float:
        """Operations completed per simulated second of the whole run."""
        if self.duration_ms <= 0:
            return 0.0
        return self.operations / (self.duration_ms / 1000.0)

    @property
    def lookup_success_rate(self) -> float:
        """Fraction of lookups that found a value."""
        return self.lookup_hits / self.lookups if self.lookups else 0.0

    @property
    def imbalance_factor(self) -> float:
        """Hottest shard's operation share over the mean share."""
        return imbalance_factor(self.ops_per_shard.values())

    def request_latency_summary(self) -> LatencySummary:
        """Latency summary over every request in the run."""
        samples: List[float] = []
        for client in self.clients:
            samples.extend(client.request_latencies_ms)
        return summarize_latencies(samples)


def _value_for(key: bytes, size: int) -> bytes:
    """A deterministic ``size``-byte value derived from the key."""
    if size == 0:
        return b""
    return (key * (size // max(1, len(key)) + 1))[:size]


class _Client:
    """Deterministic operation source for one simulated client."""

    def __init__(self, client_id: int, spec: TrafficSpec) -> None:
        self.client_id = client_id
        self._spec = spec
        self._rng = random.Random((spec.seed << 8) ^ client_id)
        self._keys = ZipfKeyGenerator(
            key_space=spec.key_space,
            skew=spec.zipf_skew,
            seed=(spec.seed << 8) ^ (client_id + 0x9E37),
        )
        self._next_fresh = 0

    def next_batch(self) -> List[Operation]:
        spec = self._spec
        operations: List[Operation] = []
        for _ in range(spec.batch_size):
            draw = self._rng.random()
            if draw < spec.lookup_fraction:
                operations.append(Operation(OpKind.LOOKUP, self._keys.next_key()))
            elif draw < spec.lookup_fraction + spec.update_fraction:
                key = self._keys.next_key()
                operations.append(Operation(OpKind.UPDATE, key, self._value_for(key)))
            elif draw < spec.lookup_fraction + spec.update_fraction + spec.delete_fraction:
                operations.append(Operation(OpKind.DELETE, self._keys.next_key()))
            else:
                key = fingerprint_for(
                    self._next_fresh,
                    namespace=b"client-%d-%d" % (self.client_id, spec.seed),
                )
                self._next_fresh += 1
                operations.append(Operation(OpKind.INSERT, key, self._value_for(key)))
        return operations

    def _value_for(self, key: bytes) -> bytes:
        return _value_for(key, self._spec.value_size)


class TrafficSimulator:
    """Runs a :class:`TrafficSpec` against a cluster and reports the outcome.

    ``schedule`` is an optional sequence of :class:`FailureEvent`\\ s fired by
    global request count, making the simulator double as a deterministic
    failover harness (``benchmarks/bench_failover.py`` kills and recovers a
    shard mid-workload exactly this way).
    """

    def __init__(
        self,
        cluster: ClusterService,
        spec: Optional[TrafficSpec] = None,
        schedule: Optional[Sequence[FailureEvent]] = None,
        migrator: Optional[KeyMigrator] = None,
        autoscaler: Optional[AutoscalePolicy] = None,
    ) -> None:
        self.cluster = cluster
        self.spec = spec if spec is not None else TrafficSpec()
        self.schedule = sorted(schedule or (), key=lambda event: event.at_request)
        #: Coordinator shared by every scheduled ``recover`` event.
        self.recovery = RecoveryCoordinator(cluster)
        #: Migrator driving scheduled ``scale-out``/``scale-in`` events (and
        #: any :class:`~repro.service.rebalance.AutoscalePolicy` decisions);
        #: its :meth:`~repro.service.rebalance.KeyMigrator.step` is called
        #: once per dispatched request while a migration is in flight, so the
        #: move genuinely overlaps foreground traffic.
        if migrator is None and autoscaler is not None:
            migrator = autoscaler.migrator
        self.migrator = migrator if migrator is not None else KeyMigrator(cluster)
        #: Optional autoscale policy ticked on every dispatched request.
        self.autoscaler = autoscaler
        if autoscaler is not None and autoscaler.migrator is not self.migrator:
            raise ConfigurationError(
                "the autoscaler and the simulator must share one KeyMigrator "
                "(the simulator steps whatever migration the policy starts)"
            )

    def warmup(self, num_keys: Optional[int] = None) -> int:
        """Pre-populate the cluster with the hottest Zipf keys.

        Closed-loop lookup traffic against an empty cluster would miss on
        every key; inserting the ``num_keys`` most popular identifiers first
        gives lookups a realistic hit rate.  Returns the keys inserted.
        """
        spec = self.spec
        count = num_keys if num_keys is not None else min(spec.key_space, 1_000)
        operations = []
        for identifier in range(count):
            key = fingerprint_for(identifier)
            operations.append(Operation(OpKind.INSERT, key, _value_for(key, spec.value_size)))
        self.cluster.execute_batch(operations)
        return count

    def run(self) -> TrafficReport:
        """Execute the full closed-loop run and return the aggregate report."""
        spec = self.spec
        report = TrafficReport(spec=spec)
        clients = [_Client(client_id, spec) for client_id in range(spec.num_clients)]
        reports = [ClientReport(client_id=c.client_id) for c in clients]
        # Min-heap of (client_time_ms, client_id): the client whose timeline
        # is furthest behind submits next, like an event-driven scheduler.
        ready: List[Tuple[float, int]] = [(0.0, c.client_id) for c in clients]
        heapq.heapify(ready)
        remaining = [spec.requests_per_client] * spec.num_clients
        # Pre-seed every serving shard so idle shards count toward the mean in
        # imbalance and hot-shard calculations (all-zero entries are honest:
        # an idle shard is the strongest signal of imbalance).
        report.ops_per_shard = {shard_id: 0 for shard_id in self.cluster.shard_ids}
        report.busy_ms_per_shard = {shard_id: 0.0 for shard_id in self.cluster.shard_ids}

        # Telemetry (when the cluster has it enabled): request metrics go to
        # the cluster-level registry, and a baseline of each shard's registry
        # operation counter lets hot-shard detection read per-run deltas from
        # the registry instead of the report's private accounting.
        registry = self.cluster.telemetry
        request_hist = registry.histogram("request_latency_ms") if registry is not None else None
        self._ops_baseline = self._registry_ops_per_shard()

        issued = 0
        next_event = 0
        while ready:
            # Fire every schedule event due at this point in the request
            # stream, before the next request is dispatched.
            while next_event < len(self.schedule):
                event = self.schedule[next_event]
                if event.at_request > issued:
                    break
                next_event += 1
                self._fire_event(event, report)
            if self.autoscaler is not None:
                decision = self.autoscaler.tick(issued)
                if decision is not None:
                    report.autoscale_decisions.append(decision)
            if self.cluster.migration is not None:
                self.migrator.step()
            client_time, client_id = heapq.heappop(ready)
            client_report = reports[client_id]
            issued += 1
            try:
                batch = self.cluster.execute_batch(clients[client_id].next_batch())
            except ShardUnavailableError:
                # An outage window with too few live replicas: the request
                # times out; the client retires it and moves on.
                report.failed_requests += 1
                client_report.finish_time_ms = client_time + spec.failure_timeout_ms
                if registry is not None:
                    registry.counter("requests_failed").inc()
            else:
                latency = batch.makespan_ms
                if registry is not None:
                    registry.counter("requests_completed").inc()
                    registry.counter("operations_completed").inc(batch.operations)
                    request_hist.observe(latency)
                client_report.requests += 1
                client_report.operations += batch.operations
                client_report.request_latencies_ms.append(latency)
                client_report.finish_time_ms = client_time + latency
                report.requests += 1
                report.operations += batch.operations
                report.dispatch_saved_ms += batch.dispatch_saved_ms
                for shard_id, stats in batch.per_shard.items():
                    report.ops_per_shard[shard_id] = (
                        report.ops_per_shard.get(shard_id, 0) + stats.operations
                    )
                    report.busy_ms_per_shard[shard_id] = (
                        report.busy_ms_per_shard.get(shard_id, 0.0) + stats.busy_ms
                    )
                    report.lookups += stats.lookups
                    report.lookup_hits += stats.lookup_hits
            remaining[client_id] -= 1
            if remaining[client_id] > 0:
                heapq.heappush(
                    ready,
                    (client_report.finish_time_ms + spec.think_time_ms, client_id),
                )

        # Events scheduled at or beyond the final request count still fire
        # (in order) at end of run — a trailing "recover" must not be lost
        # just because the workload finished first.
        while next_event < len(self.schedule):
            self._fire_event(self.schedule[next_event], report)
            next_event += 1

        # A migration still in flight when the workload ends is drained: the
        # run's contract is that every started membership change completes
        # (or raises if it stalled with nowhere to place keys).
        if self.cluster.migration is not None:
            self.migrator.run_to_completion()
        report.migrations = list(self.migrator.reports)

        report.clients = reports
        report.duration_ms = max((c.finish_time_ms for c in reports), default=0.0)
        report.hot_shards = self._detect_hot_shards(report)
        return report

    def _fire_event(self, event: FailureEvent, report: TrafficReport) -> None:
        """Apply one scheduled fault action and record it in the report."""
        self.cluster.events.record(
            "schedule_fired",
            action=event.action,
            shard=event.shard_id,
            at_request=event.at_request,
        )
        if event.action == "fail":
            self.cluster.fail_shard(event.shard_id, mode=event.mode)
        elif event.action == "heal":
            self.cluster.heal_shard(event.shard_id)
        elif event.action in ("scale-out", "scale-in"):
            # One membership change at a time: a still-running migration is
            # drained before the next scheduled one starts.
            if self.cluster.migration is not None:
                self.migrator.run_to_completion()
            if event.action == "scale-out":
                self.migrator.start_add(event.shard_id)
            else:
                self.migrator.start_remove(event.shard_id)
        else:  # "recover"
            report.recovery_reports.append(self.recovery.recover())
        report.fired_events.append((event.at_request, event.action, event.shard_id))

    def _registry_ops_per_shard(self) -> Dict[str, float]:
        """Each shard's registry operation counter (empty without telemetry)."""
        if self.cluster.telemetry is None:
            return {}
        return {
            shard_id: clam.telemetry.counter("operations").value
            for shard_id, clam in self.cluster.shards.items()
            if clam.telemetry is not None
        }

    def _detect_hot_shards(self, report: TrafficReport) -> List[str]:
        if self.cluster.telemetry is not None:
            # Telemetry-enabled clusters are judged on what each shard's own
            # registry served during the run (the baseline subtracts warmup
            # and earlier runs); this also counts read-repair and handoff
            # work the report's batch accounting never sees.
            baseline = getattr(self, "_ops_baseline", {})
            loads = {
                shard_id: operations - baseline.get(shard_id, 0.0)
                for shard_id, operations in self._registry_ops_per_shard().items()
            }
        else:
            # run() pre-seeds ops_per_shard with every serving shard, so the
            # mean already reflects the whole fleet, idle shards included.
            loads = report.ops_per_shard
        if not loads:
            return []
        mean = sum(loads.values()) / len(loads)
        if mean == 0:
            return []
        threshold = self.spec.hot_shard_threshold * mean
        return sorted(
            shard_id for shard_id, operations in loads.items() if operations > threshold
        )
