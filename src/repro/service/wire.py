"""Length-prefixed binary wire protocol between the cluster and shard workers.

The process-per-shard deployment (:mod:`repro.service.parallel`) puts each
shard's CLAM behind a socket; this module defines the only bytes that cross
that boundary.  Every frame is::

    <u32 length> <u32 crc32> <u8 version> <u8 frame-type> <u32 seq> <payload...>

with all integers little-endian and all simulated-time floats as IEEE-754
doubles (``<d``), so clocks and latencies survive the round trip bit-exactly
— the bit-identical results contract of the parallel cluster depends on it.
The length prefix counts everything after itself (checksum, preamble, and
payload); the CRC-32 covers everything after the checksum field, so a flipped
bit anywhere in the version, type, sequence number, or payload surfaces as a
typed :class:`CorruptFrameError` instead of a garbage decode.  The sequence
number lets a request/response peer discard stale frames (duplicates injected
by a lossy transport, or the late answer to a request it already gave up on)
without desynchronising the stream.

Frame types:

``BATCH_REQUEST``
    A clock advance (the dispatch/routing cost the parent accrued against the
    shard's mirrored clock) plus an ordered list of operations.  Keys travel
    as :meth:`repro.core.hashing.KeyDigest.to_wire` payloads, carrying any
    seeded digests the client side already memoised.
``BATCH_RESPONSE``
    The per-operation result records (in request order, possibly truncated if
    the shard's device failed mid-batch), a typed error code for the first
    failure, and the worker clock's reading plus the batch's busy time.
``CONTROL_REQUEST`` / ``CONTROL_RESPONSE``
    Low-rate management traffic (counters, telemetry snapshots, fault
    injection, clean shutdown) as a JSON object — none of it is hot-path.

Error codes map worker-side exceptions back onto the service layer's typed
errors: ``ERR_DEVICE_FAILED`` re-raises as
:class:`~repro.core.errors.DeviceFailedError` (feeding replica failover and
hinted handoff exactly like an in-process device crash) and
``ERR_SHARD_UNAVAILABLE`` as
:class:`~repro.core.errors.ShardUnavailableError`.  Malformed frames raise
:class:`~repro.core.errors.WireProtocolError` subclasses:
:class:`TruncatedFrameError` when the peer hangs up mid-frame (how a killed
worker announces itself), :class:`OversizedFrameError` when a length prefix
exceeds :data:`MAX_FRAME_BYTES` (corruption or a desynchronised stream must
not turn into an attempted multi-gigabyte allocation), and
:class:`CorruptFrameError` when a frame's CRC-32 does not match its bytes.
The payload decoders are bounds-checked end to end: any flip or truncation a
fuzzer can produce decodes to a typed ``WireProtocolError`` subclass, never
a raw ``struct.error`` or ``UnicodeDecodeError``.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import DeviceFailedError, ShardUnavailableError, WireProtocolError
from repro.core.hashing import KeyDigest
from repro.core.results import DeleteResult, InsertResult, LookupResult, ServedFrom
from repro.workloads.workload import OpKind

__all__ = [
    "ERR_DEVICE_FAILED",
    "ERR_NONE",
    "ERR_SHARD_UNAVAILABLE",
    "ERR_UNEXPECTED",
    "FRAME_BATCH_REQUEST",
    "FRAME_BATCH_RESPONSE",
    "FRAME_CONTROL_REQUEST",
    "FRAME_CONTROL_RESPONSE",
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "CorruptFrameError",
    "OversizedFrameError",
    "TruncatedFrameError",
    "decode_batch_request",
    "decode_batch_response",
    "decode_control",
    "encode_batch_request",
    "encode_batch_response",
    "encode_control",
    "raise_for_code",
    "recv_frame",
    "send_frame",
]

#: Protocol version carried in every frame; bumped on any layout change.
#: v2 added the CRC-32 checksum and the per-frame sequence number.
WIRE_VERSION = 2

#: Hard ceiling on one frame's body.  Generously above any real batch (the
#: executor sub-batches per shard) while small enough that a corrupt length
#: prefix fails fast instead of exhausting memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

FRAME_BATCH_REQUEST = 1
FRAME_BATCH_RESPONSE = 2
FRAME_CONTROL_REQUEST = 3
FRAME_CONTROL_RESPONSE = 4

_FRAME_TYPES = (
    FRAME_BATCH_REQUEST,
    FRAME_BATCH_RESPONSE,
    FRAME_CONTROL_REQUEST,
    FRAME_CONTROL_RESPONSE,
)

#: Typed error codes carried in batch responses.
ERR_NONE = 0
ERR_DEVICE_FAILED = 1
ERR_SHARD_UNAVAILABLE = 2
ERR_UNEXPECTED = 3

_OP_CODES: Dict[OpKind, int] = {
    OpKind.LOOKUP: 0,
    OpKind.INSERT: 1,
    OpKind.UPDATE: 2,
    OpKind.DELETE: 3,
}
_CODE_OPS: Dict[int, OpKind] = {code: kind for kind, code in _OP_CODES.items()}

_SERVED_CODES: Dict[ServedFrom, int] = {
    ServedFrom.BUFFER: 0,
    ServedFrom.INCARNATION: 1,
    ServedFrom.DELETED: 2,
    ServedFrom.MISSING: 3,
}
_CODE_SERVED: Dict[int, ServedFrom] = {code: served for served, code in _SERVED_CODES.items()}

_RESULT_LOOKUP = 0
_RESULT_INSERT = 1
_RESULT_DELETE = 2

_HEADER = struct.Struct("<I")
_CRC = struct.Struct("<I")
#: version byte, frame-type byte, u32 sequence number.
_PREAMBLE = struct.Struct("<BBI")

ResultRecord = Union[LookupResult, InsertResult, DeleteResult]


class TruncatedFrameError(WireProtocolError):
    """Raised when the stream ends mid-frame — the peer died or hung up."""


class OversizedFrameError(WireProtocolError):
    """Raised when a length prefix exceeds :data:`MAX_FRAME_BYTES`."""


class CorruptFrameError(WireProtocolError):
    """Raised when a frame's CRC-32 does not match its bytes.

    Framing itself is intact (the length prefix was sane and the full body
    arrived), so the stream is still synchronised: the receiver may discard
    the frame and keep serving, and a request/response client may retry."""


def raise_for_code(code: int, message: str):
    """Re-raise a worker-reported error code as its typed exception."""
    if code == ERR_NONE:
        return
    if code == ERR_DEVICE_FAILED:
        raise DeviceFailedError(message)
    if code == ERR_SHARD_UNAVAILABLE:
        raise ShardUnavailableError(message)
    raise WireProtocolError(message or f"worker reported error code {code}")


# -- Framing ------------------------------------------------------------------------


def send_frame(sock, frame_type: int, payload: bytes, seq: int = 0) -> None:
    """Write one length-prefixed, checksummed frame to a connected socket."""
    body_len = len(payload) + _CRC.size + _PREAMBLE.size
    if body_len > MAX_FRAME_BYTES:
        raise OversizedFrameError(f"refusing to send {body_len}-byte frame (max {MAX_FRAME_BYTES})")
    covered = _PREAMBLE.pack(WIRE_VERSION, frame_type, seq) + payload
    sock.sendall(_HEADER.pack(body_len) + _CRC.pack(zlib.crc32(covered)) + covered)


def _recv_exact(sock, size: int) -> bytes:
    chunks: List[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            got = size - remaining
            raise TruncatedFrameError(f"stream ended after {got} of {size} frame bytes")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> Tuple[int, int, bytes]:
    """Read one frame; returns ``(frame_type, seq, payload)``.

    Raises :class:`TruncatedFrameError` on EOF mid-frame (including EOF after
    a partial length prefix), :class:`OversizedFrameError` on a length prefix
    past :data:`MAX_FRAME_BYTES`, :class:`CorruptFrameError` on a CRC-32
    mismatch (checked before the version and type bytes, which the checksum
    covers), and :class:`WireProtocolError` on a version or frame-type byte
    this implementation does not speak.
    """
    (body_len,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if body_len > MAX_FRAME_BYTES:
        raise OversizedFrameError(f"frame length {body_len} exceeds limit {MAX_FRAME_BYTES}")
    if body_len < _CRC.size + _PREAMBLE.size:
        raise WireProtocolError(f"frame body of {body_len} bytes is too short for a preamble")
    body = _recv_exact(sock, body_len)
    (expected_crc,) = _CRC.unpack_from(body)
    covered = body[_CRC.size :]
    actual_crc = zlib.crc32(covered)
    if actual_crc != expected_crc:
        raise CorruptFrameError(
            f"frame CRC mismatch (expected {expected_crc:#010x}, computed {actual_crc:#010x})"
        )
    version, frame_type, seq = _PREAMBLE.unpack_from(covered)
    if version != WIRE_VERSION:
        raise WireProtocolError(f"unsupported wire version {version} (speaking {WIRE_VERSION})")
    if frame_type not in _FRAME_TYPES:
        raise WireProtocolError(f"unknown frame type {frame_type}")
    return frame_type, seq, covered[_PREAMBLE.size :]


# -- Bounds-checked decoding helpers ------------------------------------------------


def _unpack(fmt: struct.Struct, payload: bytes, offset: int) -> tuple:
    """``Struct.unpack_from`` that raises a typed error on a short buffer."""
    try:
        return fmt.unpack_from(payload, offset)
    except struct.error as error:
        raise WireProtocolError(f"frame payload truncated: {error}") from error


def _take(payload: bytes, offset: int, size: int) -> Tuple[bytes, int]:
    """Slice ``size`` bytes at ``offset``, raising if the payload is short."""
    end = offset + size
    if size < 0 or end > len(payload):
        raise WireProtocolError(
            f"frame payload truncated: wanted {size} bytes at offset {offset}, "
            f"have {len(payload)} total"
        )
    return bytes(payload[offset:end]), end


_BATCH_REQ_HEAD = struct.Struct("<dI")
_OP_CODE = struct.Struct("<B")
_VALUE_LEN = struct.Struct("<I")
_RESULT_HEAD = struct.Struct("<BI")
_LOOKUP_TAIL = struct.Struct("<BIdBIII")
_INSERT_TAIL = struct.Struct("<dBdIII")
_DELETE_TAIL = struct.Struct("<dB")
_BATCH_RESP_HEAD = struct.Struct("<ddBII")


# -- Batch requests -----------------------------------------------------------------


def _encode_key(key) -> bytes:
    """Key bytes or a :class:`KeyDigest` as a digest wire payload."""
    if type(key) is KeyDigest:
        return key.to_wire()
    return KeyDigest(bytes(key)).to_wire()


def encode_batch_request(advance_ms: float, operations: Sequence[Tuple[OpKind, object, bytes]]):
    """Encode ``(kind, key, value)`` triples plus the pending clock advance."""
    parts = [_BATCH_REQ_HEAD.pack(advance_ms, len(operations))]
    for kind, key, value in operations:
        value_bytes = bytes(value)
        parts.append(_OP_CODE.pack(_OP_CODES[kind]))
        parts.append(_encode_key(key))
        parts.append(_VALUE_LEN.pack(len(value_bytes)))
        parts.append(value_bytes)
    return b"".join(parts)


def decode_batch_request(payload: bytes) -> Tuple[float, List[Tuple[OpKind, KeyDigest, bytes]]]:
    """Inverse of :func:`encode_batch_request`."""
    advance_ms, count = _unpack(_BATCH_REQ_HEAD, payload, 0)
    offset = _BATCH_REQ_HEAD.size
    operations: List[Tuple[OpKind, KeyDigest, bytes]] = []
    for _ in range(count):
        (op_code,) = _unpack(_OP_CODE, payload, offset)
        kind = _CODE_OPS.get(op_code)
        if kind is None:
            raise WireProtocolError(f"unknown operation code {op_code}")
        try:
            digest, offset = KeyDigest.from_wire(payload, offset + 1)
        except (struct.error, ValueError) as error:
            raise WireProtocolError(f"malformed key digest: {error}") from error
        (value_len,) = _unpack(_VALUE_LEN, payload, offset)
        value, offset = _take(payload, offset + _VALUE_LEN.size, value_len)
        operations.append((kind, digest, value))
    return advance_ms, operations


# -- Batch responses ----------------------------------------------------------------


def _encode_result(result: ResultRecord) -> bytes:
    if isinstance(result, LookupResult):
        value = result.value
        head = _RESULT_HEAD.pack(_RESULT_LOOKUP, len(result.key)) + result.key
        tail = _LOOKUP_TAIL.pack(
            1 if value is not None else 0,
            len(value) if value is not None else 0,
            result.latency_ms,
            _SERVED_CODES[result.served_from],
            result.flash_reads,
            result.incarnations_checked,
            result.false_positive_reads,
        )
        return head + tail + (value if value is not None else b"")
    if isinstance(result, InsertResult):
        return (
            _RESULT_HEAD.pack(_RESULT_INSERT, len(result.key))
            + result.key
            + _INSERT_TAIL.pack(
                result.latency_ms,
                1 if result.flushed else 0,
                result.flush_latency_ms,
                result.incarnations_tried,
                result.flash_writes,
                result.flash_reads,
            )
        )
    if isinstance(result, DeleteResult):
        return (
            _RESULT_HEAD.pack(_RESULT_DELETE, len(result.key))
            + result.key
            + _DELETE_TAIL.pack(result.latency_ms, 1 if result.removed_from_buffer else 0)
        )
    raise WireProtocolError(f"cannot serialise result type {type(result).__name__}")


def _decode_result(payload: bytes, offset: int) -> Tuple[ResultRecord, int]:
    record_type, key_len = _unpack(_RESULT_HEAD, payload, offset)
    key, offset = _take(payload, offset + _RESULT_HEAD.size, key_len)
    if record_type == _RESULT_LOOKUP:
        has_value, value_len, latency_ms, served_code, flash_reads, incarnations, fp_reads = (
            _unpack(_LOOKUP_TAIL, payload, offset)
        )
        offset += _LOOKUP_TAIL.size
        value: Optional[bytes] = None
        if has_value:
            value, offset = _take(payload, offset, value_len)
        served = _CODE_SERVED.get(served_code)
        if served is None:
            raise WireProtocolError(f"unknown served-from code {served_code}")
        return (
            LookupResult(key, value, latency_ms, served, flash_reads, incarnations, fp_reads),
            offset,
        )
    if record_type == _RESULT_INSERT:
        latency_ms, flushed, flush_latency_ms, tried, writes, reads = _unpack(
            _INSERT_TAIL, payload, offset
        )
        offset += _INSERT_TAIL.size
        return (
            InsertResult(key, latency_ms, bool(flushed), flush_latency_ms, tried, writes, reads),
            offset,
        )
    if record_type == _RESULT_DELETE:
        latency_ms, removed = _unpack(_DELETE_TAIL, payload, offset)
        offset += _DELETE_TAIL.size
        return DeleteResult(key, latency_ms, bool(removed)), offset
    raise WireProtocolError(f"unknown result record type {record_type}")


def encode_batch_response(
    results: Sequence[ResultRecord],
    error_code: int,
    error_message: str,
    clock_ms: float,
    busy_ms: float,
) -> bytes:
    """Encode results (request order, truncated at the first failure) + status."""
    message_bytes = error_message.encode("utf-8")
    parts = [
        _BATCH_RESP_HEAD.pack(clock_ms, busy_ms, error_code, len(message_bytes), len(results)),
        message_bytes,
    ]
    for result in results:
        parts.append(_encode_result(result))
    return b"".join(parts)


def decode_batch_response(payload: bytes) -> Tuple[List[ResultRecord], int, str, float, float]:
    """Inverse of :func:`encode_batch_response`.

    Returns ``(results, error_code, error_message, clock_ms, busy_ms)``.
    """
    clock_ms, busy_ms, error_code, message_len, result_count = _unpack(
        _BATCH_RESP_HEAD, payload, 0
    )
    message_bytes, offset = _take(payload, _BATCH_RESP_HEAD.size, message_len)
    try:
        message = message_bytes.decode("utf-8")
    except UnicodeDecodeError as error:
        raise WireProtocolError(f"malformed error message: {error}") from error
    results: List[ResultRecord] = []
    for _ in range(result_count):
        result, offset = _decode_result(payload, offset)
        results.append(result)
    return results, error_code, message, clock_ms, busy_ms


# -- Control frames -----------------------------------------------------------------


def encode_control(message: Dict[str, object]) -> bytes:
    """Encode a control message (JSON keeps this extensible off the hot path)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8")


def decode_control(payload: bytes) -> Dict[str, object]:
    """Inverse of :func:`encode_control`."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireProtocolError(f"malformed control frame: {error}") from error
    if not isinstance(message, dict):
        raise WireProtocolError("control frame must decode to a JSON object")
    return message
