"""Failure detection and re-replication for a replicated CLAM cluster.

When a shard of a :class:`~repro.service.cluster.ClusterService` crash-stops
(see :mod:`repro.flashsim.faults`), the replicated read/write paths keep
serving from the surviving replicas, but the cluster is left *under-
replicated*: every key whose preference list contained the dead shard now has
one copy fewer than ``replication_factor`` demands.  The
:class:`RecoveryCoordinator` closes that gap:

1. **Detect** — shards whose :class:`~repro.core.errors.DeviceFailedError`
   counters crossed the cluster's ``failure_threshold`` are reported down
   (:meth:`ClusterService.down_shard_ids`).
2. **Route around** — the dead shard is removed from the ring
   (:meth:`ShardRouter.remove_shard`), which yields the *exact* handoff arcs:
   every arc the dead shard owned is gained by a ring successor, so the set
   of keys that need work is precisely the set whose preference list
   contained the dead shard (the preference list is a prefix-stable chain;
   see :meth:`ShardRouter.preference_list`).
3. **Re-replicate** — for each affected key the coordinator reads the value
   from a surviving replica and writes it to the shards that newly joined
   the key's preference list, restoring full replication on the survivors.

Progress and outcome are captured in a :class:`RecoveryReport` and surfaced
through :meth:`~repro.service.cluster.ClusterStats.health`.  A key is *lost*
only when no surviving replica holds it — impossible for keys written with
``replication_factor >= 2`` unless that many replicas died at once, and the
condition ``keys_lost == 0`` is exactly what ``benchmarks/bench_failover.py``
asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.recovery import CrashRecoveryReport
from repro.service.cluster import ClusterService
from repro.service.router import HandoffStats


@dataclass
class RecoveryReport:
    """Outcome of one recovery pass over a set of failed shards."""

    #: Shards taken off the ring by this pass.
    failed_shards: Tuple[str, ...] = ()
    replication_factor: int = 1
    #: Cluster time when the pass started / total simulated time it took.
    started_ms: float = 0.0
    duration_ms: float = 0.0
    #: Total simulated shard-side work the pass performed (sum over shard
    #: clocks, :attr:`ClockEnsemble.busy_ms` delta) — nonzero even when the
    #: re-replication ran entirely on shards behind the cluster-time frontier.
    work_ms: float = 0.0
    #: Tracked keys examined for membership in a dead shard's replica set.
    keys_scanned: int = 0
    #: Keys whose preference list contained a failed shard.
    keys_affected: int = 0
    #: Affected keys whose replication was restored on the survivors.
    keys_re_replicated: int = 0
    #: Individual (key, shard) copies written while re-replicating.
    copies_written: int = 0
    #: Affected keys no surviving replica held (0 whenever the replication
    #: factor exceeded the number of simultaneous failures).
    keys_lost: int = 0
    #: Exact ring handoff recorded when each failed shard was removed.
    handoffs: List[HandoffStats] = field(default_factory=list)
    #: Keys each surviving shard gained during re-replication.
    keys_gained: Dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether every affected key kept at least one copy."""
        return self.keys_lost == 0


class RecoveryCoordinator:
    """Detects failed shards and restores replication on the survivors.

    The coordinator is deliberately stateless between passes apart from the
    report log: detection reads the cluster's error counters, and recovery
    drives the cluster's own membership and shard APIs, so it can be created
    on demand (the traffic simulator does exactly that for scheduled
    ``recover`` events).
    """

    def __init__(self, cluster: ClusterService) -> None:
        self.cluster = cluster
        #: Every report produced by this coordinator, oldest first.
        self.reports: List[RecoveryReport] = []

    def detect(self) -> Tuple[str, ...]:
        """Shards whose error counters crossed the failure threshold."""
        return self.cluster.down_shard_ids

    def recover(self, shard_ids: Optional[Iterable[str]] = None) -> RecoveryReport:
        """Take failed shards off the ring and re-replicate what they owned.

        ``shard_ids`` defaults to :meth:`detect`'s findings.  Returns the
        :class:`RecoveryReport`; also records it on the coordinator and as
        the cluster's ``last_recovery``.
        """
        cluster = self.cluster
        failed = tuple(shard_ids) if shard_ids is not None else self.detect()
        report = RecoveryReport(
            failed_shards=failed,
            replication_factor=cluster.replication_factor,
            started_ms=cluster.clock.now_ms,
        )
        started_busy_ms = cluster.clock.busy_ms
        if not failed:
            self._log(report)
            return report
        for shard_id in failed:
            if shard_id not in cluster.shards:
                raise ConfigurationError(f"shard {shard_id!r} not present")
        tracked = cluster.tracked_keys
        if tracked is None:
            raise ConfigurationError(
                "recovery needs the cluster's key catalog; construct the "
                "ClusterService with track_keys=True (on by default when "
                "replication_factor > 1)"
            )

        # Snapshot each tracked key's replica set *before* the ring changes:
        # the keys needing work are exactly those whose preference list
        # contained a failed shard.
        failed_set = set(failed)
        rf = cluster.replication_factor
        affected: List[Tuple[bytes, Tuple[str, ...]]] = []
        for key in sorted(tracked):
            report.keys_scanned += 1
            old_replicas = cluster.router.preference_list(key, rf)
            if failed_set.intersection(old_replicas):
                affected.append((key, old_replicas))
        report.keys_affected = len(affected)

        # Route around the dead shards: removing them from the ring hands
        # their arcs to ring successors, with the exact moved fractions
        # recorded per removal.
        for shard_id in failed:
            report.handoffs.append(cluster.remove_shard(shard_id))

        # Re-replicate: the preference list is a prefix-stable chain, so the
        # post-removal list is the old one minus the dead shards plus the
        # next distinct successors — precisely the shards that must receive
        # a copy.
        for key, old_replicas in affected:
            value = self._read_surviving_copy(key, old_replicas, failed_set)
            if value is None:
                report.keys_lost += 1
                continue
            new_members = [
                shard_id
                for shard_id in cluster.router.preference_list(key, rf)
                if shard_id not in old_replicas and cluster.is_live(shard_id)
            ]
            copied = 0
            for shard_id in new_members:
                if self._write_copy(shard_id, key, value):
                    copied += 1
                    report.keys_gained[shard_id] = report.keys_gained.get(shard_id, 0) + 1
            report.copies_written += copied
            report.keys_re_replicated += 1

        report.duration_ms = cluster.clock.now_ms - report.started_ms
        report.work_ms = cluster.clock.busy_ms - started_busy_ms
        self._log(report)
        return report

    def reopen_and_rejoin(
        self, shard_ids: Optional[Iterable[str]] = None
    ) -> Dict[str, CrashRecoveryReport]:
        """Recover power-cut persistent shards *in place* instead of removing them.

        The cheap path for a cluster on ``storage="persistent"``: a shard
        that lost power still has every acknowledged write on its backing
        file, so instead of taking it off the ring and re-replicating its
        whole key range (:meth:`recover`), each failed shard is reopened —
        running the CLAM crash-recovery scan — and rejoins at its old ring
        position, with only the writes it missed while down replayed from the
        hinted-handoff log.  Replication of DRAM-buffered writes lost in the
        cut is restored lazily by read-repair.

        ``shard_ids`` defaults to :meth:`detect`'s findings.  Returns each
        shard's :class:`~repro.core.recovery.CrashRecoveryReport`.
        """
        cluster = self.cluster
        failed = tuple(shard_ids) if shard_ids is not None else self.detect()
        reports: Dict[str, CrashRecoveryReport] = {}
        for shard_id in failed:
            reports[shard_id] = cluster.reopen_shard(shard_id)
        if reports:
            cluster.recoveries += 1
            cluster.events.record(
                "reopen_rejoin",
                shards=list(reports),
                entries_rebuilt=sum(r.entries_rebuilt for r in reports.values()),
                log_records_replayed=sum(r.log_records_replayed for r in reports.values()),
            )
        return reports

    # -- Shard-level plumbing ------------------------------------------------------------

    def _read_surviving_copy(
        self, key: bytes, old_replicas: Tuple[str, ...], failed_set: set
    ) -> Optional[bytes]:
        """The key's value from the first surviving replica that holds it.

        Dispatch accounting and failure counting go through the cluster's
        :meth:`~repro.service.cluster.ClusterService._shard_op`, the same
        plumbing every other dispatched operation uses.
        """
        cluster = self.cluster
        for shard_id in old_replicas:
            if shard_id in failed_set or not cluster.is_live(shard_id):
                continue
            result = cluster._shard_op(shard_id, "lookup", key)
            if result is not None and result.found:
                return result.value
        return None

    def _write_copy(self, shard_id: str, key: bytes, value: bytes) -> bool:
        """Install one replica copy; False if the target failed mid-write."""
        return self.cluster._shard_op(shard_id, "insert", key, value) is not None

    def _log(self, report: RecoveryReport) -> None:
        self.reports.append(report)
        cluster = self.cluster
        cluster.last_recovery = report
        if report.failed_shards:
            cluster.recoveries += 1
            cluster.events.record(
                "recovery",
                shards=list(report.failed_shards),
                keys_re_replicated=report.keys_re_replicated,
                copies_written=report.copies_written,
                keys_lost=report.keys_lost,
                duration_ms=report.duration_ms,
            )
