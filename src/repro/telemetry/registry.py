"""Metrics registry: counters, gauges and mergeable fixed-bucket histograms.

The paper evaluates CLAM almost entirely through latency distributions and
per-operation I/O counts (Figures 4-7, Table 2).  This module is the
substrate those numbers flow through: every shard owns a
:class:`MetricsRegistry`, histograms over the simulated clock's millisecond
time base are **mergeable** across shards (bucket-wise addition over a shared
set of boundaries), and the whole registry exports as a JSON snapshot or a
Prometheus text dump.

Design constraints, in order:

* **Zero-alloc hot path.**  ``LatencyHistogram.observe`` is a bisect into a
  pre-built boundary tuple plus a handful of scalar updates — no per-sample
  storage, no dict lookups.  Callers cache the histogram object once (CLAM
  holds ``self._tel_lookup`` etc.) so the per-operation cost when telemetry
  is enabled is one attribute read + one method call.
* **Merge exactness.**  Two histograms over the same boundaries merge by
  adding bucket counts, so ``merge(A, B)`` is *bit-identical* to the
  histogram of the concatenated stream and any percentile estimate agrees
  with the whole-stream estimate within one bucket width (property-tested in
  ``tests/test_telemetry.py``).
* **Conservative percentiles.**  ``percentile`` returns the upper edge of
  the bucket holding the requested rank (clamped to the observed max), i.e.
  an upper bound on the true percentile — the right direction to err for
  tail-latency reporting.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "default_latency_buckets",
]

#: Percentiles every histogram snapshot reports, matching the paper's
#: distribution-centric evaluation (median through extreme tail).
REPORTED_PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
    ("p999", 0.999),
)


def default_latency_buckets(
    low_ms: float = 1e-4, high_ms: float = 1e4, per_decade: int = 10
) -> Tuple[float, ...]:
    """Log-spaced bucket upper edges covering ``[low_ms, high_ms]``.

    The simulated latencies span DRAM probes (~1e-3 ms) to multi-object WAN
    round trips (~1e3 ms); ten buckets per decade keeps the relative error of
    any bucket-edge percentile under ~26% (one bucket width, 10^0.1).
    """
    if low_ms <= 0 or high_ms <= low_ms:
        raise ValueError("need 0 < low_ms < high_ms")
    decades = math.log10(high_ms / low_ms)
    steps = int(round(decades * per_decade))
    edges = [low_ms * 10 ** (i / per_decade) for i in range(steps + 1)]
    # Round away float-noise so independently built boundary tuples compare equal.
    return tuple(float(f"{edge:.6g}") for edge in edges)


_DEFAULT_BUCKETS = default_latency_buckets()


class Counter:
    """Monotonically increasing scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Point-in-time scalar (live shard count, buffer occupancy, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> float:
        return self.value


class LatencyHistogram:
    """Fixed-boundary latency histogram on the simulated-ms time base.

    ``counts`` has ``len(boundaries) + 1`` slots: ``counts[i]`` holds samples
    with ``value <= boundaries[i]`` (after ``counts[i-1]``'s range), and the
    final slot is the overflow bucket for samples above the last edge.
    """

    __slots__ = ("name", "boundaries", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, boundaries: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.boundaries: Tuple[float, ...] = (
            _DEFAULT_BUCKETS if boundaries is None else tuple(boundaries)
        )
        if list(self.boundaries) != sorted(self.boundaries) or not self.boundaries:
            raise ValueError("boundaries must be a non-empty ascending sequence")
        self.counts: List[int] = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value_ms: float) -> None:
        """Record one sample.  Hot path: no allocation, no branching on config."""
        self.counts[bisect_left(self.boundaries, value_ms)] += 1
        self.count += 1
        self.sum += value_ms
        if value_ms < self.min:
            self.min = value_ms
        if value_ms > self.max:
            self.max = value_ms

    # -- Estimation -------------------------------------------------------------------

    def percentile(self, fraction: float) -> float:
        """Upper bound on the ``fraction`` percentile (bucket upper edge).

        Uses the nearest-rank definition: the smallest recorded value such
        that at least ``fraction`` of samples are <= it, then rounds up to
        the containing bucket's upper edge (clamped to the observed max so
        p999 never exceeds the worst sample).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(fraction * self.count))
        index = self._bucket_for_rank(rank)
        if index < len(self.boundaries):
            return min(self.boundaries[index], self.max)
        return self.max

    def _bucket_for_rank(self, rank: int) -> int:
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return index
        return len(self.counts) - 1

    def percentiles(self) -> Dict[str, float]:
        return {label: self.percentile(fraction) for label, fraction in REPORTED_PERCENTILES}

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # -- Merging ----------------------------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (exact: bucket-wise addition)."""
        if other.boundaries != self.boundaries:
            raise ValueError(
                f"cannot merge histograms with different boundaries "
                f"({self.name!r} vs {other.name!r})"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @classmethod
    def merged(
        cls, name: str, histograms: Iterable["LatencyHistogram"]
    ) -> "LatencyHistogram":
        """A fresh histogram equal to the fold of ``histograms``."""
        result: Optional[LatencyHistogram] = None
        for histogram in histograms:
            if result is None:
                result = cls(name, histogram.boundaries)
            result.merge(histogram)
        return result if result is not None else cls(name)

    @classmethod
    def from_snapshot(cls, name: str, data: Dict[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram from a :meth:`snapshot` taken with buckets.

        This is the worker-to-parent half of per-process telemetry: a shard
        worker snapshots its registry (``include_buckets=True``), ships the
        JSON over the wire, and the parent rebuilds histograms it can merge
        exactly.  Bucket arrays are required — without them the merge could
        not be exact.
        """
        edges = data.get("bucket_edges_ms")
        counts = data.get("bucket_counts")
        if edges is None or counts is None:
            raise ValueError(
                f"histogram snapshot for {name!r} has no bucket arrays; "
                "snapshot with include_buckets=True to make it mergeable"
            )
        histogram = cls(name, edges)
        if len(counts) != len(histogram.counts):
            raise ValueError(f"histogram snapshot for {name!r} has mismatched bucket counts")
        histogram.counts = [int(c) for c in counts]
        histogram.count = int(data["count"])
        histogram.sum = float(data["sum_ms"])
        if histogram.count:
            histogram.min = float(data["min_ms"])
            histogram.max = float(data["max_ms"])
        return histogram

    # -- Export -----------------------------------------------------------------------

    def snapshot(self, include_buckets: bool = False) -> Dict[str, object]:
        """JSON-friendly view; bucket arrays only on request (they are long)."""
        empty = self.count == 0
        data: Dict[str, object] = {
            "count": self.count,
            "sum_ms": self.sum,
            "mean_ms": self.mean,
            "min_ms": 0.0 if empty else self.min,
            "max_ms": 0.0 if empty else self.max,
            "percentiles_ms": self.percentiles(),
        }
        if include_buckets:
            data["bucket_edges_ms"] = list(self.boundaries)
            data["bucket_counts"] = list(self.counts)
        return data


def _prometheus_name(name: str) -> str:
    """Sanitise a metric name into the Prometheus charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return "{" + inner + "}"


class MetricsRegistry:
    """Named counters, gauges and histograms with get-or-create accessors."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> LatencyHistogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LatencyHistogram(name, boundaries)
        return histogram

    # -- Merging ----------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s metrics into this registry, name-wise."""
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).add(gauge.value)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.boundaries).merge(histogram)

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        result = cls()
        for registry in registries:
            result.merge(registry)
        return result

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` taken with buckets.

        Counters and gauges restore exactly; histograms restore bucket-wise
        (see :meth:`LatencyHistogram.from_snapshot`), so merging restored
        per-worker registries is bit-identical to merging the live ones.
        """
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).inc(float(value))
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).set(float(value))
        for name, histogram_data in data.get("histograms", {}).items():
            registry._histograms[name] = LatencyHistogram.from_snapshot(name, histogram_data)
        return registry

    # -- Export -----------------------------------------------------------------------

    def snapshot(self, include_buckets: bool = False) -> Dict[str, object]:
        """JSON-friendly dump of every metric in the registry."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.snapshot(include_buckets=include_buckets)
                for name, h in sorted(self._histograms.items())
            },
        }

    def to_prometheus(
        self, prefix: str = "repro", labels: Optional[Dict[str, str]] = None
    ) -> str:
        """Prometheus text exposition format (for process-per-shard scraping).

        Histograms use the standard cumulative ``_bucket{le=...}`` encoding so
        a real Prometheus server could compute the same quantiles we report.
        """
        label_text = _format_labels(labels)
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = f"{prefix}_{_prometheus_name(name)}"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}{label_text} {counter.value:g}")
        for name, gauge in sorted(self._gauges.items()):
            metric = f"{prefix}_{_prometheus_name(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{label_text} {gauge.value:g}")
        for name, histogram in sorted(self._histograms.items()):
            metric = f"{prefix}_{_prometheus_name(name)}"
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for edge, bucket_count in zip(histogram.boundaries, histogram.counts):
                cumulative += bucket_count
                bucket_labels = dict(labels or {})
                bucket_labels["le"] = f"{edge:g}"
                lines.append(f"{metric}_bucket{_format_labels(bucket_labels)} {cumulative}")
            bucket_labels = dict(labels or {})
            bucket_labels["le"] = "+Inf"
            lines.append(f"{metric}_bucket{_format_labels(bucket_labels)} {histogram.count}")
            lines.append(f"{metric}_sum{label_text} {histogram.sum:g}")
            lines.append(f"{metric}_count{label_text} {histogram.count}")
        return "\n".join(lines) + "\n"
