"""Snapshot envelope assembly and file export.

Every telemetry consumer — ``--telemetry-out`` dumps, the ``telemetry`` key
embedded in ``BENCH_*.json``, CI's schema check — shares one envelope shape,
built here and described by ``telemetry_schema.json``:

* ``registry``: the cluster-wide view (per-shard registries merged, plus any
  cluster-level metrics such as request counters);
* ``per_shard``: each shard's own registry, for the per-shard percentile
  tables;
* ``events``: the :class:`~repro.telemetry.events.EventLog` in sequence
  order;
* ``trace`` (optional): a :class:`~repro.telemetry.trace.Tracer` snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

from repro.telemetry.events import EventLog
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import Tracer

__all__ = ["SNAPSHOT_SCHEMA_VERSION", "build_snapshot", "write_snapshot"]

SNAPSHOT_SCHEMA_VERSION = 1


def build_snapshot(
    registry: Optional[MetricsRegistry] = None,
    per_shard: Optional[Dict[str, MetricsRegistry]] = None,
    events: Optional[EventLog] = None,
    tracer: Optional[Tracer] = None,
    include_buckets: bool = True,
    extra_registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Assemble the standard snapshot envelope.

    ``registry`` is the cluster-wide registry; when omitted it is derived by
    merging ``per_shard`` (and ``extra_registry``, e.g. a cluster-level
    registry holding request counters).  ``enabled`` reflects whether any
    metrics were collected at all — an envelope from a telemetry-disabled run
    still carries the always-on event log.
    """
    shards = per_shard or {}
    if registry is None:
        sources = [reg for reg in shards.values() if reg is not None]
        if extra_registry is not None:
            sources.append(extra_registry)
        registry = MetricsRegistry.merged(sources)
    elif extra_registry is not None:
        merged = MetricsRegistry.merged([registry, extra_registry])
        registry = merged
    enabled = bool(shards) or any(registry.snapshot()["counters"]) or bool(
        registry.snapshot()["histograms"]
    )
    snapshot: Dict[str, object] = {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "enabled": enabled,
        "registry": registry.snapshot(include_buckets=include_buckets),
        "per_shard": {
            shard_id: reg.snapshot(include_buckets=include_buckets)
            for shard_id, reg in sorted(shards.items())
            if reg is not None
        },
        "events": events.snapshot() if events is not None else [],
    }
    if tracer is not None:
        snapshot["trace"] = tracer.snapshot()
    return snapshot


def write_snapshot(path, snapshot: Dict[str, object]) -> Path:
    """Write a snapshot envelope as indented JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(snapshot, indent=2, sort_keys=False) + "\n")
    return target
