"""Lightweight span tracing on the simulated clock.

One WAN object transfer touches a branch clock, a cluster clock ensemble,
per-shard device clocks and the flash devices underneath — this module ties
those into a single causal tree: a ``trace_id`` shared by every span of one
root operation, ``span_id``/``parent_id`` links for the tree shape, and
start/end times read from whichever simulated clock the instrumented layer
runs on.

Instrumentation sites pay for tracing **only when a tracer is installed**:
the module-level :data:`ACTIVE` is ``None`` by default and every hook is
guarded by ``if _trace.ACTIVE is not None`` — one module attribute read and
one identity check on the hot path, nothing else.  The tracer itself is
synchronous and single-threaded (like the simulation), so parent context is
a plain stack rather than thread-locals.

Typical use::

    tracer = Tracer()
    with tracing(tracer):
        topology.process_branch_object("branch-0", obj)
    tree = tracer.span_tree()   # branch.object -> cluster.batch -> shard.batch -> ...
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["ACTIVE", "Span", "Tracer", "tracing"]


class Span:
    """One timed node of a trace tree.

    ``start_ms``/``end_ms`` are readings of the clock the instrumented code
    runs on (simulated milliseconds); spans from different clock domains keep
    their own time base, with the owning clock named in ``attributes`` when
    the instrumentation site provides it.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start_ms", "end_ms", "attributes")

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_ms: float,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.end_ms = start_ms
        self.attributes: Dict[str, object] = {}

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.start_ms:.3f}..{self.end_ms:.3f}ms)"
        )


def _now(clock) -> float:
    """Read a simulated clock; tolerate clock-less call sites (tests, stubs)."""
    return clock.now_ms if clock is not None else 0.0


class Tracer:
    """Collects spans; parenthood follows the open-span stack.

    Span and trace ids are small deterministic integers (the simulation is
    deterministic, so traces diff cleanly across runs).  A span opened while
    no other span is open starts a **new trace**; everything opened inside it
    shares its ``trace_id``.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_span_id = 1
        self._next_trace_id = 1

    # -- Recording --------------------------------------------------------------------

    def begin(self, name: str, clock=None, **attributes) -> Span:
        """Open a span; it becomes the parent of spans begun before its end."""
        if self._stack:
            parent = self._stack[-1]
            trace_id = parent.trace_id
            parent_id: Optional[int] = parent.span_id
        else:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        span = Span(trace_id, self._next_span_id, parent_id, name, _now(clock))
        self._next_span_id += 1
        if attributes:
            span.attributes.update(attributes)
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, clock=None) -> None:
        """Close ``span`` (and any forgotten children still open under it).

        Ending a span that is no longer on the open stack (already ended, or
        opened under a different tracer) only stamps its end time — it must
        not pop unrelated spans, or one double-``end`` on an exception path
        would orphan every span the *next* operation opens.
        """
        span.end_ms = max(span.start_ms, _now(clock))
        if not any(open_span is span for open_span in self._stack):
            return
        while self._stack:
            open_span = self._stack.pop()
            if open_span is span:
                break

    @contextmanager
    def span(self, name: str, clock=None, **attributes) -> Iterator[Span]:
        """Context-manager convenience around :meth:`begin`/:meth:`end`."""
        opened = self.begin(name, clock, **attributes)
        try:
            yield opened
        finally:
            self.end(opened, clock)

    def event(self, name: str, clock=None, duration_ms: float = 0.0, **attributes) -> Span:
        """Record a leaf span for work that already happened.

        Device I/O advances its clock before the hook runs, so the event's
        window is ``[now - duration_ms, now]`` on that clock.
        """
        end_ms = _now(clock)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            trace_id = parent.trace_id
            parent_id: Optional[int] = parent.span_id
        else:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        span = Span(trace_id, self._next_span_id, parent_id, name, end_ms - duration_ms)
        self._next_span_id += 1
        span.end_ms = end_ms
        if attributes:
            span.attributes.update(attributes)
        self.spans.append(span)
        return span

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- Querying ---------------------------------------------------------------------

    def roots(self) -> List[Span]:
        return [span for span in self.spans if span.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def descendants(self, span: Span) -> List[Span]:
        """Every span strictly below ``span`` in its tree."""
        found: List[Span] = []
        frontier = [span]
        by_parent: Dict[int, List[Span]] = {}
        for candidate in self.spans:
            if candidate.parent_id is not None:
                by_parent.setdefault(candidate.parent_id, []).append(candidate)
        while frontier:
            node = frontier.pop()
            for child in by_parent.get(node.span_id, ()):
                found.append(child)
                frontier.append(child)
        return found

    def find(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def span_tree(self) -> List[Dict[str, object]]:
        """Nested dict view of every trace, roots first (JSON-exportable)."""
        nodes = {span.span_id: dict(span.to_dict(), children=[]) for span in self.spans}
        trees: List[Dict[str, object]] = []
        for span in self.spans:
            node = nodes[span.span_id]
            if span.parent_id is not None and span.parent_id in nodes:
                nodes[span.parent_id]["children"].append(node)
            else:
                trees.append(node)
        return trees

    def snapshot(self) -> Dict[str, object]:
        """Flat span list plus the nested tree, for ``--telemetry-out`` dumps."""
        return {
            "spans": [span.to_dict() for span in self.spans],
            "trees": self.span_tree(),
        }


#: The installed tracer, or ``None`` (the default: tracing fully disabled).
#: Hot paths read this exactly once per operation.
ACTIVE: Optional[Tracer] = None


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as :data:`ACTIVE` for the duration of the block."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer
    try:
        yield tracer
    finally:
        ACTIVE = previous
