"""Telemetry snapshot schema and a dependency-free validator.

The container bakes in no ``jsonschema`` package, so CI validates telemetry
dumps with this minimal validator instead.  It implements exactly the JSON
Schema subset ``telemetry_schema.json`` uses: ``type`` (scalar or union),
``properties``/``required``/``additionalProperties``, ``items``, ``enum``,
``minimum`` and ``$ref`` into ``#/$defs``.

Run as a module to validate a dump from the command line::

    python -m repro.telemetry.schema BENCH_telemetry.json
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

__all__ = ["SchemaError", "load_schema", "validate", "validate_snapshot"]

_SCHEMA_PATH = Path(__file__).with_name("telemetry_schema.json")


class SchemaError(ValueError):
    """Raised when an instance does not conform to the schema."""


def load_schema() -> Dict:
    """The checked-in telemetry snapshot schema."""
    return json.loads(_SCHEMA_PATH.read_text())


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _resolve_ref(ref: str, root: Dict) -> Dict:
    if not ref.startswith("#/"):
        raise SchemaError(f"unsupported $ref target {ref!r} (only '#/...' is implemented)")
    node = root
    for part in ref[2:].split("/"):
        if not isinstance(node, dict) or part not in node:
            raise SchemaError(f"$ref {ref!r} does not resolve")
        node = node[part]
    return node


def _check(instance, schema: Dict, root: Dict, path: str, errors: List[str]) -> None:
    if "$ref" in schema:
        _check(instance, _resolve_ref(schema["$ref"], root), root, path, errors)
        return

    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[name](instance) for name in allowed):
            errors.append(f"{path}: expected type {'/'.join(allowed)}, got {type(instance).__name__}")
            return

    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']!r}")

    if "minimum" in schema and isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance!r} below minimum {schema['minimum']!r}")

    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties")
        for key, value in instance.items():
            child_path = f"{path}.{key}"
            if key in properties:
                _check(value, properties[key], root, child_path, errors)
            elif isinstance(additional, dict):
                _check(value, additional, root, child_path, errors)
            elif additional is False:
                errors.append(f"{path}: unexpected key {key!r}")

    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            _check(item, schema["items"], root, f"{path}[{index}]", errors)


def validate(instance, schema: Dict) -> None:
    """Raise :class:`SchemaError` listing every violation, or return quietly."""
    errors: List[str] = []
    _check(instance, schema, schema, "$", errors)
    if errors:
        raise SchemaError("; ".join(errors))


def validate_snapshot(snapshot: Dict) -> None:
    """Validate a telemetry snapshot envelope against the checked-in schema."""
    validate(snapshot, load_schema())


def _main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.telemetry.schema SNAPSHOT.json")
        return 2
    payload = json.loads(Path(argv[0]).read_text())
    # Accept either a bare snapshot or a BENCH_*.json record embedding one.
    snapshot = payload.get("telemetry", payload) if isinstance(payload, dict) else payload
    try:
        validate_snapshot(snapshot)
    except SchemaError as exc:
        print(f"INVALID: {exc}")
        return 1
    print(f"OK: {argv[0]} conforms to the telemetry snapshot schema")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI subprocess
    import sys

    raise SystemExit(_main(sys.argv[1:]))
