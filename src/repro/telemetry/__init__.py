"""Unified telemetry plane: metrics, tracing and the cluster event log.

Three coordinated pieces, all running on the simulated clock:

* :mod:`repro.telemetry.registry` — counters, gauges and mergeable
  fixed-bucket latency histograms (:class:`MetricsRegistry`), with JSON and
  Prometheus-text exporters.  Enabled per shard via
  ``CLAMConfig(telemetry_enabled=True)``; the hot path is untouched when
  disabled.
* :mod:`repro.telemetry.trace` — span tracing (:class:`Tracer`) threaded
  through CLAM -> flash device I/O and ClusterService -> BatchExecutor ->
  CompressionEngine, activated only inside a ``with tracing(tracer):`` block.
* :mod:`repro.telemetry.events` — the always-on :class:`EventLog` of shard
  up/down transitions, hinted-handoff replay, recovery and failure
  injections.

:mod:`repro.telemetry.export` assembles the standard snapshot envelope and
:mod:`repro.telemetry.schema` validates it (``python -m
repro.telemetry.schema FILE``).
"""

from repro.telemetry.events import Event, EventLog
from repro.telemetry.export import SNAPSHOT_SCHEMA_VERSION, build_snapshot, write_snapshot
from repro.telemetry.registry import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    default_latency_buckets,
)
from repro.telemetry.schema import SchemaError, load_schema, validate, validate_snapshot
from repro.telemetry.trace import ACTIVE, Span, Tracer, tracing

__all__ = [
    "ACTIVE",
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA_VERSION",
    "SchemaError",
    "Span",
    "Tracer",
    "build_snapshot",
    "default_latency_buckets",
    "load_schema",
    "tracing",
    "validate",
    "validate_snapshot",
    "write_snapshot",
]
