"""Structured cluster event log with monotonic sequence numbers.

Fault-tolerance behaviour — shard failure detection, hinted-handoff replay,
recovery re-replication, injected :class:`~repro.service.simulator.FailureEvent`
firings — was previously visible only as aggregate counters, which cannot
answer "what happened, in what order?".  The :class:`EventLog` records each
transition as a timestamped, sequence-numbered event so a failover drill can
be replayed and asserted on step by step.

Events are rare (a handful per run, vs. millions of index operations), so
the log is always on: it needs no ``telemetry_enabled`` gate.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

__all__ = ["Event", "EventLog"]


class Event:
    """One recorded transition."""

    __slots__ = ("seq", "time_ms", "kind", "attributes")

    def __init__(self, seq: int, time_ms: float, kind: str, attributes: Dict[str, object]):
        self.seq = seq
        self.time_ms = time_ms
        self.kind = kind
        self.attributes = attributes

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "time_ms": self.time_ms,
            "kind": self.kind,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(#{self.seq} @{self.time_ms:.3f}ms {self.kind} {self.attributes})"


class EventLog:
    """Append-only event record.

    ``seq`` is assigned at record time and strictly increases, giving a total
    order even when several events share a simulated timestamp (e.g. a
    failure injection and the resulting shard-down detection in the same
    batch).
    """

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self._events: List[Event] = []
        self._next_seq = 0

    def record(self, kind: str, clock=None, **attributes) -> Event:
        """Append an event, stamped from ``clock`` (or the default clock)."""
        source = clock if clock is not None else self._clock
        time_ms = source.now_ms if source is not None else 0.0
        event = Event(self._next_seq, time_ms, kind, dict(attributes))
        self._next_seq += 1
        self._events.append(event)
        return event

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Events in sequence order, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def kinds(self) -> List[str]:
        """Distinct kinds in first-occurrence order."""
        seen: List[str] = []
        for event in self._events:
            if event.kind not in seen:
                seen.append(event.kind)
        return seen

    def snapshot(self) -> List[Dict[str, object]]:
        return [event.to_dict() for event in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)
