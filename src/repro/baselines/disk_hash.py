"""Berkeley-DB-style external hash index (the ``DB+SSD`` / ``DB+Disk`` baseline).

Berkeley-DB's hash access method stores buckets in pages on the underlying
device and, without any write buffering, each insertion dirties and writes
one (essentially random) page, and each lookup reads one random page.  That
I/O pattern is exactly what makes the baseline slow in the paper: on a
magnetic disk every operation pays a seek (~7 ms), and on an SSD the
sustained stream of small random writes forces the drive into foreground
garbage collection (§7.2.2).

We reproduce the behaviour, not the Berkeley-DB code: keys hash to a bucket
page, bucket pages store entries inline, overflow pages chain off full
buckets, and a small in-memory cache of hot pages (the "DB cache") absorbs
repeated accesses to the same bucket, as BDB's default cache does.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.hashing import KeyLike, hash_key, to_key_bytes
from repro.core.results import (
    DeleteResult,
    InsertResult,
    LookupResult,
    OperationStats,
    ServedFrom,
)
from repro.flashsim.clock import SimulationClock
from repro.flashsim.device import StorageDevice


class ExternalHashIndex:
    """On-device hash index with one random page I/O per operation.

    Parameters
    ----------
    device:
        The SSD or magnetic disk holding the index pages.
    num_buckets:
        Number of primary bucket pages; defaults to 1/4 of the device pages
        (leaving room for overflow pages).
    cache_pages:
        In-memory page cache entries (LRU).  Writes are write-through, as in
        a BDB store configured for durability.
    in_memory_filter:
        Optional Bloom-filter-like set of present keys used to suppress reads
        for keys that were never inserted (the paper notes BDB could be
        supplemented with such a filter; disabled by default).
    """

    #: Simulated CPU cost of hashing the key and searching a cached page.
    MEMORY_COST_MS = 0.004

    def __init__(
        self,
        device: StorageDevice,
        num_buckets: Optional[int] = None,
        cache_pages: int = 64,
        in_memory_filter: bool = False,
        entries_per_page: int = 24,
        keep_latency_samples: bool = True,
    ) -> None:
        self.device = device
        self.clock: SimulationClock = device.clock
        total_pages = device.geometry.total_pages
        if num_buckets is None:
            num_buckets = max(16, total_pages // 4)
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.num_buckets = min(num_buckets, max(16, total_pages // 2))
        self.entries_per_page = entries_per_page
        self.cache_pages = cache_pages
        self.stats = OperationStats(keep_samples=keep_latency_samples)

        # Bucket page contents are mirrored in memory for correctness checking;
        # every access still pays device I/O unless the page is cached.
        self._pages: Dict[int, Dict[bytes, bytes]] = {}
        self._overflow: Dict[int, List[int]] = {}
        self._next_overflow_page = self.num_buckets
        self._cache: OrderedDict[int, None] = OrderedDict()
        self._present: Optional[set[bytes]] = set() if in_memory_filter else None

    # -- Helpers -----------------------------------------------------------------

    def _bucket_for(self, key: bytes) -> int:
        return hash_key(key, seed=0xBDB) % self.num_buckets

    def _charge_memory(self) -> float:
        self.clock.advance(self.MEMORY_COST_MS)
        return self.MEMORY_COST_MS

    def _cached(self, page: int) -> bool:
        if page in self._cache:
            self._cache.move_to_end(page)
            return True
        return False

    def _touch_cache(self, page: int) -> None:
        self._cache[page] = None
        self._cache.move_to_end(page)
        while len(self._cache) > self.cache_pages:
            self._cache.popitem(last=False)

    def _read_page(self, page: int) -> float:
        if self._cached(page):
            return 0.0
        _payload, latency = self.device.read_page(page % self.device.geometry.total_pages)
        self._touch_cache(page)
        return latency

    def _write_page(self, page: int) -> float:
        latency = self.device.write_page(
            page % self.device.geometry.total_pages, b"", sequential=False
        )
        self._touch_cache(page)
        return latency

    def _chain_for(self, bucket: int) -> List[int]:
        return [bucket] + self._overflow.get(bucket, [])

    # -- Operations ----------------------------------------------------------------

    def insert(self, key: KeyLike, value: bytes) -> InsertResult:
        """Insert or update a key (one random page read-modify-write)."""
        data = to_key_bytes(key)
        latency = self._charge_memory()
        bucket = self._bucket_for(data)
        chain = self._chain_for(bucket)
        flash_reads = 0
        flash_writes = 0
        target_page: Optional[int] = None
        for page in chain:
            latency += self._read_page(page)
            flash_reads += 1
            contents = self._pages.setdefault(page, {})
            if data in contents or len(contents) < self.entries_per_page:
                target_page = page
                break
        if target_page is None:
            # Allocate a new overflow page for this bucket.
            target_page = self._next_overflow_page
            self._next_overflow_page += 1
            self._overflow.setdefault(bucket, []).append(target_page)
            self._pages[target_page] = {}
        self._pages[target_page][data] = bytes(value)
        latency += self._write_page(target_page)
        flash_writes += 1
        if self._present is not None:
            self._present.add(data)
        result = InsertResult(
            key=data, latency_ms=latency, flash_writes=flash_writes, flash_reads=flash_reads
        )
        self.stats.record_insert(result)
        return result

    def update(self, key: KeyLike, value: bytes) -> InsertResult:
        """Updates are in-place page rewrites, same cost as inserts."""
        return self.insert(key, value)

    def lookup(self, key: KeyLike) -> LookupResult:
        """Look up a key (one random page read, plus overflow chain reads)."""
        data = to_key_bytes(key)
        latency = self._charge_memory()
        if self._present is not None and data not in self._present:
            result = LookupResult(
                key=data, value=None, latency_ms=latency, served_from=ServedFrom.MISSING
            )
            self.stats.record_lookup(result)
            return result
        bucket = self._bucket_for(data)
        flash_reads = 0
        value: Optional[bytes] = None
        for page in self._chain_for(bucket):
            latency += self._read_page(page)
            flash_reads += 1
            value = self._pages.get(page, {}).get(data)
            if value is not None:
                break
        result = LookupResult(
            key=data,
            value=value,
            latency_ms=latency,
            served_from=ServedFrom.INCARNATION if value is not None else ServedFrom.MISSING,
            flash_reads=flash_reads,
        )
        self.stats.record_lookup(result)
        return result

    def delete(self, key: KeyLike) -> DeleteResult:
        """Delete a key (read-modify-write of its bucket page)."""
        data = to_key_bytes(key)
        latency = self._charge_memory()
        bucket = self._bucket_for(data)
        removed = False
        for page in self._chain_for(bucket):
            latency += self._read_page(page)
            contents = self._pages.get(page, {})
            if data in contents:
                del contents[data]
                latency += self._write_page(page)
                removed = True
                break
        if self._present is not None:
            self._present.discard(data)
        self.stats.deletes += 1
        return DeleteResult(key=data, latency_ms=latency, removed_from_buffer=removed)

    def get(self, key: KeyLike) -> Optional[bytes]:
        """Convenience accessor returning just the value (or ``None``)."""
        return self.lookup(key).value

    def __contains__(self, key: KeyLike) -> bool:
        return self.lookup(key).found

    def lookup_batch(self, keys: Iterable[KeyLike]) -> List[LookupResult]:
        """Loop fallback for the batched half of ``FingerprintIndex``.

        BDB has no shards to fan a batch out to, so batched operations run
        sequentially against the one device; results match sequential calls.
        """
        return [self.lookup(key) for key in keys]

    def insert_batch(self, items: Iterable[Tuple[KeyLike, bytes]]) -> List[InsertResult]:
        """Insert every ``(key, value)`` pair in order; results in order."""
        return [self.insert(key, value) for key, value in items]

    def items(self) -> Dict[bytes, bytes]:
        """All stored items (offline helper for merge experiments)."""
        merged: Dict[bytes, bytes] = {}
        for contents in self._pages.values():
            merged.update(contents)
        return merged
