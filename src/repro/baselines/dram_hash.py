"""All-DRAM hash table (the RamSan-style DRAM-SSD comparison point).

Fast and simple — every operation costs a DRAM access — but the device
behind it costs $120K and draws 650 W (per the paper's RamSan numbers),
which is what the ops/s/$ comparison in §1/§7.5 is about.  See
:mod:`repro.analysis.cost_efficiency` for that calculation.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.hashing import KeyLike, to_key_bytes
from repro.core.results import (
    DeleteResult,
    InsertResult,
    LookupResult,
    OperationStats,
    ServedFrom,
)
from repro.flashsim.clock import SimulationClock
from repro.flashsim.dram import DRAM_PROFILE, DRAMDevice, DRAMProfile


class DRAMHashIndex:
    """Hash table living entirely in a DRAM-SSD appliance."""

    def __init__(
        self,
        device: Optional[DRAMDevice] = None,
        clock: Optional[SimulationClock] = None,
        profile: DRAMProfile = DRAM_PROFILE,
        keep_latency_samples: bool = True,
    ) -> None:
        if device is None:
            device = DRAMDevice(profile=profile, clock=clock)
        self.device = device
        self.clock = device.clock
        self.stats = OperationStats(keep_samples=keep_latency_samples)
        self._data: Dict[bytes, bytes] = {}

    def _access(self, nbytes: int) -> float:
        latency = self.device.profile.access_latency_ms + nbytes * self.device.profile.per_byte_ms
        self.clock.advance(latency)
        return latency

    def insert(self, key: KeyLike, value: bytes) -> InsertResult:
        """Insert or update a key with a single DRAM access."""
        data = to_key_bytes(key)
        latency = self._access(len(data) + len(value))
        self._data[data] = bytes(value)
        result = InsertResult(key=data, latency_ms=latency)
        self.stats.record_insert(result)
        return result

    def update(self, key: KeyLike, value: bytes) -> InsertResult:
        """Alias of insert."""
        return self.insert(key, value)

    def lookup(self, key: KeyLike) -> LookupResult:
        """Look up a key with a single DRAM access."""
        data = to_key_bytes(key)
        latency = self._access(len(data))
        value = self._data.get(data)
        result = LookupResult(
            key=data,
            value=value,
            latency_ms=latency,
            served_from=ServedFrom.BUFFER if value is not None else ServedFrom.MISSING,
        )
        self.stats.record_lookup(result)
        return result

    def delete(self, key: KeyLike) -> DeleteResult:
        """Delete a key."""
        data = to_key_bytes(key)
        latency = self._access(len(data))
        removed = self._data.pop(data, None) is not None
        self.stats.deletes += 1
        return DeleteResult(key=data, latency_ms=latency, removed_from_buffer=removed)

    def get(self, key: KeyLike) -> Optional[bytes]:
        """Convenience accessor returning just the value (or ``None``)."""
        return self.lookup(key).value

    def __contains__(self, key: KeyLike) -> bool:
        return self.lookup(key).found
