"""Conventional hash table written directly to flash (no buffering).

Section 4 of the paper explains why a straightforward hash table on flash
performs poorly: every insertion is a small random write (violating design
principles P1-P3), and updates/deletes force in-place page rewrites.  This
baseline exists for the §7.3.1 ablation ("the effect of buffering is
obvious; without it, all insertions go to the flash") and for the general
hash-table comparison in §4.

An optional in-memory Bloom filter can be attached to suppress flash reads
for absent keys, matching the paper's observation that Bloom filters help a
traditional hash table as well.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.bloom import BloomFilter
from repro.core.hashing import KeyLike, hash_key, to_key_bytes
from repro.core.results import (
    DeleteResult,
    InsertResult,
    LookupResult,
    OperationStats,
    ServedFrom,
)
from repro.flashsim.device import StorageDevice


class ConventionalFlashHash:
    """Open-addressed hash table whose slots are device pages."""

    MEMORY_COST_MS = 0.003

    def __init__(
        self,
        device: StorageDevice,
        use_bloom_filter: bool = False,
        bloom_capacity: int = 1 << 16,
        keep_latency_samples: bool = True,
    ) -> None:
        self.device = device
        self.clock = device.clock
        self.stats = OperationStats(keep_samples=keep_latency_samples)
        self._data: Dict[bytes, bytes] = {}
        self._bloom: Optional[BloomFilter] = (
            BloomFilter.for_capacity(bloom_capacity) if use_bloom_filter else None
        )

    def _page_for(self, key: bytes) -> int:
        return hash_key(key, seed=0xF1A5) % self.device.geometry.total_pages

    def _charge_memory(self) -> float:
        self.clock.advance(self.MEMORY_COST_MS)
        return self.MEMORY_COST_MS

    def insert(self, key: KeyLike, value: bytes) -> InsertResult:
        """Insert a key: one small random page write straight to flash."""
        data = to_key_bytes(key)
        latency = self._charge_memory()
        page = self._page_for(data)
        latency += self.device.write_page(
            page, data[: self.device.geometry.page_size], sequential=False
        )
        self._data[data] = bytes(value)
        if self._bloom is not None:
            self._bloom.add(data)
        result = InsertResult(key=data, latency_ms=latency, flash_writes=1)
        self.stats.record_insert(result)
        return result

    def update(self, key: KeyLike, value: bytes) -> InsertResult:
        """In-place update: read the page, then rewrite it."""
        data = to_key_bytes(key)
        latency = self._charge_memory()
        page = self._page_for(data)
        _payload, read_latency = self.device.read_page(page)
        latency += read_latency
        latency += self.device.write_page(
            page, data[: self.device.geometry.page_size], sequential=False
        )
        self._data[data] = bytes(value)
        if self._bloom is not None:
            self._bloom.add(data)
        result = InsertResult(key=data, latency_ms=latency, flash_writes=1, flash_reads=1)
        self.stats.record_insert(result)
        return result

    def lookup(self, key: KeyLike) -> LookupResult:
        """Look up a key: one random page read (unless the Bloom filter says no)."""
        data = to_key_bytes(key)
        latency = self._charge_memory()
        if self._bloom is not None and data not in self._bloom:
            result = LookupResult(
                key=data, value=None, latency_ms=latency, served_from=ServedFrom.MISSING
            )
            self.stats.record_lookup(result)
            return result
        page = self._page_for(data)
        _payload, read_latency = self.device.read_page(page)
        latency += read_latency
        value = self._data.get(data)
        result = LookupResult(
            key=data,
            value=value,
            latency_ms=latency,
            served_from=ServedFrom.INCARNATION if value is not None else ServedFrom.MISSING,
            flash_reads=1,
        )
        self.stats.record_lookup(result)
        return result

    def delete(self, key: KeyLike) -> DeleteResult:
        """Delete a key: an in-place page rewrite (sub-block deletion on flash)."""
        data = to_key_bytes(key)
        latency = self._charge_memory()
        page = self._page_for(data)
        latency += self.device.write_page(page, b"", sequential=False)
        removed = self._data.pop(data, None) is not None
        self.stats.deletes += 1
        return DeleteResult(key=data, latency_ms=latency, removed_from_buffer=removed)

    def get(self, key: KeyLike) -> Optional[bytes]:
        """Convenience accessor returning just the value (or ``None``)."""
        return self.lookup(key).value

    def __contains__(self, key: KeyLike) -> bool:
        return self.lookup(key).found
