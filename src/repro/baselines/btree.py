"""External B-tree index baseline (Berkeley-DB's B-tree access method).

The paper briefly notes (§7.2.2) that BDB's B-tree index performed worse
than its hash index for this workload, because the fingerprint keys are
uniformly random: every insertion lands on a random leaf, so leaf pages are
read and written randomly just like hash buckets, with the added cost of
traversing (cached) internal nodes and periodically splitting leaves.

The implementation keeps the tree structure in memory for correctness but
charges device I/O for leaf reads/writes and for the fraction of internal
node accesses that miss the node cache, mirroring how a real BDB B-tree with
a default-sized cache behaves on random keys.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.core.hashing import KeyLike, to_key_bytes
from repro.core.results import (
    DeleteResult,
    InsertResult,
    LookupResult,
    OperationStats,
    ServedFrom,
)
from repro.flashsim.device import StorageDevice


class _Leaf:
    __slots__ = ("keys", "values", "page")

    def __init__(self, page: int) -> None:
        self.keys: List[bytes] = []
        self.values: List[bytes] = []
        self.page = page


class ExternalBTreeIndex:
    """A B-tree of order ``fanout`` whose leaves live on the device.

    Internal nodes are assumed cached in DRAM (they are a tiny fraction of
    the index); every leaf access pays a random page read, every leaf
    modification a random page write, and splits write both halves.
    """

    MEMORY_COST_MS = 0.005

    def __init__(
        self,
        device: StorageDevice,
        leaf_capacity: int = 24,
        keep_latency_samples: bool = True,
    ) -> None:
        if leaf_capacity < 4:
            raise ValueError("leaf_capacity must be at least 4")
        self.device = device
        self.clock = device.clock
        self.leaf_capacity = leaf_capacity
        self.stats = OperationStats(keep_samples=keep_latency_samples)
        self._next_page = 0
        first_leaf = _Leaf(self._allocate_page())
        # Sorted separators and child leaves (a two-level tree is enough for
        # the simulated scale; separator search is in-memory either way).
        self._separators: List[bytes] = []
        self._leaves: List[_Leaf] = [first_leaf]

    # -- Internals ---------------------------------------------------------------

    def _allocate_page(self) -> int:
        page = self._next_page % self.device.geometry.total_pages
        self._next_page += 1
        return page

    def _charge_memory(self) -> float:
        self.clock.advance(self.MEMORY_COST_MS)
        return self.MEMORY_COST_MS

    def _leaf_for(self, key: bytes) -> Tuple[int, _Leaf]:
        index = bisect.bisect_right(self._separators, key)
        return index, self._leaves[index]

    def _read_leaf(self, leaf: _Leaf) -> float:
        _payload, latency = self.device.read_page(leaf.page)
        return latency

    def _write_leaf(self, leaf: _Leaf) -> float:
        return self.device.write_page(leaf.page, b"", sequential=False)

    def _split_leaf(self, index: int, leaf: _Leaf) -> float:
        middle = len(leaf.keys) // 2
        right = _Leaf(self._allocate_page())
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        separator = right.keys[0]
        self._separators.insert(index, separator)
        self._leaves.insert(index + 1, right)
        # Both halves are written back.
        return self._write_leaf(leaf) + self._write_leaf(right)

    # -- Operations -----------------------------------------------------------------

    def insert(self, key: KeyLike, value: bytes) -> InsertResult:
        """Insert or update a key in its leaf (read, modify, write, maybe split)."""
        data = to_key_bytes(key)
        latency = self._charge_memory()
        index, leaf = self._leaf_for(data)
        latency += self._read_leaf(leaf)
        flash_reads = 1
        flash_writes = 0
        position = bisect.bisect_left(leaf.keys, data)
        if position < len(leaf.keys) and leaf.keys[position] == data:
            leaf.values[position] = bytes(value)
        else:
            leaf.keys.insert(position, data)
            leaf.values.insert(position, bytes(value))
        if len(leaf.keys) > self.leaf_capacity:
            latency += self._split_leaf(index, leaf)
            flash_writes += 2
        else:
            latency += self._write_leaf(leaf)
            flash_writes += 1
        result = InsertResult(
            key=data, latency_ms=latency, flash_reads=flash_reads, flash_writes=flash_writes
        )
        self.stats.record_insert(result)
        return result

    def update(self, key: KeyLike, value: bytes) -> InsertResult:
        """Alias of insert (in-place leaf update)."""
        return self.insert(key, value)

    def lookup(self, key: KeyLike) -> LookupResult:
        """Look up a key (one leaf read)."""
        data = to_key_bytes(key)
        latency = self._charge_memory()
        _index, leaf = self._leaf_for(data)
        latency += self._read_leaf(leaf)
        position = bisect.bisect_left(leaf.keys, data)
        value: Optional[bytes] = None
        if position < len(leaf.keys) and leaf.keys[position] == data:
            value = leaf.values[position]
        result = LookupResult(
            key=data,
            value=value,
            latency_ms=latency,
            served_from=ServedFrom.INCARNATION if value is not None else ServedFrom.MISSING,
            flash_reads=1,
        )
        self.stats.record_lookup(result)
        return result

    def delete(self, key: KeyLike) -> DeleteResult:
        """Delete a key from its leaf (read-modify-write)."""
        data = to_key_bytes(key)
        latency = self._charge_memory()
        _index, leaf = self._leaf_for(data)
        latency += self._read_leaf(leaf)
        position = bisect.bisect_left(leaf.keys, data)
        removed = False
        if position < len(leaf.keys) and leaf.keys[position] == data:
            del leaf.keys[position]
            del leaf.values[position]
            latency += self._write_leaf(leaf)
            removed = True
        self.stats.deletes += 1
        return DeleteResult(key=data, latency_ms=latency, removed_from_buffer=removed)

    def get(self, key: KeyLike) -> Optional[bytes]:
        """Convenience accessor returning just the value (or ``None``)."""
        return self.lookup(key).value

    def __contains__(self, key: KeyLike) -> bool:
        return self.lookup(key).found

    def items(self) -> Dict[bytes, bytes]:
        """All stored items in key order."""
        merged: Dict[bytes, bytes] = {}
        for leaf in self._leaves:
            merged.update(zip(leaf.keys, leaf.values))
        return merged
