"""Baseline indexes the paper compares CLAMs against.

* :class:`ExternalHashIndex` — a Berkeley-DB-style hash index kept on disk or
  SSD: one random page read per lookup, one random page write per
  insert/update.  This is the ``DB+SSD`` / ``DB+Disk`` baseline of §7.2.2.
* :class:`ExternalBTreeIndex` — a B-tree variant of the same (the paper notes
  it performed worse than the hash index).
* :class:`ConventionalFlashHash` — a hash table written directly to flash
  with no buffering, used in the §7.3.1 ablation.
* :class:`DRAMHashIndex` — an all-DRAM hash table (the RamSan-style
  comparison point for ops/s/$).

All baselines expose the same ``insert`` / ``lookup`` / ``delete`` API and
result records as :class:`repro.core.CLAM`, so the workload runner and the
WAN optimizer can swap them in without special cases.
"""

from repro.baselines.disk_hash import ExternalHashIndex
from repro.baselines.btree import ExternalBTreeIndex
from repro.baselines.flash_hash import ConventionalFlashHash
from repro.baselines.dram_hash import DRAMHashIndex

__all__ = [
    "ExternalHashIndex",
    "ExternalBTreeIndex",
    "ConventionalFlashHash",
    "DRAMHashIndex",
]
