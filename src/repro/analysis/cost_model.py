"""Closed-form I/O cost model of BufferHash (§6 of the paper).

The paper models flash I/O with linear cost functions — reading, writing and
erasing ``x`` bytes cost ``a_r + b_r x``, ``a_w + b_w x`` and ``a_e + b_e x``
respectively — and derives:

* the amortised and worst-case insertion cost as a function of the per-super-
  table buffer size ``B'`` (Figure 4, equations C1-C3);
* the expected lookup I/O cost as a function of the flash size ``F``, the
  total buffer size ``B`` and the total Bloom filter size ``b``
  (Figure 3, §6.2).

These functions are pure arithmetic — no simulation — and the benchmark
harness uses them to regenerate Figures 3 and 4 and to cross-check the
simulator's measured behaviour.

Notation (Table 1 of the paper)
-------------------------------
``B``      total size of all buffers (bits or bytes — consistent units)
``B'``     size of a single buffer (one super table)
``b``      total size of all Bloom filters
``k``      incarnations per super table = F / B
``F``      total flash size
``s``      average size of a hash entry
``Sp``     flash page (or SSD sector) size
``Sb``     flash block size
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class FlashCostParameters:
    """Linear I/O cost coefficients for one device (§6.1).

    All fixed costs (``a_*``) are milliseconds; all per-byte costs (``b_*``)
    are milliseconds per byte.  ``page_size`` and ``block_size`` are bytes.
    ``is_ssd`` selects the SSD simplification of §6.1 (erase and copy costs
    are folded into the FTL's write cost, so C2 = C3 = 0).
    """

    name: str
    read_fixed_ms: float
    read_per_byte_ms: float
    write_fixed_ms: float
    write_per_byte_ms: float
    erase_fixed_ms: float
    erase_per_byte_ms: float
    page_size: int
    block_size: int
    is_ssd: bool

    def page_read_cost_ms(self) -> float:
        """Cost of reading one page/sector (the ``cr`` term of §6.2)."""
        return self.read_fixed_ms + self.read_per_byte_ms * self.page_size


#: Generic NAND chip, matching :data:`repro.flashsim.flash_chip.GENERIC_FLASH_CHIP_PROFILE`.
FLASH_CHIP_COSTS = FlashCostParameters(
    name="flash-chip",
    read_fixed_ms=0.025,
    read_per_byte_ms=1.0 / (25 * 1024 * 1024) * 1000.0,
    write_fixed_ms=0.2,
    write_per_byte_ms=1.0 / (8 * 1024 * 1024) * 1000.0,
    erase_fixed_ms=1.5,
    erase_per_byte_ms=1.0 / (128 * 1024 * 1024) * 1000.0,
    page_size=2048,
    block_size=2048 * 64,
    is_ssd=False,
)

#: Intel X18-M style SSD, matching :data:`repro.flashsim.ssd.INTEL_SSD_PROFILE`.
INTEL_SSD_COSTS = FlashCostParameters(
    name="intel-ssd",
    read_fixed_ms=0.15,
    read_per_byte_ms=1.0 / (250 * 1024 * 1024) * 1000.0,
    write_fixed_ms=0.08,
    write_per_byte_ms=1.0 / (70 * 1024 * 1024) * 1000.0,
    erase_fixed_ms=0.0,
    erase_per_byte_ms=0.0,
    page_size=512,
    block_size=512 * 256,
    is_ssd=True,
)

#: Transcend style SSD, matching :data:`repro.flashsim.ssd.TRANSCEND_SSD_PROFILE`.
TRANSCEND_SSD_COSTS = FlashCostParameters(
    name="transcend-ssd",
    read_fixed_ms=0.45,
    read_per_byte_ms=1.0 / (120 * 1024 * 1024) * 1000.0,
    write_fixed_ms=0.5,
    write_per_byte_ms=1.0 / (28 * 1024 * 1024) * 1000.0,
    erase_fixed_ms=0.0,
    erase_per_byte_ms=0.0,
    page_size=512,
    block_size=512 * 256,
    is_ssd=True,
)


def _flush_costs_ms(params: FlashCostParameters, buffer_bytes: float) -> float:
    """C1 + C2 + C3: the cost of flushing one buffer to flash (§6.1)."""
    pages_per_flush = math.ceil(buffer_bytes / params.page_size)
    write_cost = params.write_fixed_ms + params.write_per_byte_ms * pages_per_flush * params.page_size
    if params.is_ssd:
        return write_cost
    pages_per_block = params.block_size // params.page_size
    # C2: erase cost, paid on the fraction of flushes that cross a block boundary.
    erase_fraction = min(1.0, pages_per_flush / pages_per_block)
    blocks_erased = math.ceil(pages_per_flush / pages_per_block)
    erase_cost = erase_fraction * (
        params.erase_fixed_ms + params.erase_per_byte_ms * blocks_erased * params.block_size
    )
    # C3: copying valid pages that share the erased block with the evicted incarnation.
    leftover_pages = (pages_per_block - pages_per_flush) % pages_per_block
    copy_cost = 0.0
    if leftover_pages > 0:
        copy_bytes = leftover_pages * params.page_size
        copy_cost = (
            params.read_fixed_ms
            + params.read_per_byte_ms * copy_bytes
            + params.write_fixed_ms
            + params.write_per_byte_ms * copy_bytes
        )
    return write_cost + erase_cost + copy_cost


def worst_case_insert_cost_ms(params: FlashCostParameters, buffer_bytes: float) -> float:
    """Worst-case insertion cost: the full flush cost (C1 + C2 + C3)."""
    if buffer_bytes <= 0:
        raise ValueError("buffer_bytes must be positive")
    return _flush_costs_ms(params, buffer_bytes)


def amortized_insert_cost_ms(
    params: FlashCostParameters, buffer_bytes: float, entry_size_bytes: float = 16.0
) -> float:
    """Amortised insertion cost: flush cost shared over the buffer's entries.

    ``C_amortized = (C1 + C2 + C3) * s / B'`` — independent of the number of
    keys inserted and inversely proportional to the buffer size.
    """
    if buffer_bytes <= 0:
        raise ValueError("buffer_bytes must be positive")
    if entry_size_bytes <= 0:
        raise ValueError("entry_size_bytes must be positive")
    return _flush_costs_ms(params, buffer_bytes) * entry_size_bytes / buffer_bytes


def bloom_false_positive_probability(
    flash_bytes: float,
    buffer_bytes: float,
    bloom_bytes: float,
    entry_size_bytes: float = 16.0,
) -> float:
    """Probability that one incarnation's Bloom filter fires spuriously.

    With ``k = F/B`` incarnations per super table, ``n' = B'/s`` entries per
    incarnation and ``m' = b'/k`` filter bits per incarnation, the optimal
    number of hash functions is ``h = (m'/n') ln 2`` and the hit probability
    is ``(1/2)^h`` (§6.2).  Expressed with totals the per-super-table split
    cancels out, so the function takes total sizes.
    """
    if min(flash_bytes, buffer_bytes, bloom_bytes, entry_size_bytes) <= 0:
        raise ValueError("all sizes must be positive")
    incarnations = flash_bytes / buffer_bytes
    entries_per_incarnation = buffer_bytes / entry_size_bytes  # per super table: B'/s; ratio-equal
    bits_per_incarnation = (bloom_bytes * 8.0) / incarnations
    bits_per_entry = bits_per_incarnation / entries_per_incarnation
    num_hashes = max(bits_per_entry * math.log(2), 1e-9)
    return 0.5 ** num_hashes


def expected_lookup_io_cost_ms(
    params: FlashCostParameters,
    flash_bytes: float,
    buffer_bytes: float,
    bloom_bytes: float,
    entry_size_bytes: float = 16.0,
) -> float:
    """Expected flash I/O cost of an unsuccessful lookup (§6.2, Figure 3).

    ``C_lookup = k * p * cr`` where ``k = F/B`` is the number of incarnations
    examined via Bloom filters, ``p`` the per-filter false-positive
    probability and ``cr`` the cost of one page read.
    """
    incarnations = flash_bytes / buffer_bytes
    probability = bloom_false_positive_probability(
        flash_bytes, buffer_bytes, bloom_bytes, entry_size_bytes
    )
    return incarnations * probability * params.page_read_cost_ms()


def lookup_cost_vs_buffer_split(
    params: FlashCostParameters,
    flash_bytes: float,
    memory_bytes: float,
    buffer_bytes: float,
    entry_size_bytes: float = 16.0,
) -> float:
    """Expected lookup cost when ``buffer_bytes`` of ``memory_bytes`` go to buffers.

    The remaining memory is given to Bloom filters; this is the quantity
    minimised in §6.4 ("Optimal buffer size") and measured empirically in
    Figure 5.
    """
    if not 0 < buffer_bytes < memory_bytes:
        raise ValueError("buffer_bytes must be between 0 and memory_bytes (exclusive)")
    bloom_bytes = memory_bytes - buffer_bytes
    return expected_lookup_io_cost_ms(
        params, flash_bytes, buffer_bytes, bloom_bytes, entry_size_bytes
    )


def optimal_buffer_bytes_analytical(flash_bytes: float, entry_size_bytes: float = 16.0) -> float:
    """The paper's closed form for the optimal total buffer size (§6.4).

    In the paper's bit units the optimum is ``B_opt = F / (s (ln 2)^2)``;
    expressed with the flash size in bytes and the entry size in bytes this
    becomes ``F / (8 s (ln 2)^2)``, which reproduces the worked example of
    §7.1.1: 32 GB of flash with 32-byte effective entries gives ≈ 260-266 MB
    of buffers, everything else going to Bloom filters.
    """
    if flash_bytes <= 0 or entry_size_bytes <= 0:
        raise ValueError("sizes must be positive")
    return flash_bytes / (8.0 * entry_size_bytes * (math.log(2) ** 2))


def sweep_insert_cost(
    params: FlashCostParameters,
    buffer_sizes_bytes: list[float],
    entry_size_bytes: float = 16.0,
) -> list[dict]:
    """Convenience sweep used by the Figure 4 benchmark."""
    rows = []
    for size in buffer_sizes_bytes:
        rows.append(
            {
                "buffer_bytes": size,
                "amortized_ms": amortized_insert_cost_ms(params, size, entry_size_bytes),
                "worst_case_ms": worst_case_insert_cost_ms(params, size),
            }
        )
    return rows


def sweep_lookup_overhead(
    params: FlashCostParameters,
    flash_bytes: float,
    bloom_sizes_bytes: list[float],
    buffer_bytes: Optional[float] = None,
    entry_size_bytes: float = 32.0,
) -> list[dict]:
    """Convenience sweep used by the Figure 3 benchmark.

    The paper's Figure 3 uses an effective entry size of 32 bytes (16-byte
    entries at 50 % hash-table utilisation).
    """
    if buffer_bytes is None:
        buffer_bytes = optimal_buffer_bytes_analytical(flash_bytes, entry_size_bytes)
    rows = []
    for bloom_bytes in bloom_sizes_bytes:
        rows.append(
            {
                "bloom_bytes": bloom_bytes,
                "expected_io_overhead_ms": expected_lookup_io_cost_ms(
                    params, flash_bytes, buffer_bytes, bloom_bytes, entry_size_bytes
                ),
            }
        )
    return rows
