"""Parameter tuning for CLAMs (§6.4 of the paper).

Three questions are answered analytically:

1. **How should DRAM be split between buffers and Bloom filters?**
   The optimal total buffer size is ``B_opt = F / (s ln²2) ≈ 2F/s`` —
   independent of how much DRAM is available; any extra memory should go to
   Bloom filters.
2. **How much total memory is needed?**  Given a target lookup I/O overhead
   ``C_target``, the Bloom filters need
   ``b ≥ F/(s ln²2) · ln(s ln²2 · cr / C_target)`` bits.
3. **How many super tables?**  The per-super-table buffer size ``B'`` does
   not affect lookup cost but drives insertion cost; on a flash chip the
   sweet spot is ``B'`` equal to the flash block size, while on SSDs larger
   buffers lower the amortised cost but raise the worst case, so the choice
   is the application's latency-tolerance call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.cost_model import (
    FlashCostParameters,
    amortized_insert_cost_ms,
    expected_lookup_io_cost_ms,
    optimal_buffer_bytes_analytical,
    worst_case_insert_cost_ms,
)


def optimal_buffer_bytes(flash_bytes: float, entry_size_bytes: float = 16.0) -> float:
    """Total buffer allocation minimising expected lookup cost (``≈ 2F/s``)."""
    return optimal_buffer_bytes_analytical(flash_bytes, entry_size_bytes)


def required_bloom_bits(
    params: FlashCostParameters,
    flash_bytes: float,
    target_io_overhead_ms: float,
    entry_size_bytes: float = 16.0,
) -> float:
    """Bloom-filter bits needed to keep expected lookup I/O below a target (§6.4).

    In the paper's bit units ``b' ≥ F/(s ln²2) · ln(s ln²2 · cr / C_target)``;
    with the flash size and entry size expressed in bytes (as throughout this
    package) the factor 8 reappears inside the logarithm, assuming buffers are
    provisioned at their optimal size ``B_opt``.
    """
    if target_io_overhead_ms <= 0:
        raise ValueError("target_io_overhead_ms must be positive")
    ln2_sq = math.log(2) ** 2
    page_read_ms = params.page_read_cost_ms()
    ratio = 8.0 * entry_size_bytes * ln2_sq * page_read_ms / target_io_overhead_ms
    if ratio <= 1.0:
        # Even with no Bloom filters the target is met (very cheap reads).
        return 0.0
    return flash_bytes / (entry_size_bytes * ln2_sq) * math.log(ratio)


def recommended_super_tables(
    total_buffer_bytes: float,
    params: FlashCostParameters,
    max_worst_case_ms: Optional[float] = None,
) -> int:
    """Number of super tables (= number of buffers) to create.

    On a raw flash chip the per-buffer size should equal the flash block size
    (Figure 4a/b); on an SSD, the largest per-buffer size whose worst-case
    flush latency stays within ``max_worst_case_ms`` is chosen (Figure 4c/d).
    """
    if total_buffer_bytes <= 0:
        raise ValueError("total_buffer_bytes must be positive")
    if not params.is_ssd:
        per_buffer = params.block_size
    else:
        per_buffer = params.block_size
        if max_worst_case_ms is not None:
            # Shrink the buffer until its flush fits the latency budget.
            while per_buffer > params.page_size and (
                worst_case_insert_cost_ms(params, per_buffer) > max_worst_case_ms
            ):
                per_buffer //= 2
    return max(1, int(round(total_buffer_bytes / per_buffer)))


@dataclass(frozen=True)
class TuningReport:
    """Recommended CLAM parameters for a device and DRAM/flash budget."""

    flash_bytes: float
    memory_bytes: float
    entry_size_bytes: float
    buffer_total_bytes: float
    bloom_total_bytes: float
    per_buffer_bytes: float
    num_super_tables: int
    incarnations_per_table: float
    expected_lookup_io_ms: float
    amortized_insert_ms: float
    worst_case_insert_ms: float

    def as_dict(self) -> dict:
        """Plain-dict view for printing in benchmarks and examples."""
        return {
            "flash_bytes": self.flash_bytes,
            "memory_bytes": self.memory_bytes,
            "buffer_total_bytes": self.buffer_total_bytes,
            "bloom_total_bytes": self.bloom_total_bytes,
            "per_buffer_bytes": self.per_buffer_bytes,
            "num_super_tables": self.num_super_tables,
            "incarnations_per_table": self.incarnations_per_table,
            "expected_lookup_io_ms": self.expected_lookup_io_ms,
            "amortized_insert_ms": self.amortized_insert_ms,
            "worst_case_insert_ms": self.worst_case_insert_ms,
        }


def tune(
    params: FlashCostParameters,
    flash_bytes: float,
    memory_bytes: float,
    entry_size_bytes: float = 16.0,
    max_worst_case_insert_ms: Optional[float] = None,
) -> TuningReport:
    """Produce a full parameter recommendation for a DRAM + flash budget.

    Mirrors §6.4 end to end: split memory between buffers and Bloom filters,
    size the per-super-table buffer, and report the resulting analytical
    insertion and lookup costs.
    """
    if memory_bytes <= 0 or flash_bytes <= 0:
        raise ValueError("memory_bytes and flash_bytes must be positive")
    buffer_total = min(optimal_buffer_bytes(flash_bytes, entry_size_bytes), memory_bytes * 0.5)
    bloom_total = memory_bytes - buffer_total
    num_tables = recommended_super_tables(buffer_total, params, max_worst_case_insert_ms)
    per_buffer = buffer_total / num_tables
    incarnations = flash_bytes / buffer_total
    return TuningReport(
        flash_bytes=flash_bytes,
        memory_bytes=memory_bytes,
        entry_size_bytes=entry_size_bytes,
        buffer_total_bytes=buffer_total,
        bloom_total_bytes=bloom_total,
        per_buffer_bytes=per_buffer,
        num_super_tables=num_tables,
        incarnations_per_table=incarnations,
        expected_lookup_io_ms=expected_lookup_io_cost_ms(
            params, flash_bytes, buffer_total, bloom_total, entry_size_bytes
        ),
        amortized_insert_ms=amortized_insert_cost_ms(params, per_buffer, entry_size_bytes),
        worst_case_insert_ms=worst_case_insert_cost_ms(params, per_buffer),
    )
