"""Hash operations per second per dollar (§1 and §7.5 of the paper).

The paper's headline economic claim: a CLAM built from ~$400 of commodity
DRAM + SSD sustains roughly 42 lookups/s/$ and 420 inserts/s/$, which is one
to two orders of magnitude better than a RamSan DRAM-SSD (~2.5 ops/s/$) and
far better than disk-based Berkeley-DB.  The arithmetic only needs measured
(or simulated) per-operation latencies plus device prices, both captured
here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class DevicePricing:
    """Purchase cost (and optionally power draw) of one hash-table platform."""

    name: str
    cost_dollars: float
    power_watts: float = 0.0
    capacity_gb: float = 0.0

    def __post_init__(self) -> None:
        if self.cost_dollars <= 0:
            raise ValueError("cost_dollars must be positive")


#: Device prices quoted in the paper (2009/2010 dollars).
PAPER_PRICING: Dict[str, DevicePricing] = {
    "clam-intel": DevicePricing("CLAM (4GB DRAM + 80GB Intel SSD)", 400.0, 10.0, 80.0),
    "clam-transcend": DevicePricing("CLAM (4GB DRAM + 32GB Transcend SSD)", 250.0, 8.0, 32.0),
    "ramsan-dram-ssd": DevicePricing("RamSan-400 DRAM-SSD", 120_000.0, 650.0, 128.0),
    "violin-dram": DevicePricing("Violin Memory DRAM appliance", 50_000.0, 400.0, 128.0),
    "disk-bdb": DevicePricing("Commodity server disk (BDB)", 100.0, 10.0, 500.0),
}


@dataclass(frozen=True)
class CostEfficiencyEntry:
    """Ops/s/$ for one platform."""

    platform: str
    ops_per_second: float
    cost_dollars: float

    @property
    def ops_per_second_per_dollar(self) -> float:
        """The paper's figure of merit."""
        return self.ops_per_second / self.cost_dollars


def ops_per_second_from_latency(latency_ms: float) -> float:
    """Sustained operations per second implied by a mean per-op latency."""
    if latency_ms <= 0:
        raise ValueError("latency_ms must be positive")
    return 1000.0 / latency_ms


def cost_efficiency_table(
    measured_latencies_ms: Dict[str, float],
    pricing: Optional[Dict[str, DevicePricing]] = None,
    fixed_ops_per_second: Optional[Dict[str, float]] = None,
) -> List[CostEfficiencyEntry]:
    """Build the ops/s/$ comparison table.

    Parameters
    ----------
    measured_latencies_ms:
        Mapping from pricing key to a measured mean per-operation latency.
    pricing:
        Device price list; defaults to :data:`PAPER_PRICING`.
    fixed_ops_per_second:
        Platforms whose throughput is a device specification rather than a
        measured latency (e.g. the RamSan's 300K IOPS).
    """
    pricing = pricing if pricing is not None else PAPER_PRICING
    entries: List[CostEfficiencyEntry] = []
    for key, latency_ms in measured_latencies_ms.items():
        if key not in pricing:
            raise KeyError(f"no pricing entry for {key!r}")
        entries.append(
            CostEfficiencyEntry(
                platform=pricing[key].name,
                ops_per_second=ops_per_second_from_latency(latency_ms),
                cost_dollars=pricing[key].cost_dollars,
            )
        )
    if fixed_ops_per_second:
        for key, ops in fixed_ops_per_second.items():
            if key not in pricing:
                raise KeyError(f"no pricing entry for {key!r}")
            entries.append(
                CostEfficiencyEntry(
                    platform=pricing[key].name,
                    ops_per_second=ops,
                    cost_dollars=pricing[key].cost_dollars,
                )
            )
    entries.sort(key=lambda entry: entry.ops_per_second_per_dollar, reverse=True)
    return entries


def improvement_factor(entries: Iterable[CostEfficiencyEntry], better: str, worse: str) -> float:
    """Ratio of ops/s/$ between two named platforms (e.g. CLAM vs RamSan)."""
    by_name = {entry.platform: entry for entry in entries}
    if better not in by_name or worse not in by_name:
        raise KeyError("both platforms must be present in the entries")
    return (
        by_name[better].ops_per_second_per_dollar / by_name[worse].ops_per_second_per_dollar
    )
