"""Analytical models from §6 of the paper and the cost-efficiency comparison.

* :mod:`repro.analysis.cost_model` — closed-form insertion and lookup cost
  equations (Figures 3 and 4).
* :mod:`repro.analysis.tuning` — optimal buffer size, Bloom-filter sizing and
  super-table count selection (§6.4).
* :mod:`repro.analysis.cost_efficiency` — hash operations per second per
  dollar for CLAMs, DRAM-SSDs and disk-based indexes (§1, §7.5).
"""

from repro.analysis.cost_model import (
    FlashCostParameters,
    FLASH_CHIP_COSTS,
    INTEL_SSD_COSTS,
    TRANSCEND_SSD_COSTS,
    amortized_insert_cost_ms,
    worst_case_insert_cost_ms,
    expected_lookup_io_cost_ms,
    bloom_false_positive_probability,
)
from repro.analysis.tuning import (
    optimal_buffer_bytes,
    required_bloom_bits,
    recommended_super_tables,
    TuningReport,
    tune,
)
from repro.analysis.cost_efficiency import (
    DevicePricing,
    CostEfficiencyEntry,
    cost_efficiency_table,
    PAPER_PRICING,
)

__all__ = [
    "FlashCostParameters",
    "FLASH_CHIP_COSTS",
    "INTEL_SSD_COSTS",
    "TRANSCEND_SSD_COSTS",
    "amortized_insert_cost_ms",
    "worst_case_insert_cost_ms",
    "expected_lookup_io_cost_ms",
    "bloom_false_positive_probability",
    "optimal_buffer_bytes",
    "required_bloom_bits",
    "recommended_super_tables",
    "TuningReport",
    "tune",
    "DevicePricing",
    "CostEfficiencyEntry",
    "cost_efficiency_table",
    "PAPER_PRICING",
]
