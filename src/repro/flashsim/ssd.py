"""SSD device model with calibrated Intel-like and Transcend-like profiles.

An SSD exposes sector-granularity reads and writes.  Internally, the write
path behaves like a log-structured FTL: sequential writes (and large batched
writes) are cheap, while sustained small random writes consume the pool of
pre-erased blocks and push garbage collection onto the critical path,
inflating the latency of *every* subsequent operation.  The model captures
this with a "clean-pool credit" mechanism:

* every write consumes clean-pool credit proportional to its size, scaled by
  a write-amplification factor that is large for random writes (they
  fragment blocks) and small for sequential writes (they fill blocks
  completely and are reclaimed for free);
* credit replenishes with simulated idle time (background garbage
  collection);
* when credit is exhausted, writes stall behind foreground garbage
  collection and concurrent reads also slow down because the flash channels
  are busy relocating data.

This reproduces the phenomenon §7.2.2 of the paper measures: a BDB-style
index that issues one small random write per insertion drives the Intel SSD
into sustained garbage collection and sees ~4.6-4.8 ms per operation, while
BufferHash's rare, large, sequential flushes leave the clean pool healthy
and see sub-0.1 ms averages.

Latency calibration targets (from the paper):

* Intel X18-M: random read ≈ 0.15 ms, one flash I/O per lookup ≈ 0.31 ms
  (Table 2), worst-case buffer flush ≈ 2.7 ms, BDB-on-SSD under continuous
  load ≈ 4.6-4.8 ms per operation.
* Transcend TS32GSSD25: reads ≈ 0.5-1 ms, worst-case flush ≈ 30 ms,
  an order of magnitude slower writes than the Intel device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.flashsim.clock import SimulationClock
from repro.flashsim.device import DeviceGeometry, StorageDevice
from repro.flashsim.latency import IOCost, LinearCostModel


@dataclass(frozen=True)
class SSDProfile:
    """Calibrated parameter set for one SSD model."""

    name: str
    geometry: DeviceGeometry
    cost_model: LinearCostModel
    # Clean-pool / garbage-collection modelling --------------------------------
    clean_pool_bytes: int
    random_write_amplification: float
    sequential_write_amplification: float
    gc_penalty_ms: float
    gc_replenish_bytes_per_ms: float
    gc_read_threshold_fraction: float
    # Rough device cost in dollars, used by the cost-efficiency analysis.
    device_cost_dollars: float = 400.0


def _intel_cost_model() -> LinearCostModel:
    sector_transfer = 1.0 / (250 * 1024 * 1024) * 1000.0  # ~250 MB/s interface
    return LinearCostModel(
        random_read=IOCost(fixed_ms=0.15, per_byte_ms=sector_transfer),
        sequential_read=IOCost(fixed_ms=0.03, per_byte_ms=sector_transfer),
        random_write=IOCost(fixed_ms=0.25, per_byte_ms=sector_transfer * 2.0),
        sequential_write=IOCost(fixed_ms=0.08, per_byte_ms=1.0 / (70 * 1024 * 1024) * 1000.0),
        erase=IOCost(fixed_ms=0.0, per_byte_ms=0.0),
    )


def _transcend_cost_model() -> LinearCostModel:
    sector_transfer = 1.0 / (120 * 1024 * 1024) * 1000.0
    return LinearCostModel(
        random_read=IOCost(fixed_ms=0.45, per_byte_ms=sector_transfer),
        sequential_read=IOCost(fixed_ms=0.12, per_byte_ms=sector_transfer),
        random_write=IOCost(fixed_ms=4.0, per_byte_ms=sector_transfer * 4.0),
        sequential_write=IOCost(fixed_ms=0.5, per_byte_ms=1.0 / (28 * 1024 * 1024) * 1000.0),
        erase=IOCost(fixed_ms=0.0, per_byte_ms=0.0),
    )


# Geometries are scaled down from the paper's 32/80 GB devices so that pure
# Python experiments stay tractable; all BufferHash sizing is expressed as
# ratios, so results are unaffected (see DESIGN.md, substitutions table).
INTEL_SSD_PROFILE = SSDProfile(
    name="intel-x18m",
    geometry=DeviceGeometry(page_size=512, pages_per_block=256, num_blocks=8192),
    cost_model=_intel_cost_model(),
    clean_pool_bytes=2 * 1024 * 1024,
    random_write_amplification=8.0,
    sequential_write_amplification=0.1,
    gc_penalty_ms=6.0,
    gc_replenish_bytes_per_ms=768,
    gc_read_threshold_fraction=0.05,
    device_cost_dollars=400.0,
)

TRANSCEND_SSD_PROFILE = SSDProfile(
    name="transcend-ts32g",
    geometry=DeviceGeometry(page_size=512, pages_per_block=256, num_blocks=8192),
    cost_model=_transcend_cost_model(),
    clean_pool_bytes=1 * 1024 * 1024,
    random_write_amplification=12.0,
    sequential_write_amplification=0.2,
    gc_penalty_ms=15.0,
    gc_replenish_bytes_per_ms=900,
    gc_read_threshold_fraction=0.05,
    device_cost_dollars=150.0,
)


class SSD(StorageDevice):
    """Sector-addressable SSD with clean-pool / garbage-collection dynamics."""

    def __init__(
        self,
        profile: SSDProfile = INTEL_SSD_PROFILE,
        clock: Optional[SimulationClock] = None,
        keep_events: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            geometry=profile.geometry,
            clock=clock,
            keep_events=keep_events,
            name=name or profile.name,
        )
        self.profile = profile
        self._cost_model = profile.cost_model
        self._clean_credit_bytes = float(profile.clean_pool_bytes)
        self._last_replenish_ms = self.clock.now_ms
        self.gc_stall_count = 0
        # Hysteresis: once the clean pool drops below the low watermark the
        # drive enters foreground-GC mode and stays there until background GC
        # has rebuilt the pool to the high watermark, as real SSD firmware does.
        self._gc_mode = False
        self._gc_high_watermark_fraction = 0.5

    # -- Clean-pool bookkeeping --------------------------------------------------

    def _replenish_credit(self) -> None:
        """Background GC restores clean-pool credit during simulated idle time."""
        now = self.clock.now_ms
        elapsed = now - self._last_replenish_ms
        if elapsed > 0:
            self._clean_credit_bytes = min(
                float(self.profile.clean_pool_bytes),
                self._clean_credit_bytes + elapsed * self.profile.gc_replenish_bytes_per_ms,
            )
            self._last_replenish_ms = now

    def _consume_credit(self, nbytes: int, sequential: bool) -> float:
        """Consume clean-pool credit for a write; returns any GC stall penalty."""
        amplification = (
            self.profile.sequential_write_amplification
            if sequential
            else self.profile.random_write_amplification
        )
        self._clean_credit_bytes -= nbytes * amplification
        if self._clean_credit_bytes < 0:
            self._clean_credit_bytes = 0.0
        self._update_gc_mode()
        if self._gc_mode:
            # The drive is (nearly) out of pre-erased blocks: the operation
            # stalls behind foreground garbage collection.
            self.gc_stall_count += 1
            return self.profile.gc_penalty_ms
        return 0.0

    def _update_gc_mode(self) -> None:
        """Enter GC mode below the low watermark; leave above the high watermark."""
        pool = float(self.profile.clean_pool_bytes)
        fraction = self._clean_credit_bytes / pool
        if not self._gc_mode and fraction <= self.profile.gc_read_threshold_fraction:
            self._gc_mode = True
        elif self._gc_mode and fraction >= self._gc_high_watermark_fraction:
            self._gc_mode = False

    @property
    def in_gc_mode(self) -> bool:
        """Whether the drive is currently doing foreground garbage collection."""
        self._replenish_credit()
        self._update_gc_mode()
        return self._gc_mode

    @property
    def clean_pool_fraction(self) -> float:
        """Remaining clean-pool credit as a fraction of the full pool."""
        self._replenish_credit()
        return self._clean_credit_bytes / float(self.profile.clean_pool_bytes)

    # -- Latency hooks -----------------------------------------------------------

    def _read_latency(self, nbytes: int, sequential: bool) -> float:
        self._replenish_credit()
        self._update_gc_mode()
        base = self._cost_model.read_cost(nbytes, sequential=sequential)
        # Reads issued while the device is GC-starved also suffer: the flash
        # channels are busy relocating data.
        if self._gc_mode:
            base += self.profile.gc_penalty_ms
        return base

    def _write_latency(self, nbytes: int, sequential: bool) -> float:
        self._replenish_credit()
        base = self._cost_model.write_cost(nbytes, sequential=sequential)
        base += self._consume_credit(nbytes, sequential)
        return base
