"""Page-mapping flash translation layer (FTL).

An SSD hides its flash chips behind an FTL that maps logical sectors onto
physical flash pages.  This module implements a simple page-mapping FTL:

* logical writes always go to the head of a write log (so the flash only
  ever sees sequential programs within a block);
* superseded physical pages are marked invalid;
* when the pool of clean blocks runs low, a greedy garbage collector picks
  the block with the fewest valid pages, relocates the survivors and erases
  the block.

This is what produces the behaviour §7.2.2 of the paper observes on the
Intel SSD: a sustained stream of small random writes exhausts the clean
block pool, forcing garbage collection onto the critical path and slowing
*all* I/O — which is why the BDB-on-SSD baseline is slow even though raw
SSD reads are fast, while BufferHash's rare, large, sequential flushes
leave the SSD with plenty of idle clean blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.flashsim.flash_chip import FlashChip


class PageMappingFTL:
    """Log-structured page-mapping FTL over a single :class:`FlashChip`.

    Parameters
    ----------
    chip:
        The backing flash chip.
    overprovision_fraction:
        Fraction of physical capacity reserved for garbage collection head
        room.  Logical capacity is ``(1 - overprovision_fraction)`` of the
        physical capacity.
    gc_low_watermark_blocks:
        Garbage collection triggers when fewer than this many clean blocks
        remain.
    """

    def __init__(
        self,
        chip: FlashChip,
        overprovision_fraction: float = 0.1,
        gc_low_watermark_blocks: int = 2,
    ) -> None:
        if not 0.0 <= overprovision_fraction < 1.0:
            raise ValueError("overprovision_fraction must be in [0, 1)")
        if gc_low_watermark_blocks < 1:
            raise ValueError("gc_low_watermark_blocks must be at least 1")
        self.chip = chip
        geometry = chip.geometry
        self.pages_per_block = geometry.pages_per_block
        self.num_blocks = geometry.num_blocks
        physical_pages = geometry.total_pages
        self.logical_pages = int(physical_pages * (1.0 - overprovision_fraction))
        self.gc_low_watermark_blocks = gc_low_watermark_blocks

        # logical page -> physical page
        self._l2p: Dict[int, int] = {}
        # physical page -> logical page (only for valid pages)
        self._p2l: Dict[int, int] = {}
        self._invalid_pages: Set[int] = set()
        self._clean_blocks: List[int] = list(range(self.num_blocks))
        self._active_block: Optional[int] = None
        self._next_page_in_block = 0

        self.gc_runs = 0
        self.gc_pages_relocated = 0
        self.gc_latency_ms = 0.0

    # -- Introspection ---------------------------------------------------------

    @property
    def clean_block_count(self) -> int:
        """Number of fully erased blocks available for new writes."""
        return len(self._clean_blocks) + (1 if self._active_block is not None else 0)

    def physical_page_of(self, logical_page: int) -> Optional[int]:
        """Physical location of ``logical_page``, or ``None`` if never written."""
        return self._l2p.get(logical_page)

    def _check_logical(self, logical_page: int) -> None:
        if not 0 <= logical_page < self.logical_pages:
            raise IndexError(
                f"logical page {logical_page} out of range (logical_pages={self.logical_pages})"
            )

    # -- Core operations -------------------------------------------------------

    def read(self, logical_page: int) -> tuple[bytes, float]:
        """Read a logical page; unwritten pages return empty payloads at read cost."""
        self._check_logical(logical_page)
        physical = self._l2p.get(logical_page)
        if physical is None:
            # The device still pays a media-access cost for an unmapped sector,
            # but no data is returned.
            latency = self.chip._read_latency(self.chip.geometry.page_size, sequential=False)
            self.chip.clock.advance(latency)
            return b"", latency
        return self.chip.read_page(physical)

    def write(self, logical_page: int, data: bytes) -> float:
        """Write a logical page at the log head; returns total latency including GC."""
        self._check_logical(logical_page)
        gc_latency = self._maybe_collect()
        physical, allocation_latency = self._allocate_page()
        write_latency = self.chip.write_page(physical, data, sequential=True)

        previous = self._l2p.get(logical_page)
        if previous is not None:
            self._invalid_pages.add(previous)
            self._p2l.pop(previous, None)
        self._l2p[logical_page] = physical
        self._p2l[physical] = logical_page
        return gc_latency + allocation_latency + write_latency

    def write_batch(self, logical_start: int, payloads: List[bytes]) -> float:
        """Write consecutive logical pages; they land sequentially at the log head."""
        total = 0.0
        for offset, data in enumerate(payloads):
            total += self.write(logical_start + offset, data)
        return total

    def trim(self, logical_page: int) -> None:
        """Discard a logical page (TRIM); its physical page becomes garbage."""
        self._check_logical(logical_page)
        physical = self._l2p.pop(logical_page, None)
        if physical is not None:
            self._invalid_pages.add(physical)
            self._p2l.pop(physical, None)

    # -- Allocation and garbage collection --------------------------------------

    def _allocate_page(self) -> tuple[int, float]:
        """Return the next physical page at the log head, opening a block if needed."""
        latency = 0.0
        if self._active_block is None or self._next_page_in_block >= self.pages_per_block:
            if not self._clean_blocks:
                latency += self._collect(force=True)
                if not self._clean_blocks:
                    raise RuntimeError("FTL out of space: garbage collection freed no blocks")
            self._active_block = self._clean_blocks.pop(0)
            self._next_page_in_block = 0
        physical = self._active_block * self.pages_per_block + self._next_page_in_block
        self._next_page_in_block += 1
        return physical, latency

    def _maybe_collect(self) -> float:
        """Run garbage collection if the clean pool is below the watermark."""
        if len(self._clean_blocks) < self.gc_low_watermark_blocks:
            return self._collect(force=False)
        return 0.0

    def _collect(self, force: bool) -> float:
        """Greedy garbage collection: reclaim the block with the fewest valid pages."""
        victim = self._pick_victim_block()
        if victim is None:
            return 0.0
        latency = 0.0
        start = victim * self.pages_per_block
        survivors: List[tuple[int, bytes]] = []
        for physical in range(start, start + self.pages_per_block):
            logical = self._p2l.get(physical)
            if logical is not None:
                payload, read_latency = self.chip.read_page(physical)
                latency += read_latency
                survivors.append((logical, payload))
                self._p2l.pop(physical, None)
                self._l2p.pop(logical, None)
            self._invalid_pages.discard(physical)
        latency += self.chip.erase_block(victim)
        self._clean_blocks.append(victim)
        self.gc_runs += 1
        self.gc_pages_relocated += len(survivors)
        # Relocate survivors through the normal write path (they go to the log head).
        for logical, payload in survivors:
            latency += self.write(logical, payload)
        self.gc_latency_ms += latency
        return latency

    def _pick_victim_block(self) -> Optional[int]:
        """Choose the block with the most invalid pages that is not the active block."""
        best_block: Optional[int] = None
        best_invalid = 0
        invalid_per_block: Dict[int, int] = {}
        for physical in self._invalid_pages:
            block = physical // self.pages_per_block
            invalid_per_block[block] = invalid_per_block.get(block, 0) + 1
        for block, invalid in invalid_per_block.items():
            if block == self._active_block:
                continue
            if invalid > best_invalid:
                best_invalid = invalid
                best_block = block
        return best_block
