"""Deterministic fault injection for simulated storage devices.

Every :class:`~repro.flashsim.device.StorageDevice` owns a
:class:`FaultInjector` that is consulted before each I/O.  A healthy injector
is a no-op; a faulted one can

* **crash-stop** the device (every I/O raises
  :class:`~repro.core.errors.DeviceFailedError` until :meth:`heal`),
* inject **intermittent I/O errors** at a configured rate, drawn from a
  seeded RNG so a given ``(seed, error_rate)`` pair always fails the exact
  same sequence of I/Os,
* **degrade** the device, multiplying and/or padding each operation's latency
  without failing it (a sick-but-alive replica), or
* arm a deterministic **power cut** (:meth:`crash_after_n_ios`): the n-th
  subsequent I/O unit is interrupted *mid-operation*.  The injector then
  transitions into :attr:`FaultMode.TORN_WRITE` (power failed during a page
  write — the page is left partially programmed and fails its CRC),
  :attr:`FaultMode.INTERRUPTED_ERASE` (power failed during a block erase —
  the block reads as erased-dirty until re-erased) or
  :attr:`FaultMode.POWER_LOST` (any other I/O), and every later I/O raises
  like a crash-stop.  Devices consume the countdown through
  :meth:`consume_io_units` at page granularity, so *every* I/O boundary —
  including each page inside a streaming write and each block erase — is a
  reachable crash point for the recovery test sweep.  Durable side effects
  of the interrupted operation are modeled by the device itself (see
  :mod:`repro.flashsim.persistent`).

The injector is the mechanism underneath shard failure in the service layer:
:meth:`repro.service.cluster.ClusterService.fail_shard` crashes a shard's
devices, the replicated read/write paths observe the resulting
``DeviceFailedError``\\ s, and the
:class:`~repro.service.recovery.RecoveryCoordinator` re-replicates what the
dead shard owned.  Everything is deterministic under seed control, so failure
experiments replay exactly.
"""

from __future__ import annotations

import enum
import random
from typing import Optional

from repro.core.errors import DeviceFailedError


class FaultMode(enum.Enum):
    """Operating state of a :class:`FaultInjector`."""

    HEALTHY = "healthy"
    CRASHED = "crashed"
    IO_ERRORS = "io-errors"
    DEGRADED = "degraded"
    #: Power was cut mid-page-write; the page is torn (fails CRC on reopen).
    TORN_WRITE = "torn-write"
    #: Power was cut mid-block-erase; the block is erased-dirty until re-erased.
    INTERRUPTED_ERASE = "interrupted-erase"
    #: Power was cut between I/Os (or during a read, which has no side effect).
    POWER_LOST = "power-lost"


#: Modes in which the device refuses every I/O until healed/reopened.
_DEAD_MODES = frozenset(
    {FaultMode.CRASHED, FaultMode.TORN_WRITE, FaultMode.INTERRUPTED_ERASE, FaultMode.POWER_LOST}
)


class FaultInjector:
    """Per-device fault state consulted before every simulated I/O.

    Parameters
    ----------
    device_name:
        Used only in exception messages, so failures name the device.
    seed:
        Seed for the intermittent-error RNG; the same seed and error rate
        reproduce the same sequence of failed I/Os.
    """

    def __init__(self, device_name: str = "device", seed: int = 0) -> None:
        self.device_name = device_name
        self._seed = seed
        self._rng = random.Random(seed)
        self.mode = FaultMode.HEALTHY
        self.error_rate = 0.0
        self.latency_multiplier = 1.0
        self.extra_latency_ms = 0.0
        #: I/Os refused with :class:`DeviceFailedError` (crash or injected).
        self.faulted_ios = 0
        #: I/Os that went through while the device was degraded.
        self.degraded_ios = 0
        #: Remaining I/O units until the armed power cut fires (None = unarmed).
        self._power_countdown: Optional[int] = None

    # -- State transitions -----------------------------------------------------

    def crash(self) -> None:
        """Crash-stop: every subsequent I/O raises until :meth:`heal`."""
        self.mode = FaultMode.CRASHED

    def inject_errors(self, error_rate: float, seed: Optional[int] = None) -> None:
        """Fail a deterministic ``error_rate`` fraction of subsequent I/Os."""
        if not 0.0 < error_rate <= 1.0:
            raise ValueError("error_rate must be in (0, 1]")
        if seed is not None:
            self._seed = seed
        self._rng = random.Random(self._seed)
        self.error_rate = error_rate
        self.mode = FaultMode.IO_ERRORS

    def degrade(self, latency_multiplier: float = 1.0, extra_latency_ms: float = 0.0) -> None:
        """Slow the device down without failing it."""
        if latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1")
        if extra_latency_ms < 0.0:
            raise ValueError("extra_latency_ms must be non-negative")
        self.latency_multiplier = latency_multiplier
        self.extra_latency_ms = extra_latency_ms
        self.mode = FaultMode.DEGRADED

    def crash_after_n_ios(self, n: int) -> None:
        """Arm a deterministic power cut interrupting the ``n``-th I/O unit.

        ``n`` counts device I/O units from now: page reads and writes are one
        unit each, a streaming read/write of ``k`` pages is ``k`` units (so a
        cut can land on any page inside it), a block erase is one unit.  The
        unit the countdown lands on is interrupted *mid-operation* with
        :class:`~repro.core.errors.PowerLossError` — partially applied, on
        devices that model torn pages — and the injector stays dead (every
        later I/O raises) until :meth:`heal` or, for file-backed devices, a
        reopen of the underlying file.
        """
        if n < 1:
            raise ValueError("n must be at least 1")
        self._power_countdown = n

    def consume_io_units(self, units: int, kind: str = "read") -> Optional[int]:
        """Advance the power-cut countdown by ``units``; called by devices.

        Returns ``None`` while power stays on.  When the armed countdown
        expires inside this operation, returns the 0-based unit index at
        which power failed (the caller applies partial effects up to that
        index and raises :class:`~repro.core.errors.PowerLossError`), and the
        injector transitions to the power-off mode matching ``kind``
        (``"write"`` → :attr:`FaultMode.TORN_WRITE`, ``"erase"`` →
        :attr:`FaultMode.INTERRUPTED_ERASE`, else
        :attr:`FaultMode.POWER_LOST`).
        """
        remaining = self._power_countdown
        if remaining is None:
            return None
        if remaining > units:
            self._power_countdown = remaining - units
            return None
        self._power_countdown = None
        if kind == "write":
            self.mode = FaultMode.TORN_WRITE
        elif kind == "erase":
            self.mode = FaultMode.INTERRUPTED_ERASE
        else:
            self.mode = FaultMode.POWER_LOST
        return remaining - 1

    @property
    def power_cut_armed(self) -> bool:
        """Whether a :meth:`crash_after_n_ios` countdown is pending."""
        return self._power_countdown is not None

    def heal(self) -> None:
        """Return to healthy operation (counters are preserved)."""
        self.mode = FaultMode.HEALTHY
        self.error_rate = 0.0
        self.latency_multiplier = 1.0
        self.extra_latency_ms = 0.0
        self._power_countdown = None

    # -- Introspection ---------------------------------------------------------

    @property
    def is_healthy(self) -> bool:
        """Whether I/Os currently pass through unharmed."""
        return self.mode is FaultMode.HEALTHY

    @property
    def is_crashed(self) -> bool:
        """Whether the device is dead (crash-stopped or powered off).

        A power-cut device (any of the three power-off modes) refuses I/O
        exactly like a crash-stopped one; the distinct modes only record *how*
        it died, which recovery inspects to model the interrupted operation.
        """
        return self.mode in _DEAD_MODES

    # -- The hook devices call -------------------------------------------------

    def check(self, latency_ms: float) -> float:
        """Gate one I/O: raise on a fault, else return the (possibly inflated)
        latency the operation should cost.

        Called by :class:`~repro.flashsim.device.StorageDevice` with the
        fault-free latency of the operation about to run.
        """
        if self.mode is FaultMode.HEALTHY:
            return latency_ms
        if self.mode in _DEAD_MODES:
            self.faulted_ios += 1
            raise DeviceFailedError(
                f"device {self.device_name!r} is dead ({self.mode.value})"
            )
        if self.mode is FaultMode.IO_ERRORS:
            if self._rng.random() < self.error_rate:
                self.faulted_ios += 1
                raise DeviceFailedError(
                    f"device {self.device_name!r} returned an injected I/O error"
                )
            return latency_ms
        # DEGRADED: sick but alive.
        self.degraded_ios += 1
        return latency_ms * self.latency_multiplier + self.extra_latency_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(device={self.device_name!r}, mode={self.mode.value!r}, "
            f"faulted={self.faulted_ios})"
        )
