"""Deterministic fault injection for simulated storage devices.

Every :class:`~repro.flashsim.device.StorageDevice` owns a
:class:`FaultInjector` that is consulted before each I/O.  A healthy injector
is a no-op; a faulted one can

* **crash-stop** the device (every I/O raises
  :class:`~repro.core.errors.DeviceFailedError` until :meth:`heal`),
* inject **intermittent I/O errors** at a configured rate, drawn from a
  seeded RNG so a given ``(seed, error_rate)`` pair always fails the exact
  same sequence of I/Os, or
* **degrade** the device, multiplying and/or padding each operation's latency
  without failing it (a sick-but-alive replica).

The injector is the mechanism underneath shard failure in the service layer:
:meth:`repro.service.cluster.ClusterService.fail_shard` crashes a shard's
devices, the replicated read/write paths observe the resulting
``DeviceFailedError``\\ s, and the
:class:`~repro.service.recovery.RecoveryCoordinator` re-replicates what the
dead shard owned.  Everything is deterministic under seed control, so failure
experiments replay exactly.
"""

from __future__ import annotations

import enum
import random
from typing import Optional

from repro.core.errors import DeviceFailedError


class FaultMode(enum.Enum):
    """Operating state of a :class:`FaultInjector`."""

    HEALTHY = "healthy"
    CRASHED = "crashed"
    IO_ERRORS = "io-errors"
    DEGRADED = "degraded"


class FaultInjector:
    """Per-device fault state consulted before every simulated I/O.

    Parameters
    ----------
    device_name:
        Used only in exception messages, so failures name the device.
    seed:
        Seed for the intermittent-error RNG; the same seed and error rate
        reproduce the same sequence of failed I/Os.
    """

    def __init__(self, device_name: str = "device", seed: int = 0) -> None:
        self.device_name = device_name
        self._seed = seed
        self._rng = random.Random(seed)
        self.mode = FaultMode.HEALTHY
        self.error_rate = 0.0
        self.latency_multiplier = 1.0
        self.extra_latency_ms = 0.0
        #: I/Os refused with :class:`DeviceFailedError` (crash or injected).
        self.faulted_ios = 0
        #: I/Os that went through while the device was degraded.
        self.degraded_ios = 0

    # -- State transitions -----------------------------------------------------

    def crash(self) -> None:
        """Crash-stop: every subsequent I/O raises until :meth:`heal`."""
        self.mode = FaultMode.CRASHED

    def inject_errors(self, error_rate: float, seed: Optional[int] = None) -> None:
        """Fail a deterministic ``error_rate`` fraction of subsequent I/Os."""
        if not 0.0 < error_rate <= 1.0:
            raise ValueError("error_rate must be in (0, 1]")
        if seed is not None:
            self._seed = seed
        self._rng = random.Random(self._seed)
        self.error_rate = error_rate
        self.mode = FaultMode.IO_ERRORS

    def degrade(self, latency_multiplier: float = 1.0, extra_latency_ms: float = 0.0) -> None:
        """Slow the device down without failing it."""
        if latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1")
        if extra_latency_ms < 0.0:
            raise ValueError("extra_latency_ms must be non-negative")
        self.latency_multiplier = latency_multiplier
        self.extra_latency_ms = extra_latency_ms
        self.mode = FaultMode.DEGRADED

    def heal(self) -> None:
        """Return to healthy operation (counters are preserved)."""
        self.mode = FaultMode.HEALTHY
        self.error_rate = 0.0
        self.latency_multiplier = 1.0
        self.extra_latency_ms = 0.0

    # -- Introspection ---------------------------------------------------------

    @property
    def is_healthy(self) -> bool:
        """Whether I/Os currently pass through unharmed."""
        return self.mode is FaultMode.HEALTHY

    @property
    def is_crashed(self) -> bool:
        """Whether the device is crash-stopped."""
        return self.mode is FaultMode.CRASHED

    # -- The hook devices call -------------------------------------------------

    def check(self, latency_ms: float) -> float:
        """Gate one I/O: raise on a fault, else return the (possibly inflated)
        latency the operation should cost.

        Called by :class:`~repro.flashsim.device.StorageDevice` with the
        fault-free latency of the operation about to run.
        """
        if self.mode is FaultMode.HEALTHY:
            return latency_ms
        if self.mode is FaultMode.CRASHED:
            self.faulted_ios += 1
            raise DeviceFailedError(f"device {self.device_name!r} has crash-stopped")
        if self.mode is FaultMode.IO_ERRORS:
            if self._rng.random() < self.error_rate:
                self.faulted_ios += 1
                raise DeviceFailedError(
                    f"device {self.device_name!r} returned an injected I/O error"
                )
            return latency_ms
        # DEGRADED: sick but alive.
        self.degraded_ios += 1
        return latency_ms * self.latency_multiplier + self.extra_latency_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(device={self.device_name!r}, mode={self.mode.value!r}, "
            f"faulted={self.faulted_ios})"
        )
