"""DRAM device model.

Used for two purposes:

* as the "memory" half of a CLAM (buffers and Bloom filters live in DRAM and
  their access cost is effectively zero next to flash);
* as the basis of the DRAM-SSD (RamSan-style) baseline in the ops/s/$
  cost-efficiency comparison of §1/§7.5 — extremely fast, but with a device
  cost and power draw orders of magnitude above commodity flash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.flashsim.clock import SimulationClock
from repro.flashsim.device import DeviceGeometry, StorageDevice


@dataclass(frozen=True)
class DRAMProfile:
    """Latency, capacity and cost parameters of a DRAM store."""

    name: str
    geometry: DeviceGeometry
    access_latency_ms: float
    per_byte_ms: float
    device_cost_dollars: float
    power_watts: float


# The RamSan-400 referenced by the paper: 128 GB, 300 K IOPS, $120K, 650 W.
# Geometry is scaled down (capacity does not affect latency modelling).
DRAM_PROFILE = DRAMProfile(
    name="ramsan-dram-ssd",
    geometry=DeviceGeometry(page_size=512, pages_per_block=256, num_blocks=2048),
    access_latency_ms=1.0 / 300.0,  # 300K IOPS -> ~0.0033 ms per IO
    per_byte_ms=1.0 / (2 * 1024 * 1024 * 1024) * 1000.0,
    device_cost_dollars=120_000.0,
    power_watts=650.0,
)


class DRAMDevice(StorageDevice):
    """Flat-latency memory device; reads and writes cost the same tiny amount."""

    def __init__(
        self,
        profile: DRAMProfile = DRAM_PROFILE,
        clock: Optional[SimulationClock] = None,
        keep_events: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            geometry=profile.geometry,
            clock=clock,
            keep_events=keep_events,
            name=name or profile.name,
        )
        self.profile = profile

    def _read_latency(self, nbytes: int, sequential: bool) -> float:
        return self.profile.access_latency_ms + nbytes * self.profile.per_byte_ms

    def _write_latency(self, nbytes: int, sequential: bool) -> float:
        return self.profile.access_latency_ms + nbytes * self.profile.per_byte_ms
