"""Storage substrate: simulated flash chips, SSDs, magnetic disks and DRAM.

The paper evaluates BufferHash on real SSDs (Intel X18-M and Transcend
TS32GSSD25) and a Hitachi 7K80 magnetic disk.  This package provides a
discrete-event *simulation* of those devices: every read, write and erase
advances a simulated clock by an amount derived from a linear cost model
(fixed initialisation cost plus a per-byte cost), with additional effects
for block erasure, garbage collection under write pressure and mechanical
seek latency.  All latencies reported by the rest of the library are in
simulated milliseconds.

Public entry points
-------------------
:class:`SimulationClock`
    Shared notion of simulated time.
:class:`ClockEnsemble`
    Aggregate read-only view over several shard clocks (cluster time = the
    slowest member, total work = the sum); used by :mod:`repro.service`.
:class:`FlashChip`
    A raw NAND flash chip with pages, erase blocks and an erase-before-write
    constraint.
:class:`SSD`
    A flash translation layer (FTL) over one or more flash chips, exposing
    sector reads/writes; includes background garbage collection pressure.
:class:`MagneticDisk`
    Seek + rotational latency model of a hard disk.
:class:`DRAMDevice`
    Near-zero-latency memory device used for cost-efficiency comparisons.
:class:`FaultInjector`
    Deterministic fault injection (crash-stop, seeded intermittent I/O
    errors, latency degradation) carried by every device; the substrate the
    service layer's failure handling is built on.
:data:`INTEL_SSD_PROFILE`, :data:`TRANSCEND_SSD_PROFILE`,
:data:`GENERIC_FLASH_CHIP_PROFILE`, :data:`MAGNETIC_DISK_PROFILE`
    Calibrated device parameter sets.
"""

from repro.flashsim.clock import ClockEnsemble, SimulationClock
from repro.flashsim.faults import FaultInjector, FaultMode
from repro.flashsim.latency import LinearCostModel, IOCost
from repro.flashsim.stats import IOStats, IOEvent, IOKind
from repro.flashsim.device import StorageDevice, DeviceGeometry
from repro.flashsim.flash_chip import FlashChip, FlashChipError
from repro.flashsim.ftl import PageMappingFTL
from repro.flashsim.ssd import SSD, SSDProfile, INTEL_SSD_PROFILE, TRANSCEND_SSD_PROFILE
from repro.flashsim.flash_chip import GENERIC_FLASH_CHIP_PROFILE, FlashChipProfile
from repro.flashsim.disk import MagneticDisk, DiskProfile, MAGNETIC_DISK_PROFILE
from repro.flashsim.dram import DRAMDevice, DRAM_PROFILE, DRAMProfile
from repro.flashsim.persistent import (
    FlashLayout,
    FlashPartition,
    PageState,
    PersistentFlashDevice,
    PERSISTENT_GEOMETRY,
)

__all__ = [
    "ClockEnsemble",
    "SimulationClock",
    "FaultInjector",
    "FaultMode",
    "LinearCostModel",
    "IOCost",
    "IOStats",
    "IOEvent",
    "IOKind",
    "StorageDevice",
    "DeviceGeometry",
    "FlashChip",
    "FlashChipError",
    "FlashChipProfile",
    "GENERIC_FLASH_CHIP_PROFILE",
    "PageMappingFTL",
    "SSD",
    "SSDProfile",
    "INTEL_SSD_PROFILE",
    "TRANSCEND_SSD_PROFILE",
    "MagneticDisk",
    "DiskProfile",
    "MAGNETIC_DISK_PROFILE",
    "DRAMDevice",
    "DRAMProfile",
    "DRAM_PROFILE",
    "FlashLayout",
    "FlashPartition",
    "PageState",
    "PersistentFlashDevice",
    "PERSISTENT_GEOMETRY",
]
