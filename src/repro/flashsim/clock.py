"""Simulated clock shared by storage devices and applications.

All device latencies are expressed in *simulated milliseconds*.  A single
:class:`SimulationClock` instance is shared by every device participating in
an experiment so that, e.g., a WAN optimizer can interleave network
serialisation delay with index I/O delay on one time line.
"""

from __future__ import annotations


class SimulationClock:
    """A monotonically advancing clock measured in simulated milliseconds.

    The clock only ever moves forward.  Devices call :meth:`advance` with the
    latency of each I/O; applications may also advance it directly to model
    computation or network transmission time.
    """

    __slots__ = ("_now_ms",)

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError("start_ms must be non-negative")
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_ms / 1000.0

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` milliseconds and return the new time.

        Negative increments are rejected: simulated time never flows backwards.
        """
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock by negative amount {delta_ms!r}")
        self._now_ms += delta_ms
        return self._now_ms

    def advance_seconds(self, delta_s: float) -> float:
        """Advance the clock by ``delta_s`` seconds and return the new time in ms."""
        return self.advance(delta_s * 1000.0)

    def reset(self, to_ms: float = 0.0) -> None:
        """Reset the clock, typically between independent experiment runs."""
        if to_ms < 0:
            raise ValueError("to_ms must be non-negative")
        self._now_ms = float(to_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now_ms={self._now_ms:.3f})"
