"""Simulated clock shared by storage devices and applications.

All device latencies are expressed in *simulated milliseconds*.  A single
:class:`SimulationClock` instance is shared by every device participating in
an experiment so that, e.g., a WAN optimizer can interleave network
serialisation delay with index I/O delay on one time line.
"""

from __future__ import annotations


class SimulationClock:
    """A monotonically advancing clock measured in simulated milliseconds.

    The clock only ever moves forward.  Devices call :meth:`advance` with the
    latency of each I/O; applications may also advance it directly to model
    computation or network transmission time.
    """

    __slots__ = ("_now_ms",)

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError("start_ms must be non-negative")
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_ms / 1000.0

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` milliseconds and return the new time.

        Negative increments are rejected: simulated time never flows backwards.
        """
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock by negative amount {delta_ms!r}")
        self._now_ms += delta_ms
        return self._now_ms

    def advance_seconds(self, delta_s: float) -> float:
        """Advance the clock by ``delta_s`` seconds and return the new time in ms."""
        return self.advance(delta_s * 1000.0)

    def reset(self, to_ms: float = 0.0) -> None:
        """Reset the clock, typically between independent experiment runs."""
        if to_ms < 0:
            raise ValueError("to_ms must be non-negative")
        self._now_ms = float(to_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now_ms={self._now_ms:.3f})"


class ClockEnsemble:
    """Read-only aggregate view over several independent :class:`SimulationClock`\\ s.

    A sharded service runs each shard on its own device and therefore its own
    clock; the shards operate *in parallel*, so the cluster-level notion of
    elapsed time is the slowest member (``now_ms`` is the max), while the total
    work performed is the sum of member times (``busy_ms``).  The ensemble
    satisfies the same ``now_ms``/``now_s`` reading interface as a single
    clock, which lets :class:`repro.workloads.runner.WorkloadRunner` report a
    simulated duration for a whole cluster unchanged.

    Ensemble time is monotonic across membership changes: removing a member
    (a decommissioned shard) retires its final time into a floor rather than
    letting ``now_ms``/``busy_ms`` rewind — simulated time never flows
    backwards, exactly as with a single :class:`SimulationClock`.
    """

    __slots__ = ("_clocks", "_retired")

    def __init__(self, clocks=()) -> None:
        self._clocks = list(clocks)
        if any(not hasattr(clock, "now_ms") for clock in self._clocks):
            raise TypeError("ClockEnsemble members must expose now_ms")
        self._retired = []

    @property
    def now_ms(self) -> float:
        """Cluster time: the furthest-ahead clock ever observed (parallel shards)."""
        return max(
            [0.0]
            + [clock.now_ms for clock in self._clocks]
            + [clock.now_ms for clock in self._retired]
        )

    @property
    def now_s(self) -> float:
        """Cluster time in seconds."""
        return self.now_ms / 1000.0

    @property
    def busy_ms(self) -> float:
        """Total simulated work over every member clock, past members included."""
        return sum(clock.now_ms for clock in self._clocks) + sum(
            clock.now_ms for clock in self._retired
        )

    @property
    def skew_ms(self) -> float:
        """Spread between the fastest and slowest member (load imbalance)."""
        if not self._clocks:
            return 0.0
        times = [clock.now_ms for clock in self._clocks]
        return max(times) - min(times)

    def member_times_ms(self) -> tuple:
        """Per-member current times, in membership order."""
        return tuple(clock.now_ms for clock in self._clocks)

    def add(self, clock: SimulationClock) -> None:
        """Start aggregating one more clock (e.g. a newly added shard).

        A previously retired clock that rejoins is simply moved back to the
        live set, so its work is never double-counted in :attr:`busy_ms`.
        """
        if not hasattr(clock, "now_ms"):
            raise TypeError("ClockEnsemble members must expose now_ms")
        if clock in self._retired:
            self._retired.remove(clock)
        self._clocks.append(clock)

    def remove(self, clock: SimulationClock) -> None:
        """Stop aggregating ``clock`` (e.g. a decommissioned shard).

        The member is retired rather than forgotten so that ``now_ms`` and
        ``busy_ms`` stay monotonic across the removal.
        """
        self._clocks.remove(clock)
        self._retired.append(clock)

    def __len__(self) -> int:
        return len(self._clocks)

    def __iter__(self):
        return iter(self._clocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClockEnsemble(members={len(self._clocks)}, now_ms={self.now_ms:.3f})"
