"""I/O accounting shared by every simulated storage device.

Each device records every operation it performs (kind, size, latency,
whether it was sequential) so experiments can report both latency
distributions and I/O counts — e.g. Table 2 of the paper reports the number
of flash reads per lookup, and §7.3.1 attributes latency to specific I/O
classes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class IOKind(enum.Enum):
    """Classification of a single device operation."""

    READ = "read"
    WRITE = "write"
    ERASE = "erase"


@dataclass(frozen=True)
class IOEvent:
    """One recorded device operation."""

    kind: IOKind
    nbytes: int
    latency_ms: float
    sequential: bool
    timestamp_ms: float


@dataclass
class IOStats:
    """Aggregated I/O statistics for one device.

    The full event log can optionally be retained (``keep_events=True``) for
    CDF-style analyses; aggregate counters are always maintained so that the
    common case stays cheap.
    """

    keep_events: bool = False
    events: List[IOEvent] = field(default_factory=list)
    op_counts: Dict[IOKind, int] = field(default_factory=dict)
    byte_counts: Dict[IOKind, int] = field(default_factory=dict)
    latency_totals_ms: Dict[IOKind, float] = field(default_factory=dict)
    latency_max_ms: Dict[IOKind, float] = field(default_factory=dict)
    sequential_counts: Dict[IOKind, int] = field(default_factory=dict)

    def record(self, event: IOEvent) -> None:
        """Fold one operation into the aggregates (and event log if enabled)."""
        kind = event.kind
        self.op_counts[kind] = self.op_counts.get(kind, 0) + 1
        self.byte_counts[kind] = self.byte_counts.get(kind, 0) + event.nbytes
        self.latency_totals_ms[kind] = (
            self.latency_totals_ms.get(kind, 0.0) + event.latency_ms
        )
        if event.latency_ms > self.latency_max_ms.get(kind, 0.0):
            self.latency_max_ms[kind] = event.latency_ms
        if event.sequential:
            self.sequential_counts[kind] = self.sequential_counts.get(kind, 0) + 1
        if self.keep_events:
            self.events.append(event)

    # -- Convenience accessors -------------------------------------------------

    def count(self, kind: Optional[IOKind] = None) -> int:
        """Number of operations of ``kind`` (or all kinds when omitted)."""
        if kind is None:
            return sum(self.op_counts.values())
        return self.op_counts.get(kind, 0)

    def bytes_moved(self, kind: Optional[IOKind] = None) -> int:
        """Bytes transferred by operations of ``kind`` (or all kinds)."""
        if kind is None:
            return sum(self.byte_counts.values())
        return self.byte_counts.get(kind, 0)

    def total_latency_ms(self, kind: Optional[IOKind] = None) -> float:
        """Accumulated latency of operations of ``kind`` (or all kinds)."""
        if kind is None:
            return sum(self.latency_totals_ms.values())
        return self.latency_totals_ms.get(kind, 0.0)

    def mean_latency_ms(self, kind: IOKind) -> float:
        """Mean latency of operations of ``kind`` (0 when none were recorded)."""
        n = self.op_counts.get(kind, 0)
        if n == 0:
            return 0.0
        return self.latency_totals_ms.get(kind, 0.0) / n

    def max_latency_ms(self, kind: IOKind) -> float:
        """Worst observed latency of operations of ``kind``."""
        return self.latency_max_ms.get(kind, 0.0)

    def reset(self) -> None:
        """Forget all recorded operations."""
        self.events.clear()
        self.op_counts.clear()
        self.byte_counts.clear()
        self.latency_totals_ms.clear()
        self.latency_max_ms.clear()
        self.sequential_counts.clear()

    def snapshot(self) -> Dict[str, float]:
        """A flat dictionary summary, convenient for printing bench tables."""
        summary: Dict[str, float] = {}
        for kind in IOKind:
            summary[f"{kind.value}_ops"] = float(self.count(kind))
            summary[f"{kind.value}_bytes"] = float(self.bytes_moved(kind))
            summary[f"{kind.value}_mean_ms"] = self.mean_latency_ms(kind)
            summary[f"{kind.value}_max_ms"] = self.max_latency_ms(kind)
        summary["total_ops"] = float(self.count())
        summary["total_latency_ms"] = self.total_latency_ms()
        return summary


def percentile(values: Iterable[float], fraction: float) -> float:
    """Linear-interpolation percentile of ``values`` at ``fraction`` in [0, 1].

    Provided here because several modules need percentile summaries of
    latency samples without depending on numpy.
    """
    data = sorted(values)
    if not data:
        raise ValueError("cannot take the percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    if len(data) == 1:
        return data[0]
    position = fraction * (len(data) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return data[int(position)]
    weight = position - lower
    return data[lower] * (1.0 - weight) + data[upper] * weight
