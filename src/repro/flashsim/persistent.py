"""File-backed flash device with power-loss-realistic on-media framing.

This module gives the simulator a durable backend: a
:class:`PersistentFlashDevice` stores every page in an mmap-backed file using
a small per-page frame (status byte + payload length + CRC32), so state
survives process exit and — crucially — *partial* state survives a simulated
power cut:

* a write interrupted mid-page leaves a **torn** frame: half the payload with
  a deliberately mismatching CRC, exactly what a real NAND program aborted by
  power loss produces.  On reopen the frame fails its CRC and reads raise
  :class:`~repro.core.errors.TornPageError`;
* an erase interrupted mid-block leaves every frame in the block
  **erased-dirty**: the charge state is indeterminate, so the block refuses
  reads until it is erased again (the Simics generic-flash-memory model's
  "interrupted operation" state).

The file is carved into partitions by a declarative :class:`FlashLayout`
(frozen dataclasses, block-aligned): a one-block **superblock** partition for
the owner's mount metadata, a **checkpoint** partition for periodic snapshots
and a **log** partition holding the incarnation log.  The device itself is
policy-free — it only validates and exposes the layout; the CLAM recovery
path (:mod:`repro.core.recovery`) decides what lives where.

On-disk format (frozen by golden tests in ``tests/test_persistent_device.py``):

* file header, 64 bytes reserved: ``<8sIII`` = magic ``b"RFLASH\\x01\\x00"``,
  page_size, pages_per_block, num_blocks;
* one frame per page at ``64 + index * (page_size + 7)``: ``<BHI`` =
  status (0x00 erased / 0x01 written / 0x02 erased-dirty), payload length,
  CRC32 of the payload, then the payload padded with zeros to ``page_size``.

A brand-new file is all zeros (the file is created sparse), which decodes as
"every page erased" — no format pass is needed at create time and untouched
regions cost no disk space.
"""

from __future__ import annotations

import enum
import mmap
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import PowerLossError, TornPageError
from repro.flashsim.clock import SimulationClock
from repro.flashsim.device import DeviceGeometry, StorageDevice
from repro.flashsim.flash_chip import GENERIC_FLASH_CHIP_PROFILE
from repro.flashsim.latency import LinearCostModel
from repro.flashsim.stats import IOKind

#: File magic: "RFLASH" + format version 1 + a zero pad byte.
FILE_MAGIC = b"RFLASH\x01\x00"

#: Bytes reserved at the start of the file for the header.
FILE_HEADER_SIZE = 64

_FILE_HEADER = struct.Struct("<8sIII")

#: Per-page frame header: status byte, payload length, CRC32 of the payload.
_FRAME = struct.Struct("<BHI")

_STATUS_ERASED = 0x00
_STATUS_WRITTEN = 0x01
_STATUS_ERASED_DIRTY = 0x02

#: XOR mask applied to the stored CRC of a torn frame so verification fails
#: even for payloads whose truncated prefix happens to CRC identically.
_TORN_CRC_MASK = 0xA5A5A5A5


class PageState(enum.Enum):
    """Decoded state of one on-media page frame."""

    #: Never written since the last erase; reads return empty bytes.
    ERASED = "erased"
    #: Fully programmed; the payload passed its CRC check.
    VALID = "valid"
    #: Programming was interrupted mid-page; the frame fails its CRC.
    TORN = "torn"
    #: The containing block's erase was interrupted; unreadable until re-erased.
    ERASED_DIRTY = "erased-dirty"


@dataclass(frozen=True)
class FlashPartition:
    """One named, block-aligned region of a persistent device.

    Sizes are in erase blocks so a partition can always be erased without
    touching its neighbours.
    """

    name: str
    start_block: int
    num_blocks: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("partition name must be non-empty")
        if self.start_block < 0:
            raise ValueError("start_block must be non-negative")
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")

    @property
    def end_block(self) -> int:
        """First block index *after* this partition."""
        return self.start_block + self.num_blocks

    def start_page(self, geometry: DeviceGeometry) -> int:
        return self.start_block * geometry.pages_per_block

    def num_pages(self, geometry: DeviceGeometry) -> int:
        return self.num_blocks * geometry.pages_per_block


@dataclass(frozen=True)
class FlashLayout:
    """A declarative, non-overlapping partitioning of a device.

    The standard layout (:meth:`default`) carves three partitions:

    ``superblock``
        One block of mount metadata for whoever owns the device.
    ``checkpoint``
        Periodic snapshots of the owner's DRAM state, so recovery replays a
        log *suffix* instead of the whole log.
    ``log``
        Everything else: the append-only incarnation log.
    """

    partitions: tuple[FlashPartition, ...]

    def __post_init__(self) -> None:
        names = [p.name for p in self.partitions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate partition names in {names}")
        ordered = sorted(self.partitions, key=lambda p: p.start_block)
        for before, after in zip(ordered, ordered[1:]):
            if before.end_block > after.start_block:
                raise ValueError(
                    f"partitions {before.name!r} and {after.name!r} overlap"
                )

    def partition(self, name: str) -> FlashPartition:
        for part in self.partitions:
            if part.name == name:
                return part
        raise KeyError(f"no partition named {name!r}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.partitions)

    def validate(self, geometry: DeviceGeometry) -> None:
        """Check every partition fits on a device with ``geometry``."""
        for part in self.partitions:
            if part.end_block > geometry.num_blocks:
                raise ValueError(
                    f"partition {part.name!r} ends at block {part.end_block} "
                    f"but the device has only {geometry.num_blocks} blocks"
                )

    @classmethod
    def default(cls, geometry: DeviceGeometry) -> "FlashLayout":
        """Standard superblock / checkpoint / log carve-up of ``geometry``."""
        if geometry.num_blocks < 4:
            raise ValueError(
                "default layout needs at least 4 blocks "
                f"(got {geometry.num_blocks})"
            )
        checkpoint_blocks = max(2, geometry.num_blocks // 8)
        log_start = 1 + checkpoint_blocks
        return cls(
            partitions=(
                FlashPartition("superblock", start_block=0, num_blocks=1),
                FlashPartition(
                    "checkpoint", start_block=1, num_blocks=checkpoint_blocks
                ),
                FlashPartition(
                    "log",
                    start_block=log_start,
                    num_blocks=geometry.num_blocks - log_start,
                ),
            )
        )


#: Geometry for durable CLAM shards: 2 KB pages, 64-page blocks, 256 blocks
#: = 32 MiB of payload (~33 MiB file, created sparse).  Big enough for the
#: default CLAMConfig's flash partition with room for checkpoints.
PERSISTENT_GEOMETRY = DeviceGeometry(page_size=2048, pages_per_block=64, num_blocks=256)


class PersistentFlashDevice(StorageDevice):
    """An mmap/file-backed :class:`StorageDevice` with CRC-framed pages.

    Overwrites are allowed (the device behaves like an SSD exposing a flash
    translation layer) but :meth:`erase_block` is supported so log-structured
    owners can reclaim space block-at-a-time — and so interrupted erases are
    a reachable power-loss state.

    Latency modelling reuses the generic NAND cost model, so figure-series
    numbers are comparable between the in-memory and persistent backends;
    real file I/O time is *not* added to the simulated clock.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        geometry: Optional[DeviceGeometry] = None,
        layout: Optional[FlashLayout] = None,
        clock: Optional[SimulationClock] = None,
        keep_events: bool = False,
        name: Optional[str] = None,
        cost_model: Optional[LinearCostModel] = None,
    ) -> None:
        self.path = os.fspath(path)
        existing = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if existing:
            disk_geometry = self._read_header(self.path)
            if geometry is not None and geometry != disk_geometry:
                raise ValueError(
                    f"geometry mismatch for {self.path!r}: file has "
                    f"{disk_geometry}, caller requested {geometry}"
                )
            geometry = disk_geometry
        elif geometry is None:
            geometry = PERSISTENT_GEOMETRY
        super().__init__(
            geometry=geometry,
            clock=clock,
            keep_events=keep_events,
            name=name or os.path.basename(self.path),
        )
        self.layout = layout if layout is not None else FlashLayout.default(geometry)
        self.layout.validate(geometry)
        self._cost_model = (
            cost_model if cost_model is not None else GENERIC_FLASH_CHIP_PROFILE.cost_model
        )
        self._frame_stride = geometry.page_size + _FRAME.size
        self._file_size = FILE_HEADER_SIZE + geometry.total_pages * self._frame_stride
        self.erase_count_per_block: dict[int, int] = {}
        self._closed = False
        self._open_backing(create=not existing)
        # Decoded-state cache: page index -> PageState.  Payload bytes are
        # cached in the inherited ``_pages`` dict; both are filled lazily so
        # opening a large device costs O(1), not a full-media scan.
        self._states: dict[int, PageState] = {}

    # -- Backing file ----------------------------------------------------------

    @staticmethod
    def _read_header(path: str) -> DeviceGeometry:
        with open(path, "rb") as fh:
            raw = fh.read(_FILE_HEADER.size)
        if len(raw) < _FILE_HEADER.size:
            raise ValueError(f"{path!r} is too short to be a persistent flash file")
        magic, page_size, pages_per_block, num_blocks = _FILE_HEADER.unpack(raw)
        if magic != FILE_MAGIC:
            raise ValueError(f"{path!r} is not a persistent flash file (bad magic)")
        return DeviceGeometry(
            page_size=page_size, pages_per_block=pages_per_block, num_blocks=num_blocks
        )

    def _open_backing(self, create: bool) -> None:
        flags = os.O_RDWR | (os.O_CREAT if create else 0)
        self._fd = os.open(self.path, flags, 0o644)
        try:
            if create:
                header = _FILE_HEADER.pack(
                    FILE_MAGIC,
                    self.geometry.page_size,
                    self.geometry.pages_per_block,
                    self.geometry.num_blocks,
                )
                os.pwrite(self._fd, header, 0)
            if os.fstat(self._fd).st_size < self._file_size:
                os.ftruncate(self._fd, self._file_size)
            self._mm = mmap.mmap(self._fd, self._file_size, access=mmap.ACCESS_WRITE)
        except BaseException:
            os.close(self._fd)
            raise

    def _frame_offset(self, page_index: int) -> int:
        return FILE_HEADER_SIZE + page_index * self._frame_stride

    # -- Frame encode/decode ---------------------------------------------------

    def _write_frame(self, page_index: int, status: int, payload: bytes, crc: int) -> None:
        offset = self._frame_offset(page_index)
        self._mm[offset : offset + _FRAME.size] = _FRAME.pack(status, len(payload), crc)
        end = offset + self._frame_stride
        payload_start = offset + _FRAME.size
        self._mm[payload_start : payload_start + len(payload)] = payload
        self._mm[payload_start + len(payload) : end] = bytes(
            self.geometry.page_size - len(payload)
        )

    def _decode_frame(self, page_index: int) -> tuple[PageState, bytes]:
        offset = self._frame_offset(page_index)
        status, length, crc = _FRAME.unpack_from(self._mm, offset)
        if status == _STATUS_ERASED:
            return PageState.ERASED, b""
        if status == _STATUS_ERASED_DIRTY:
            return PageState.ERASED_DIRTY, b""
        if status != _STATUS_WRITTEN or length > self.geometry.page_size:
            return PageState.TORN, b""
        payload_start = offset + _FRAME.size
        payload = bytes(self._mm[payload_start : payload_start + length])
        if zlib.crc32(payload) != crc:
            return PageState.TORN, b""
        return PageState.VALID, payload

    def page_state(self, page_index: int) -> PageState:
        """Decoded on-media state of ``page_index`` (no simulated I/O cost)."""
        self._check_page(page_index)
        state = self._states.get(page_index)
        if state is None:
            state, payload = self._decode_frame(page_index)
            self._states[page_index] = state
            if state is PageState.VALID:
                self._pages[page_index] = payload
        return state

    def peek_page(self, page_index: int) -> Optional[bytes]:
        """Payload of a :attr:`PageState.VALID` page, else ``None``.

        Charges no simulated I/O — this models the recovery scan reading
        frame metadata from the spare (OOB) area; recovery then pays normal
        :meth:`read_page`/:meth:`read_range` costs for the pages it actually
        rebuilds state from.
        """
        if self.page_state(page_index) is not PageState.VALID:
            return None
        return self._pages[page_index]

    # -- StorageDevice payload hooks -------------------------------------------

    def _store_page(self, page_index: int, data: bytes) -> None:
        if len(data) > self.geometry.page_size:
            raise ValueError(
                f"payload of {len(data)} bytes exceeds page size "
                f"{self.geometry.page_size}"
            )
        data = bytes(data)
        self._write_frame(page_index, _STATUS_WRITTEN, data, zlib.crc32(data))
        self._pages[page_index] = data
        self._states[page_index] = PageState.VALID

    def _load_page(self, page_index: int) -> bytes:
        state = self.page_state(page_index)
        if state is PageState.ERASED:
            return b""
        if state is PageState.VALID:
            return self._pages[page_index]
        raise TornPageError(
            f"page {page_index} on device {self.name!r} is {state.value} "
            "(power-loss damage; recovery must discard it)"
        )

    # -- Power-loss side effects -----------------------------------------------

    def _apply_torn_write(self, page_index: int, data: bytes) -> None:
        # Half the payload landed; the stored CRC covers the *full* payload
        # XOR a mask, so verification fails even for the empty prefix.
        torn = data[: len(data) // 2]
        self._write_frame(
            page_index, _STATUS_WRITTEN, torn, zlib.crc32(data) ^ _TORN_CRC_MASK
        )
        self._pages.pop(page_index, None)
        self._states[page_index] = PageState.TORN

    def _apply_interrupted_erase(self, block_index: int) -> None:
        start = block_index * self.geometry.pages_per_block
        for page in range(start, start + self.geometry.pages_per_block):
            offset = self._frame_offset(page)
            self._mm[offset] = _STATUS_ERASED_DIRTY
            self._pages.pop(page, None)
            self._states[page] = PageState.ERASED_DIRTY

    # -- Erase support ---------------------------------------------------------

    def erase_block(self, block_index: int) -> float:
        """Erase one block; all of its pages return to :attr:`PageState.ERASED`."""
        if not 0 <= block_index < self.geometry.num_blocks:
            raise IndexError(
                f"block {block_index} out of range (num_blocks={self.geometry.num_blocks})"
            )
        latency = self.faults.check(self._cost_model.erase_cost(self.geometry.block_size))
        if self._power_cut(1, "erase") is not None:
            self._apply_interrupted_erase(block_index)
            raise PowerLossError(
                f"power lost mid-erase of block {block_index} on device {self.name!r}"
            )
        self._record(IOKind.ERASE, self.geometry.block_size, latency, sequential=False)
        start = block_index * self.geometry.pages_per_block
        begin = self._frame_offset(start)
        end = begin + self.geometry.pages_per_block * self._frame_stride
        self._mm[begin:end] = bytes(end - begin)
        for page in range(start, start + self.geometry.pages_per_block):
            self._pages.pop(page, None)
            self._states[page] = PageState.ERASED
        self.erase_count_per_block[block_index] = (
            self.erase_count_per_block.get(block_index, 0) + 1
        )
        return latency

    def block_of(self, page_index: int) -> int:
        """Erase-block index containing ``page_index``."""
        self._check_page(page_index)
        return page_index // self.geometry.pages_per_block

    # -- Lifecycle -------------------------------------------------------------

    def flush(self) -> None:
        """Push all mmap'd writes to the backing file."""
        if not self._closed:
            self._mm.flush()

    def close(self) -> None:
        """Flush and release the mmap and file descriptor (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._mm.flush()
        finally:
            self._mm.close()
            os.close(self._fd)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- Latency hooks ---------------------------------------------------------

    def _read_latency(self, nbytes: int, sequential: bool) -> float:
        return self._cost_model.read_cost(nbytes, sequential=sequential)

    def _write_latency(self, nbytes: int, sequential: bool) -> float:
        return self._cost_model.write_cost(nbytes, sequential=sequential)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PersistentFlashDevice(path={self.path!r}, "
            f"geometry={self.geometry}, closed={self._closed})"
        )
