"""Magnetic disk model (seek + rotational latency + transfer).

Calibrated against the Hitachi Deskstar 7K80 used for the paper's
``BH+Disk`` and ``DB+Disk`` baselines: random operations pay an average
seek (~8 ms) plus half-rotation latency (7200 RPM → ~4.2 ms), giving the
~7 ms average and ~12 ms worst-case per-operation latencies reported in
§7.2.1/§7.3.2, while sequential transfers stream at tens of MB/s.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.flashsim.clock import SimulationClock
from repro.flashsim.device import DeviceGeometry, StorageDevice


@dataclass(frozen=True)
class DiskProfile:
    """Mechanical and transfer parameters of a hard disk."""

    name: str
    geometry: DeviceGeometry
    average_seek_ms: float
    seek_jitter_ms: float
    rotation_ms: float
    transfer_mb_per_s: float
    track_locality_pages: int
    device_cost_dollars: float = 80.0

    @property
    def per_byte_ms(self) -> float:
        """Transfer cost per byte in milliseconds."""
        return 1000.0 / (self.transfer_mb_per_s * 1024 * 1024)


MAGNETIC_DISK_PROFILE = DiskProfile(
    name="hitachi-7k80",
    geometry=DeviceGeometry(page_size=512, pages_per_block=256, num_blocks=8192),
    average_seek_ms=3.0,
    seek_jitter_ms=2.5,
    rotation_ms=8.33,  # 7200 RPM full rotation; average rotational delay is half.
    transfer_mb_per_s=60.0,
    track_locality_pages=128,
    device_cost_dollars=80.0,
)


class MagneticDisk(StorageDevice):
    """Seek-latency dominated block device.

    Random accesses pay seek + average rotational delay; accesses close to
    the previous position (within ``track_locality_pages``) pay only a short
    settle time, and declared-sequential streaming pays transfer cost only.
    Seek times include deterministic pseudo-random jitter so latency CDFs
    have realistic spread while remaining reproducible.
    """

    def __init__(
        self,
        profile: DiskProfile = MAGNETIC_DISK_PROFILE,
        clock: Optional[SimulationClock] = None,
        keep_events: bool = False,
        name: Optional[str] = None,
        seed: int = 0x5EED,
    ) -> None:
        super().__init__(
            geometry=profile.geometry,
            clock=clock,
            keep_events=keep_events,
            name=name or profile.name,
        )
        self.profile = profile
        self._rng = random.Random(seed)
        self._head_page = 0

    def _positioning_latency(self, sequential: bool) -> float:
        if sequential:
            return 0.0
        jitter = self._rng.uniform(-self.profile.seek_jitter_ms, self.profile.seek_jitter_ms)
        seek = max(0.5, self.profile.average_seek_ms + jitter)
        rotational = self.profile.rotation_ms / 2.0
        return seek + rotational

    def _is_near_head(self, sequential: bool) -> bool:
        if self._last_accessed_page is None:
            return False
        return sequential

    def _read_latency(self, nbytes: int, sequential: bool) -> float:
        transfer = nbytes * self.profile.per_byte_ms
        return self._positioning_latency(sequential) + transfer

    def _write_latency(self, nbytes: int, sequential: bool) -> float:
        transfer = nbytes * self.profile.per_byte_ms
        return self._positioning_latency(sequential) + transfer
