"""Linear I/O cost model used throughout the storage simulator.

Section 6 of the paper models the cost of reading, writing and erasing
``x`` bytes of flash as a linear function of the transfer size::

    cost_read(x)  = a_r + b_r * x
    cost_write(x) = a_w + b_w * x
    cost_erase(x) = a_e + b_e * x

where the ``a`` terms capture the fixed per-I/O initialisation cost
(command setup, flash array access time, seek for disks) and the ``b``
terms capture the per-byte transfer cost.  The same shape fits magnetic
disks (the fixed term becomes seek + rotational latency) and DRAM (both
terms tiny), so the whole substrate shares this one model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOCost:
    """Fixed + per-byte cost of one I/O class, in milliseconds.

    Attributes
    ----------
    fixed_ms:
        Latency paid once per operation regardless of its size.
    per_byte_ms:
        Additional latency per byte transferred.
    """

    fixed_ms: float
    per_byte_ms: float

    def __post_init__(self) -> None:
        if self.fixed_ms < 0 or self.per_byte_ms < 0:
            raise ValueError("I/O cost components must be non-negative")

    def cost(self, nbytes: int) -> float:
        """Latency in milliseconds for an operation transferring ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.fixed_ms + self.per_byte_ms * nbytes


@dataclass(frozen=True)
class LinearCostModel:
    """Per-device collection of :class:`IOCost` entries.

    A device distinguishes four I/O classes: random reads, sequential reads,
    random writes and sequential writes, plus erase for flash.  Sequential
    operations are typically cheaper per byte because the fixed cost is paid
    once for a large transfer and the device can stream.
    """

    random_read: IOCost
    sequential_read: IOCost
    random_write: IOCost
    sequential_write: IOCost
    erase: IOCost

    def read_cost(self, nbytes: int, sequential: bool = False) -> float:
        """Latency of reading ``nbytes``."""
        model = self.sequential_read if sequential else self.random_read
        return model.cost(nbytes)

    def write_cost(self, nbytes: int, sequential: bool = False) -> float:
        """Latency of writing ``nbytes``."""
        model = self.sequential_write if sequential else self.random_write
        return model.cost(nbytes)

    def erase_cost(self, nbytes: int) -> float:
        """Latency of erasing ``nbytes`` (flash only; zero-cost models allowed)."""
        return self.erase.cost(nbytes)


def scale_cost(cost: IOCost, factor: float) -> IOCost:
    """Return a copy of ``cost`` with both components scaled by ``factor``.

    Useful for deriving degraded-mode costs (e.g. garbage-collection
    interference multiplies effective write latency).
    """
    if factor < 0:
        raise ValueError("factor must be non-negative")
    return IOCost(fixed_ms=cost.fixed_ms * factor, per_byte_ms=cost.per_byte_ms * factor)
